"""Fleet orchestrator: supervised shard subprocesses over one wafer.

The production story the paper's structure needs at lot scale: split a
wafer into die-range shards (:mod:`repro.fleet.partition`), run each
shard as a subprocess of :mod:`repro.fleet.worker`, and keep the lot
alive through anything short of losing every machine:

- **Death detection** is two-channel: OS exit codes (a crashed worker)
  and lease staleness (a wedged worker whose heartbeat stopped — the
  orchestrator kills it and treats it as dead).
- **Recovery** rides the existing checkpoint/resume machinery: a dead
  shard's ledger holds its checkpoint, so the respawned worker (next
  ``generation``) resumes from the last completed die — bit-exact with
  a never-killed run by the wafer RNG fast-forward contract.
- **Backoff** between respawns follows the shared
  :class:`~repro.resilience.RetryPolicy` (exponential + deterministic
  jitter), scheduled non-blocking so one flapping shard never stalls
  supervision of the others.
- **Degradation, not loss**: a shard that exhausts its retry budget is
  marked ``failed`` and the lot completes without it — the merge stage
  fills its die range with FAILED quality instead of sinking the lot.

Fleet state lives in ``fleet.json`` at the fleet root (atomic tmp +
rename), so ``repro fleet status`` and the merge stage read a
consistent picture even while the fleet is running, and health gauges
stream into the ambient metrics registry in the same style as the
supervised pool's telemetry.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import FleetError
from repro.fleet.lease import heartbeat_age, read_lease
from repro.fleet.partition import ShardRange, plan_shards, validate_partition

__all__ = [
    "DEFAULT_FLEET_DIR",
    "FLEET_FORMAT",
    "ShardStatus",
    "FleetReport",
    "FleetOrchestrator",
    "fleet_state",
    "fleet_exit_code",
]

#: Default fleet root, relative to the working directory.
DEFAULT_FLEET_DIR = ".repro-fleet"

#: ``fleet.json`` format version.
FLEET_FORMAT = 1

#: Orchestrator poll period, seconds.
_POLL_SECONDS = 0.05

#: Default stale-lease threshold, seconds.
_HEARTBEAT_TIMEOUT = 30.0

#: Exit codes distinguishing lot health (shared with the CLI): a
#: degraded lot (FAILED die ranges present) is advisory; a failed lot
#: (no shard produced planes, or the fleet is unusable) is an error.
EXIT_HEALTHY = 0
EXIT_FAILED = 1
EXIT_USAGE = 2
EXIT_DEGRADED = 3


@dataclass
class ShardStatus:
    """Supervision state of one shard across its generations."""

    shard_id: int
    start: int
    stop: int
    state: str = "pending"  #: pending/running/backoff/done/failed
    attempts: int = 0  #: spawns so far (generation of the next spawn)
    exitcode: int | None = None
    run_id: str | None = None
    respawns: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "shard_id": self.shard_id,
            "die_range": [self.start, self.stop],
            "state": self.state,
            "attempts": self.attempts,
            "exitcode": self.exitcode,
            "run_id": self.run_id,
            "respawns": self.respawns,
        }


@dataclass
class FleetReport:
    """Outcome of one :meth:`FleetOrchestrator.run`."""

    state: str  #: healthy / degraded / failed
    shards: list[ShardStatus] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def respawns(self) -> int:
        return sum(s.respawns for s in self.shards)

    @property
    def failed_shards(self) -> list[ShardStatus]:
        return [s for s in self.shards if s.state == "failed"]

    @property
    def exit_code(self) -> int:
        return fleet_exit_code(self.state)


def fleet_exit_code(state: str) -> int:
    """Map a lot state onto the fleet exit-code contract."""
    if state == "healthy":
        return EXIT_HEALTHY
    if state == "degraded":
        return EXIT_DEGRADED
    return EXIT_FAILED


class FleetOrchestrator:
    """Run one wafer as ``shards`` supervised die-range subprocesses.

    Parameters
    ----------
    root:
        Fleet directory (created if missing) holding ``fleet.json``,
        per-shard ledgers, leases, specs, progress streams, logs and
        results.
    wafer:
        :class:`~repro.wafer.WaferModel` constructor kwargs — must be
        JSON-serializable (they travel to workers via spec files).
    shards:
        Number of die-range shards to split the wafer into.
    retry:
        :class:`~repro.resilience.RetryPolicy` bounding respawns per
        shard (``max_attempts`` total spawns including the first).
        Defaults to the resilience default (3 attempts).
    heartbeat_timeout:
        Seconds without a lease heartbeat before a *running* worker is
        declared wedged and killed (then retried like any death).
    faults:
        Optional fault-plan JSON (see
        :func:`~repro.fleet.worker.fault_plan_from_spec`) shipped to
        workers — the chaos drill's kill switch.
    fault_attempts:
        ``"first"`` arms ``faults`` only on each shard's first spawn
        (so the respawn survives — the recovery drill), ``"all"`` arms
        every spawn (drives retry exhaustion).
    force_engine:
        Route worker scans through the exact engine (reference mode).
    checkpoint_every_seconds:
        Worker checkpoint persistence throttle (``Checkpointer
        .min_save_seconds``); ``0.0`` persists after every die.
    max_concurrent:
        Worker subprocesses allowed to run at once; ``None`` (the
        default) caps at the cores this process may schedule on.
        Oversubscribing a small machine only adds context-switch tax —
        queued shards start as slots free up, supervision and retry
        semantics are identical either way.
    """

    def __init__(
        self,
        root: str | Path = DEFAULT_FLEET_DIR,
        *,
        wafer: dict[str, Any] | None = None,
        shards: int = 2,
        retry=None,
        heartbeat_timeout: float = _HEARTBEAT_TIMEOUT,
        poll_seconds: float = _POLL_SECONDS,
        faults: dict[str, Any] | None = None,
        fault_attempts: str = "first",
        force_engine: bool = False,
        label: str = "",
        checkpoint_every_seconds: float = 0.25,
        max_concurrent: int | None = None,
    ) -> None:
        from repro.resilience.retry import DEFAULT_RETRY_POLICY

        if heartbeat_timeout <= 0:
            raise FleetError(
                f"heartbeat_timeout must be positive, got {heartbeat_timeout}"
            )
        if fault_attempts not in ("first", "all"):
            raise FleetError(
                f"fault_attempts must be 'first' or 'all', got "
                f"{fault_attempts!r}"
            )
        self.root = Path(root)
        self.wafer = dict(wafer or {})
        self.shards = shards
        self.retry = retry if retry is not None else DEFAULT_RETRY_POLICY
        self.heartbeat_timeout = heartbeat_timeout
        self.poll_seconds = poll_seconds
        self.faults = faults
        self.fault_attempts = fault_attempts
        self.force_engine = force_engine
        self.label = label
        self.checkpoint_every_seconds = float(checkpoint_every_seconds)
        if max_concurrent is not None and max_concurrent < 1:
            raise FleetError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        self.max_concurrent = max_concurrent
        self._partition: tuple[ShardRange, ...] = ()
        self._statuses: list[ShardStatus] = []

    # -- paths ---------------------------------------------------------

    @property
    def fleet_path(self) -> Path:
        return self.root / "fleet.json"

    def shard_root(self, shard_id: int) -> Path:
        return self.root / "shards" / f"s{shard_id:02d}"

    def _paths(self, shard_id: int) -> dict[str, str]:
        return {
            "ledger_root": str(self.shard_root(shard_id)),
            "lease_path": str(self.root / "leases" / f"s{shard_id:02d}.json"),
            "progress_path": str(
                self.root / "progress" / f"s{shard_id:02d}.jsonl"
            ),
            "result_path": str(self.root / "results" / f"s{shard_id:02d}.npz"),
            "spec_path": str(self.root / "specs" / f"s{shard_id:02d}.json"),
            "log_path": str(self.root / "logs" / f"s{shard_id:02d}.log"),
        }

    # -- fleet.json ----------------------------------------------------

    def _fingerprint(self) -> dict[str, Any]:
        """The config consistency key every shard must match at merge."""
        from repro.measure.config import ScanConfig
        from repro.resilience.checkpoint import resume_fingerprint

        config = ScanConfig(
            technology=self.wafer.get("technology", "edram"),
            force_engine=self.force_engine,
        )
        return {"config": resume_fingerprint(config), "wafer": self.wafer}

    def _write_state(self, state: str) -> None:
        """Persist ``fleet.json`` atomically."""
        payload = {
            "format": FLEET_FORMAT,
            "state": state,
            "label": self.label,
            "shards": len(self._partition),
            "total_dies": self._total_dies,
            "partition": [
                [r.shard_id, r.start, r.stop] for r in self._partition
            ],
            "fingerprint": self._fingerprint(),
            "shard_status": [s.to_dict() for s in self._statuses],
            "paths": {
                f"s{r.shard_id:02d}": self._paths(r.shard_id)
                for r in self._partition
            },
        }
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.fleet_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        os.replace(tmp, self.fleet_path)

    # -- supervision ---------------------------------------------------

    def _spawn(self, status: ShardStatus) -> subprocess.Popen:
        """Launch (or relaunch) one shard worker subprocess."""
        paths = self._paths(status.shard_id)
        resume = self._checkpoint_id(status.shard_id)
        arm_faults = self.faults is not None and (
            self.fault_attempts == "all" or status.attempts == 0
        )
        spec = {
            "shard_id": status.shard_id,
            "die_range": [status.start, status.stop],
            "wafer": self.wafer,
            "generation": status.attempts,
            "resume": resume,
            "force_engine": self.force_engine,
            "label": self.label or None,
            "faults": self.faults if arm_faults else None,
            "checkpoint_every_seconds": self.checkpoint_every_seconds,
            **{k: v for k, v in paths.items()
               if k not in ("spec_path", "log_path")},
        }
        spec_path = Path(paths["spec_path"])
        spec_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = spec_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(spec, indent=2) + "\n", encoding="utf-8")
        os.replace(tmp, spec_path)

        # A fresh worker needs a beat of Python startup before it writes
        # its own lease; a leftover lease from a previous generation (or
        # a previous fleet in the same root) would read as stale during
        # that window and get the new process killed on sight.
        Path(paths["lease_path"]).unlink(missing_ok=True)

        log_path = Path(paths["log_path"])
        log_path.parent.mkdir(parents=True, exist_ok=True)
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = (
            src_root + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else src_root
        )
        with open(log_path, "a", encoding="utf-8") as log:
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.fleet.worker", str(spec_path)],
                stdout=log, stderr=subprocess.STDOUT, env=env,
            )
        status.state = "running"
        status.attempts += 1
        return proc

    def _checkpoint_id(self, shard_id: int) -> str | None:
        """The shard's unfinished checkpoint id, if one survived death."""
        from repro.obs.ledger import RunLedger
        from repro.resilience.checkpoint import list_checkpoints

        try:
            checkpoints = list_checkpoints(RunLedger(self.shard_root(shard_id)))
        except Exception:  # lint: allow-broad-except - corrupt checkpoint == fresh start
            return None
        for state in reversed(checkpoints):
            if state.kind == "shard":
                return state.run_id
        return None

    def _emit_gauges(self, running: int, backoff: int) -> None:
        """Fleet health telemetry, pool-heartbeat style (ambient registry)."""
        from repro.obs.metrics import active_metrics

        registry = active_metrics()
        if not registry.enabled:
            return
        registry.counter("fleet.heartbeats").inc()
        registry.gauge("fleet.shards").set(len(self._statuses))
        registry.gauge("fleet.running").set(running)
        registry.gauge("fleet.backoff").set(backoff)
        registry.gauge("fleet.done").set(
            sum(1 for s in self._statuses if s.state == "done")
        )
        registry.gauge("fleet.failed").set(
            sum(1 for s in self._statuses if s.state == "failed")
        )
        registry.gauge("fleet.respawns").set(
            sum(s.respawns for s in self._statuses)
        )
        for status in self._statuses:
            prefix = f"fleet.shard{status.shard_id}"
            lease = read_lease(self._paths(status.shard_id)["lease_path"])
            registry.gauge(f"{prefix}.generation").set(
                max(0, status.attempts - 1)
            )
            registry.gauge(f"{prefix}.dies_done").set(
                lease.dies_done if lease is not None else 0
            )
            age = heartbeat_age(lease) if lease is not None else float("inf")
            if age != float("inf"):
                registry.gauge(f"{prefix}.heartbeat_age").set(age)

    def run(self) -> FleetReport:
        """Run the fleet to completion (supervising, respawning, degrading).

        Returns a :class:`FleetReport` whose ``state`` is ``healthy``
        (every shard done), ``degraded`` (some failed, some done) or
        ``failed`` (every shard failed).  Never raises on shard death —
        only on orchestration misuse (bad partition, bad parameters).
        """
        from repro.wafer import WaferModel

        model = WaferModel(**self.wafer)
        self._total_dies = len(model.sites())
        self._partition = plan_shards(self._total_dies, self.shards)
        validate_partition(self._partition, self._total_dies)
        self._statuses = [
            ShardStatus(shard_id=r.shard_id, start=r.start, stop=r.stop)
            for r in self._partition
        ]
        self._write_state("running")

        cap = self.max_concurrent
        if cap is None:
            try:
                cap = len(os.sched_getaffinity(0))
            except AttributeError:  # pragma: no cover - non-Linux
                cap = os.cpu_count() or 1
        cap = max(1, min(cap, len(self._statuses)))

        start = time.monotonic()
        procs: dict[int, subprocess.Popen] = {}
        restart_at: dict[int, float] = {}
        last_gauges = 0.0

        while True:
            now = time.monotonic()
            # 1. Reap exits.
            for status in self._statuses:
                proc = procs.get(status.shard_id)
                if proc is None or status.state != "running":
                    continue
                code = proc.poll()
                if code is None:
                    continue
                procs.pop(status.shard_id)
                status.exitcode = code
                if code == 0:
                    status.state = "done"
                    lease = read_lease(
                        self._paths(status.shard_id)["lease_path"]
                    )
                    if lease is not None:
                        status.run_id = lease.run_id
                else:
                    self._handle_death(status, restart_at, now)
            # 2. Kill wedged workers (stale lease while still running).
            for status in self._statuses:
                if status.state != "running":
                    continue
                proc = procs.get(status.shard_id)
                if proc is None:
                    continue
                lease = read_lease(self._paths(status.shard_id)["lease_path"])
                # Only a lease the current worker wrote can condemn it —
                # a stale file from another pid/generation says nothing
                # about this process's health.
                if (
                    lease is None
                    or lease.pid != proc.pid
                    or lease.generation != status.attempts - 1
                ):
                    continue
                age = heartbeat_age(lease)
                if age > self.heartbeat_timeout:
                    try:
                        proc.send_signal(signal.SIGKILL)
                    except OSError:  # pragma: no cover - already gone
                        pass
                    proc.wait()
                    procs.pop(status.shard_id, None)
                    status.exitcode = -signal.SIGKILL
                    self._handle_death(status, restart_at, now)
            # 3. Fill free worker slots: unstarted shards in id order,
            #    then respawns whose backoff elapsed.  The first loop
            #    iteration does the initial spawns through this path.
            running = sum(1 for s in self._statuses if s.state == "running")
            for status in self._statuses:
                if running >= cap:
                    break
                if status.state == "pending":
                    procs[status.shard_id] = self._spawn(status)
                    running += 1
                elif status.state == "backoff" and now >= restart_at.get(
                    status.shard_id, 0.0
                ):
                    restart_at.pop(status.shard_id, None)
                    status.respawns += 1
                    procs[status.shard_id] = self._spawn(status)
                    running += 1
            # 4. Telemetry + persisted status (throttled).
            if now - last_gauges >= self.poll_seconds:
                last_gauges = now
                self._emit_gauges(
                    running=sum(
                        1 for s in self._statuses if s.state == "running"
                    ),
                    backoff=len(restart_at),
                )
            if all(s.state in ("done", "failed") for s in self._statuses):
                break
            time.sleep(self.poll_seconds)

        done = sum(1 for s in self._statuses if s.state == "done")
        if done == len(self._statuses):
            state = "healthy"
        elif done == 0:
            state = "failed"
        else:
            state = "degraded"
        self._write_state(state)
        self._emit_gauges(running=0, backoff=0)
        return FleetReport(
            state=state,
            shards=list(self._statuses),
            wall_seconds=time.monotonic() - start,
        )

    def _handle_death(
        self,
        status: ShardStatus,
        restart_at: dict[int, float],
        now: float,
    ) -> None:
        """Route one shard death: schedule a respawn or mark it failed."""
        attempt = status.attempts - 1  # 0-based attempt that just died
        if self.retry.should_retry(attempt):
            status.state = "backoff"
            restart_at[status.shard_id] = now + self.retry.delay(
                attempt, key=status.shard_id
            )
        else:
            status.state = "failed"


def fleet_state(root: str | Path) -> dict[str, Any]:
    """Read ``fleet.json`` (plus live leases) for ``repro fleet status``."""
    root = Path(root)
    path = root / "fleet.json"
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise FleetError(f"no fleet at {root} ({exc})") from exc
    except ValueError as exc:
        raise FleetError(f"corrupt fleet state {path}: {exc}") from exc
    leases = {}
    for key, paths in payload.get("paths", {}).items():
        lease = read_lease(paths["lease_path"])
        if lease is not None:
            leases[key] = {
                "state": lease.state,
                "pid": lease.pid,
                "generation": lease.generation,
                "dies_done": lease.dies_done,
                "heartbeat_age": heartbeat_age(lease),
                "run_id": lease.run_id,
            }
    payload["leases"] = leases
    return payload
