"""Sense amplifier resolution model."""

import pytest

from repro.edram.senseamp import SenseAmplifier
from repro.errors import ArrayConfigError


def test_offset_is_deterministic_per_seed():
    a = SenseAmplifier(seed=4)
    b = SenseAmplifier(seed=4)
    assert a.offset == b.offset


def test_strong_signals_resolve_by_sign():
    sa = SenseAmplifier(offset_sigma=3e-3, seed=0)
    strong = 10 * abs(sa.offset) + 0.01
    assert sa.resolve(strong) is True
    assert sa.resolve(-strong) is False


def test_weak_signal_collapses_to_preferred_state():
    sa = SenseAmplifier(offset_sigma=5e-3, seed=1, fail_low=True)
    weak = abs(sa.offset) * 0.5
    assert sa.resolve(weak) is False
    assert sa.resolve(-weak) is False


def test_fail_high_variant():
    sa = SenseAmplifier(offset_sigma=5e-3, seed=1, fail_low=False)
    weak = abs(sa.offset) * 0.5
    assert sa.resolve(weak) is True


def test_margin_sign():
    sa = SenseAmplifier(offset_sigma=3e-3, seed=0)
    assert sa.margin(1.0) > 0
    assert sa.margin(abs(sa.offset) / 2) < 0


def test_zero_offset_amp_is_ideal():
    sa = SenseAmplifier(offset_sigma=0.0)
    assert sa.offset == 0.0
    assert sa.resolve(1e-9) is True
    assert sa.resolve(-1e-9) is False


def test_negative_sigma_rejected():
    with pytest.raises(ArrayConfigError):
        SenseAmplifier(offset_sigma=-1.0)
