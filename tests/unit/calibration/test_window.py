"""Specification windows in the current domain."""

import pytest

from repro.calibration.window import SpecificationWindow, SpecVerdict
from repro.errors import CalibrationError
from repro.units import fF


@pytest.fixture(scope="module")
def window(abacus_2x2):
    return SpecificationWindow.from_capacitance(abacus_2x2, 24 * fF, 36 * fF)


def test_window_codes_bracket_spec(window, abacus_2x2):
    assert window.code_lo == abacus_2x2.code_for_capacitance(24 * fF)
    assert window.code_hi == abacus_2x2.code_for_capacitance(36 * fF)
    assert 0 < window.code_lo <= window.code_hi < 20


def test_current_view(window, abacus_2x2):
    delta_i = abacus_2x2.structure.design.delta_i
    assert window.current_lo == pytest.approx(window.code_lo * delta_i)
    assert window.current_hi == pytest.approx(window.code_hi * delta_i)


def test_classification(window):
    assert window.classify(0) is SpecVerdict.AMBIGUOUS_ZERO
    assert window.classify(window.num_steps) is SpecVerdict.OVER_RANGE
    assert window.classify(window.code_lo) is SpecVerdict.PASS
    assert window.classify(window.code_hi) is SpecVerdict.PASS
    if window.code_lo > 1:
        assert window.classify(window.code_lo - 1) is SpecVerdict.FAIL_LOW
    if window.code_hi < window.num_steps - 1:
        assert window.classify(window.code_hi + 1) is SpecVerdict.FAIL_HIGH


def test_passes_helper(window):
    assert window.passes(window.code_lo)
    assert not window.passes(0)


def test_classify_bounds(window):
    with pytest.raises(CalibrationError):
        window.classify(-1)
    with pytest.raises(CalibrationError):
        window.classify(window.num_steps + 1)


def test_in_spec_capacitance_always_passes(window, abacus_2x2):
    import numpy as np

    for cap in np.linspace(24 * fF, 36 * fF, 40):
        code = abacus_2x2.code_for_capacitance(float(cap))
        assert window.passes(code), f"{cap / fF:.1f} fF -> code {code} failed"


def test_spec_outside_range_rejected(abacus_2x2):
    with pytest.raises(CalibrationError):
        SpecificationWindow.from_capacitance(abacus_2x2, 5 * fF, 30 * fF)
    with pytest.raises(CalibrationError):
        SpecificationWindow.from_capacitance(abacus_2x2, 30 * fF, 80 * fF)


def test_from_capacitance_validation(abacus_2x2):
    with pytest.raises(CalibrationError):
        SpecificationWindow.from_capacitance(abacus_2x2, 36 * fF, 24 * fF)


def test_direct_construction_validation():
    with pytest.raises(CalibrationError):
        SpecificationWindow(code_lo=0, code_hi=5, num_steps=20, delta_i=1e-6)
    with pytest.raises(CalibrationError):
        SpecificationWindow(code_lo=5, code_hi=20, num_steps=20, delta_i=1e-6)
