"""Property-based tests of the tracing subsystem.

A tracer driven by ANY well-bracketed sequence of span opens/closes must
produce a proper forest: parents start before (and end after) their
children, ids are start-ordered, and the JSONL round trip is lossless.
"""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ObservabilityError
from repro.obs import Tracer, load_trace, summarize_trace

# A trace program: "(" opens a span, ")" closes the innermost open one.
# Unmatched closes are dropped; spans left open at the end are closed —
# so every program maps to a valid nesting.
programs = st.lists(st.sampled_from("()"), max_size=60)


def run_program(program):
    ticks = iter(range(100_000))
    tracer = Tracer(clock=lambda: float(next(ticks)))
    contexts = []
    names = iter(f"span-{i}" for i in range(len(program) + 1))
    for op in program:
        if op == "(":
            ctx = tracer.span(next(names), depth=len(contexts))
            ctx.__enter__()
            contexts.append(ctx)
        elif contexts:
            contexts.pop().__exit__(None, None, None)
    while contexts:
        contexts.pop().__exit__(None, None, None)
    return tracer


@given(programs)
@settings(max_examples=200, deadline=None)
def test_spans_form_a_proper_forest(program):
    tracer = run_program(program)
    by_id = {s.span_id: s for s in tracer.spans}
    assert [s.span_id for s in tracer.spans] == list(range(len(tracer.spans)))
    for span in tracer.spans:
        assert span.end is not None
        assert span.duration >= 0
        if span.parent_id is not None:
            parent = by_id[span.parent_id]
            # Children start after and finish before their parent.
            assert parent.span_id < span.span_id
            assert parent.start <= span.start
            assert span.end <= parent.end
            assert span.duration <= parent.duration


@given(programs)
@settings(max_examples=200, deadline=None)
def test_sibling_intervals_do_not_overlap(program):
    tracer = run_program(program)
    by_parent = {}
    for span in tracer.spans:
        by_parent.setdefault(span.parent_id, []).append(span)
    for siblings in by_parent.values():
        for earlier, later in zip(siblings, siblings[1:]):
            assert earlier.end <= later.start


@given(programs)
@settings(max_examples=100, deadline=None)
def test_jsonl_round_trip_is_lossless(program):
    tracer = run_program(program)
    buf = io.StringIO()
    tracer.write_jsonl(buf)
    if not tracer.spans:
        # A span-free file is a loader error, not an empty success.
        with pytest.raises(ObservabilityError, match="no spans"):
            load_trace(io.StringIO(buf.getvalue()))
    else:
        assert load_trace(io.StringIO(buf.getvalue())) == tracer.spans


@given(programs)
@settings(max_examples=100, deadline=None)
def test_summary_accounts_for_every_span(program):
    tracer = run_program(program)
    if not tracer.spans:
        with pytest.raises(ObservabilityError, match="empty trace"):
            summarize_trace(tracer.spans)
        return
    summary = summarize_trace(tracer.spans)
    assert summary.total_spans == len(tracer.spans)
    assert sum(a.count for a in summary.aggregates) == len(tracer.spans)
    walked_depth = max((d for _, d in tracer.walk()), default=0)
    assert summary.max_depth == walked_depth
