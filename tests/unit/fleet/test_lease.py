"""Lease files: atomic heartbeat round trips and tolerant reads."""

import time

from repro.fleet import ShardLease, heartbeat_age, read_lease, write_lease


def _lease(**overrides):
    base = dict(shard_id=1, start=3, stop=9, pid=4242, generation=2)
    base.update(overrides)
    return ShardLease(**base)


def test_round_trip(tmp_path):
    path = tmp_path / "s01.json"
    write_lease(path, _lease(state="running", run_id="r0007").touch(dies_done=4))
    loaded = read_lease(path)
    assert loaded is not None
    assert loaded.shard_id == 1
    assert (loaded.start, loaded.stop) == (3, 9)
    assert loaded.pid == 4242
    assert loaded.generation == 2
    assert loaded.state == "running"
    assert loaded.dies_done == 4
    assert loaded.run_id == "r0007"
    assert loaded.heartbeat > 0.0


def test_touch_refreshes_heartbeat_and_progress(tmp_path):
    lease = _lease()
    assert lease.heartbeat == 0.0
    lease.touch(dies_done=2)
    first = lease.heartbeat
    assert first > 0.0
    assert lease.dies_done == 2
    lease.touch()
    assert lease.heartbeat >= first
    assert lease.dies_done == 2  # untouched without an explicit count


def test_missing_lease_reads_as_none(tmp_path):
    assert read_lease(tmp_path / "absent.json") is None


def test_corrupt_lease_reads_as_none(tmp_path):
    path = tmp_path / "s00.json"
    path.write_text('{"shard_id": 1, "start"', encoding="utf-8")
    assert read_lease(path) is None
    path.write_text('{"shard_id": 1}', encoding="utf-8")
    assert read_lease(path) is None


def test_write_is_atomic_no_tmp_left_behind(tmp_path):
    path = tmp_path / "s00.json"
    write_lease(path, _lease().touch())
    write_lease(path, _lease().touch(dies_done=1))
    assert [p.name for p in tmp_path.iterdir()] == ["s00.json"]


def test_heartbeat_age(tmp_path):
    lease = _lease()
    assert heartbeat_age(lease) == float("inf")
    lease.touch()
    assert heartbeat_age(lease) < 5.0
    assert heartbeat_age(lease, now=lease.heartbeat + 12.5) == 12.5
    # A heartbeat slightly in the future (clock skew) clamps to zero.
    assert heartbeat_age(lease, now=lease.heartbeat - 1.0) == 0.0


def test_heartbeats_monotonic_under_repeated_touch():
    lease = _lease()
    stamps = []
    for _ in range(3):
        lease.touch()
        stamps.append(lease.heartbeat)
        time.sleep(0.01)
    assert stamps == sorted(stamps)
