#!/usr/bin/env python3
"""Leakage bitmap: the combined capacitance + retention methodology.

Two cells fail the same 1 s retention screen.  Classical flows stop
there ("both leaky").  With the paper's per-cell capacitance in hand the
two split cleanly:

- one is a **small capacitor** with ordinary junction leakage (a
  capacitor-module problem → deposition/etch process owners),
- the other is a **full-size capacitor** with a leaky junction (an
  isolation/implant problem → entirely different process owners).

This example builds the per-cell leakage-current bounds from an analog
bitmap plus a ladder of retention pauses, and prints the separation.

Run:  python examples/leakage_bitmap.py
"""

import numpy as np

from repro import Abacus, AnalogBitmap, ArrayScanner, EDRAMArray, design_structure
from repro import CellDefect, DefectKind
from repro.diagnosis import extract_leakage, retention_ladder
from repro.edram import compose_maps, mismatch_map, uniform_map
from repro.edram.operations import ArrayOperations
from repro.units import fF, to_fF

ROWS, COLS, MACRO_ROWS, MACRO_COLS = 16, 8, 8, 2
PAUSES = [0.01, 0.1, 1.0, 10.0]  # seconds

capacitance = compose_maps(
    uniform_map((ROWS, COLS), 30 * fF),
    mismatch_map((ROWS, COLS), 0.7 * fF, seed=23),
)
array = EDRAMArray(ROWS, COLS, macro_cols=MACRO_COLS, macro_rows=MACRO_ROWS,
                   capacitance_map=capacitance)

# Suspect A: small capacitor, slightly elevated leakage.
array.cell(3, 2).apply_defect(CellDefect(DefectKind.LOW_CAP, factor=0.4))
array.cell(3, 2).leak_current *= 130
# Suspect B: full capacitor, very leaky junction.
array.cell(12, 6).apply_defect(CellDefect(DefectKind.RETENTION, factor=320.0))

# --- measure capacitance (the paper's structure) ----------------------------
structure = design_structure(array.tech, MACRO_ROWS, MACRO_COLS, bitline_rows=ROWS)
abacus = Abacus.for_array(structure, array)
bitmap = AnalogBitmap(ArrayScanner(array, structure).scan(), abacus)

# --- retention ladder --------------------------------------------------------
ladder = retention_ladder(ArrayOperations(array), PAUSES)
bounds = extract_leakage(bitmap, ladder, PAUSES, v_write=1.8, v_min=0.9)

print(f"retention ladder pauses: {PAUSES} s")
print(f"cells failing some pause: "
      f"{[tuple(x) for x in np.argwhere(ladder < len(PAUSES))]}\n")

print(f"{'cell':>9}  {'C (fF)':>8}  {'fails at':>9}  "
      f"{'I bounds (A)':>22}  verdict")
for addr in ((3, 2), (12, 6)):
    k = int(ladder[addr])
    fails = f"{PAUSES[k]:.2f} s" if k < len(PAUSES) else "never"
    cap = bitmap.estimates[addr]
    lo, hi = bounds.lower[addr], bounds.upper[addr]
    hi_s = f"{hi:.1e}" if np.isfinite(hi) else "inf"
    small = cap < 24 * fF
    verdict = ("capacitor module (small cap, ordinary leak)" if small
               else "junction isolation (full cap, heavy leak)")
    print(f"{str(addr):>9}  {to_fF(cap):>8.2f}  {fails:>9}  "
          f"[{lo:.1e}, {hi_s}]  {verdict}")

healthy_hi = bounds.upper[0, 0]
print(f"\nhealthy-cell leakage upper bound: {healthy_hi:.1e} A "
      "(from surviving the longest pause)")
print("\nwithout the analog bitmap both suspects are just 'retention fails';")
print("with it, they route to different process owners.")
