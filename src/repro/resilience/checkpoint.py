"""Checkpoint/resume: an interrupted run is a partial result, not a loss.

A million-cell wafer run that dies at 97% — power cut, pre-empted batch
job, plain Ctrl-C — must not restart from zero.  The checkpoint story:

* A run that checkpoints **reserves its run id up front** (under the
  ledger's advisory lock) and persists its partial planes to
  ``<ledger>/checkpoints/<run_id>.npz`` after every completed unit of
  work (macro for scans, die for wafer runs).  Writes are atomic
  (tmp + rename), so a kill mid-save leaves the previous good state.
* ``repro scan --resume r0042`` reloads that file, validates it against
  the resuming configuration via a **resume fingerprint** — the
  data-affecting config fields *excluding* ``jobs``, because worker
  count never changes the planes — and re-executes only the units not
  yet marked complete.  Bit-exactness with an uninterrupted run follows
  from per-unit determinism: completed planes are byte-identical, and
  the remaining units recompute exactly what they always would.
* On completion the manifest is recorded under the reserved id and the
  checkpoint file is deleted — a checkpoint file existing *is* the
  statement "this run has not finished".

The payload is a single ``.npz``: named planes plus one JSON ``meta``
string (fingerprint, completed indices, and caller metadata such as the
CLI's array-rebuild arguments or the wafer's per-die state).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import CheckpointError
from repro.obs.ledger import RunLedger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.measure.config import ScanConfig

__all__ = [
    "ScanCheckpoint",
    "Checkpointer",
    "resume_fingerprint",
    "load_checkpoint",
    "list_checkpoints",
]

_FORMAT = 1


def resume_fingerprint(config: "ScanConfig") -> dict[str, Any]:
    """Config fields a resumed run must replay exactly.

    ``jobs`` is deliberately excluded: parallelism changes wall-clock,
    never planes (the bit-exactness contract pinned by the scan perf
    tests), so a run checkpointed at ``jobs=8`` may legitimately resume
    at ``jobs=1`` on a smaller machine.
    """
    from repro.obs.ledger import config_fingerprint

    fingerprint = config_fingerprint(config)
    fingerprint.pop("jobs", None)
    return fingerprint


@dataclass
class ScanCheckpoint:
    """In-memory image of one checkpoint file.

    ``arrays`` holds the partial result planes (written into in place
    by the run as units complete); ``completed`` lists the finished
    unit indices in completion order; ``meta`` is caller-owned JSON
    state (array-rebuild args, wafer die records, ...).
    """

    kind: str
    run_id: str
    fingerprint: dict[str, Any]
    total: int
    completed: list[int] = field(default_factory=list)
    arrays: dict[str, np.ndarray] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)
    created: str = ""

    @property
    def remaining(self) -> int:
        return self.total - len(self.completed)

    def is_done(self, index: int) -> bool:
        return index in self._done_set()

    def _done_set(self) -> set[int]:
        return set(self.completed)


def _checkpoint_path(ledger: RunLedger, run_id: str) -> Path:
    return ledger.checkpoint_dir / f"{run_id}.npz"


def load_checkpoint(path: str | Path) -> ScanCheckpoint:
    """Read one checkpoint file, raising :class:`CheckpointError` when
    unreadable or malformed."""
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            payload = json.loads(str(data["meta"]))
            arrays = {
                key: np.array(data[key]) for key in data.files if key != "meta"
            }
    except CheckpointError:
        raise
    except Exception as exc:  # lint: allow-broad-except - wrapped and re-raised
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    try:
        if int(payload["format"]) != _FORMAT:
            raise CheckpointError(
                f"checkpoint {path} has format {payload['format']}, "
                f"expected {_FORMAT}"
            )
        return ScanCheckpoint(
            kind=str(payload["kind"]),
            run_id=str(payload["run_id"]),
            fingerprint=dict(payload["fingerprint"]),
            total=int(payload["total"]),
            completed=[int(i) for i in payload["completed"]],
            arrays=arrays,
            meta=dict(payload.get("meta", {})),
            created=str(payload.get("created", "")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed checkpoint {path}: {exc}") from exc


def list_checkpoints(ledger: RunLedger) -> list[ScanCheckpoint]:
    """Every unfinished (checkpointed) run in the ledger, by run id."""
    directory = ledger.checkpoint_dir
    if not directory.exists():
        return []
    return [
        load_checkpoint(path) for path in sorted(directory.glob("r*.npz"))
    ]


class Checkpointer:
    """Drives checkpointing for one run (attach via ``ScanConfig.checkpoint``).

    Parameters
    ----------
    ledger:
        The :class:`RunLedger` (or its root path) that owns the
        checkpoint directory and the reserved run id.
    resume:
        Run id of an existing checkpoint to resume, or ``None`` to
        start fresh.
    meta:
        Caller-owned JSON state folded into the checkpoint's ``meta``
        on a fresh :meth:`start` (the CLI stores its array-rebuild
        arguments here so ``--resume`` can reconstruct the array).
        Ignored when resuming — the stored meta wins.
    min_save_seconds:
        Minimum seconds between the atomic persists that
        :meth:`mark_done` triggers.  ``0.0`` (the default) persists
        after every unit — the strongest crash guarantee.  A fleet
        shard raises this to bound checkpoint I/O on large wafers:
        completed units still accumulate in memory on every
        ``mark_done``, a crash merely re-runs the units finished since
        the last persist, and resume stays bit-exact because re-run
        dies reproduce their planes from the same RNG fast-forward.
        Once throttled, the gap also adapts to the measured write cost
        (a persist is deferred until it would cost at most
        ``_MAX_SAVE_FRACTION`` of the elapsed runtime), so checkpoint
        I/O stays a bounded fraction of the run no matter how large
        the planes grow.  An explicit :meth:`save` always writes,
        throttle or not.
    """

    #: With throttling on, persists wait until their measured write
    #: cost is at most this fraction of the time since the last one.
    _MAX_SAVE_FRACTION = 0.05

    def __init__(
        self,
        ledger: "RunLedger | str | Path",
        resume: str | None = None,
        *,
        meta: dict[str, Any] | None = None,
        min_save_seconds: float = 0.0,
    ) -> None:
        self.ledger = ledger if isinstance(ledger, RunLedger) else RunLedger(ledger)
        self.resume = resume
        self.base_meta = dict(meta or {})
        self.min_save_seconds = float(min_save_seconds)
        self.state: ScanCheckpoint | None = None
        self._last_save: float | None = None
        self._save_cost = 0.0
        self._done_seen: set[int] | None = None

    @property
    def resuming(self) -> bool:
        return self.resume is not None

    @property
    def run_id(self) -> str:
        if self.state is None:
            raise CheckpointError("checkpointer not started")
        return self.state.run_id

    @property
    def path(self) -> Path:
        return _checkpoint_path(self.ledger, self.run_id)

    # -- lifecycle -----------------------------------------------------

    def start(
        self,
        kind: str,
        fingerprint: dict[str, Any],
        arrays: dict[str, np.ndarray],
        *,
        total: int,
        meta: dict[str, Any] | None = None,
    ) -> ScanCheckpoint:
        """Open the run: reserve a fresh id, or reload + validate ``resume``.

        On resume the loaded planes replace the caller's blanks (the
        caller keeps writing into ``state.arrays``); kind, fingerprint,
        unit count and array shapes must all match or the mismatch is
        refused with a :class:`CheckpointError` naming the difference.
        """
        if "meta" in arrays:
            raise CheckpointError("array name 'meta' is reserved")
        if self.resume is not None:
            state = self._load_resume(kind, fingerprint, arrays, total)
        else:
            with self.ledger.locked():
                run_id = self.ledger.next_run_id()
                state = ScanCheckpoint(
                    kind=kind,
                    run_id=run_id,
                    fingerprint=dict(fingerprint),
                    total=total,
                    arrays=dict(arrays),
                    meta={**self.base_meta, **(meta or {})},
                    created=_now(),
                )
                # Writing the file inside the lock *is* the id
                # reservation — next_run_id scans this directory.
                began = time.monotonic()
                self._write(state)
                self._last_save = time.monotonic()
                self._save_cost = self._last_save - began
        # A reused Checkpointer must not carry the previous run's
        # completed-index cache into a new run.
        self._done_seen = None
        self.state = state
        return state

    def _load_resume(
        self,
        kind: str,
        fingerprint: dict[str, Any],
        arrays: dict[str, np.ndarray],
        total: int,
    ) -> ScanCheckpoint:
        path = _checkpoint_path(self.ledger, str(self.resume))
        if not path.exists():
            known = ", ".join(c.run_id for c in list_checkpoints(self.ledger))
            raise CheckpointError(
                f"no checkpoint {self.resume!r} in {self.ledger.checkpoint_dir} "
                f"(unfinished runs: {known or '(none)'})"
            )
        state = load_checkpoint(path)
        if state.kind != kind:
            raise CheckpointError(
                f"checkpoint {state.run_id} is a {state.kind!r} run, "
                f"cannot resume as {kind!r}"
            )
        if state.fingerprint != dict(fingerprint):
            raise CheckpointError(
                f"checkpoint {state.run_id} was written under config "
                f"{state.fingerprint}, resuming config is {dict(fingerprint)}; "
                "refusing to mix results"
            )
        if state.total != total:
            raise CheckpointError(
                f"checkpoint {state.run_id} covers {state.total} units, "
                f"resuming run has {total}"
            )
        for name, blank in arrays.items():
            stored = state.arrays.get(name)
            if stored is None or stored.shape != blank.shape:
                raise CheckpointError(
                    f"checkpoint {state.run_id} plane {name!r} has shape "
                    f"{None if stored is None else stored.shape}, "
                    f"expected {blank.shape} — different array geometry?"
                )
        return state

    # -- progress ------------------------------------------------------

    def mark_done(self, index: int) -> None:
        """Record unit ``index`` complete and persist the state.

        With ``min_save_seconds`` set, the in-memory record always
        updates but the persist is skipped while the throttle window is
        open — the durable checkpoint then trails the live run by at
        most one window of work.
        """
        state = self._require_state()
        # Membership via a cached set — rebuilding one from the
        # completed list per unit would make a long run quadratic.
        if self._done_seen is None:
            self._done_seen = state._done_set()
        if index not in self._done_seen:
            state.completed.append(index)
            self._done_seen.add(index)
        if self.min_save_seconds > 0.0 and self._last_save is not None:
            gap = max(
                self.min_save_seconds,
                self._save_cost / self._MAX_SAVE_FRACTION,
            )
            if time.monotonic() - self._last_save < gap:
                return
        self.save()

    def save(self) -> None:
        """Persist the current state atomically (never throttled)."""
        began = time.monotonic()
        self._write(self._require_state())
        self._last_save = time.monotonic()
        self._save_cost = self._last_save - began

    def finish(self) -> str:
        """Close the run: delete the checkpoint file, return the run id.

        The caller records the final manifest under this id — after
        ``finish`` the ledger shows a completed run and no checkpoint.
        """
        state = self._require_state()
        path = _checkpoint_path(self.ledger, state.run_id)
        if path.exists():
            path.unlink()
        self._done_seen = None
        return state.run_id

    def _require_state(self) -> ScanCheckpoint:
        if self.state is None:
            raise CheckpointError("checkpointer not started")
        return self.state

    def _write(self, state: ScanCheckpoint) -> None:
        directory = self.ledger.checkpoint_dir
        directory.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "format": _FORMAT,
                "kind": state.kind,
                "run_id": state.run_id,
                "fingerprint": state.fingerprint,
                "total": state.total,
                "completed": state.completed,
                "meta": state.meta,
                "created": state.created,
                "updated": _now(),
            }
        )
        path = _checkpoint_path(self.ledger, state.run_id)
        tmp = path.with_suffix(".tmp.npz")
        np.savez_compressed(tmp, meta=np.array(payload), **state.arrays)
        os.replace(tmp, path)


def _now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")
