"""Diagnosis methodology on top of the analog bitmap.

The paper closes by claiming "the diagnosis of failure of each cell in
the array is improved".  This package implements that improvement:

- :class:`CellClassifier` — per-cell verdicts combining the analog code,
  the spec window, digital test results and *neighbourhood context* (a
  dielectric short leaves a capacitive fingerprint on its row-mates'
  measurements, which disambiguates the paper's code-0 three-way tie);
- :class:`ProcessMonitor` — population statistics, Cpk, drift and tilt
  tracking for process-module health;
- :mod:`repro.diagnosis.failure_analysis` — signature → root-cause
  mapping producing a failure-analysis report;
- :mod:`repro.diagnosis.repair` — BISR-style redundancy allocation
  driven by either bitmap flavour.
"""

from repro.diagnosis.classifier import CellClassifier, CellVerdict
from repro.diagnosis.process_monitor import ProcessMonitor, ProcessReport
from repro.diagnosis.failure_analysis import FailureAnalyzer, RootCause, Finding
from repro.diagnosis.repair import RepairPlanner, RepairPlan
from repro.diagnosis.pipeline import DiagnosisPipeline, PipelineReport
from repro.diagnosis.yield_model import YieldResult, YieldSimulator
from repro.diagnosis.leakage_map import LeakageBounds, extract_leakage, retention_ladder
from repro.diagnosis.compensation import compensate_estimates

__all__ = [
    "CellClassifier",
    "CellVerdict",
    "ProcessMonitor",
    "ProcessReport",
    "FailureAnalyzer",
    "RootCause",
    "Finding",
    "RepairPlanner",
    "RepairPlan",
    "DiagnosisPipeline",
    "PipelineReport",
    "YieldResult",
    "YieldSimulator",
    "LeakageBounds",
    "extract_leakage",
    "retention_ladder",
    "compensate_estimates",
]
