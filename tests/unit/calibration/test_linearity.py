"""Converter DNL/INL metrology."""

import numpy as np
import pytest

from repro.calibration.abacus import Abacus
from repro.calibration.linearity import (
    LinearityReport,
    analyze_linearity,
    lazy_linear_estimate,
)
from repro.errors import CalibrationError
from repro.units import fF, to_fF


@pytest.fixture(scope="module")
def report(abacus_2x2):
    return analyze_linearity(abacus_2x2)


def test_lsb_matches_mean_bin_width(report, abacus_2x2):
    widths = np.diff(abacus_2x2.edges)
    assert report.lsb == pytest.approx(float(widths.mean()))


def test_dnl_is_zero_mean_by_construction(report):
    assert float(report.dnl.mean()) == pytest.approx(0.0, abs=1e-12)


def test_designed_converter_is_reasonably_linear(report):
    # The EKV square-law vs charge-share compression mostly cancel.
    assert report.max_dnl < 0.5
    assert report.max_inl < 0.6


def test_inl_is_fit_residual(report, abacus_2x2):
    codes = np.arange(1, abacus_2x2.edges.size + 1)
    fitted = report.offset + report.gain * codes
    recomputed = (abacus_2x2.edges - fitted) / report.lsb
    assert np.allclose(recomputed, report.inl)


def test_perfectly_linear_abacus(structure_2x2):
    edges = np.linspace(10 * fF, 55 * fF, 20)
    report = analyze_linearity(Abacus(structure_2x2, edges))
    assert report.max_dnl == pytest.approx(0.0, abs=1e-9)
    assert report.max_inl == pytest.approx(0.0, abs=1e-9)
    assert report.gain == pytest.approx(float(edges[1] - edges[0]))


def test_lazy_linear_vs_abacus_estimates(report, abacus_2x2):
    # The single-gain readout deviates from the abacus by at most
    # max_inl LSBs anywhere in range.
    for code in range(2, 19):
        lazy = lazy_linear_estimate(report, code)
        proper = abacus_2x2.estimate(code)
        assert abs(lazy - proper) < (report.max_inl + 0.6) * report.lsb


def test_linear_readout_error_bounds(report):
    assert report.linear_readout_error(10) >= 0
    with pytest.raises(CalibrationError):
        report.linear_readout_error(0)


def test_degenerate_abacus_rejected(structure_2x2):
    edges = np.full(20, 30 * fF)  # zero-width bins
    with pytest.raises(CalibrationError):
        analyze_linearity(Abacus(structure_2x2, edges))


def test_summary_renders(report):
    text = report.summary()
    assert "DNL" in text and "INL" in text
