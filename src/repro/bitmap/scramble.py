"""Logical↔physical address descrambling for bitmaps.

Tester fail data arrives in *logical* addresses; the spatial signatures
the paper's methodology reads (rows, columns, clusters, gradients) only
exist in *physical* coordinates.  Real memories scramble the two —
folded row decoding, twisted bitlines, interleaved column mux — so
failure analysis always starts by descrambling the bitmap.

:class:`AddressScrambler` captures one memory's mapping as a pair of
permutations and converts either direction; the factory methods build
the classic schemes.  :func:`descramble_demo_pair` shows the payoff: a
physical row defect looks like scattered noise in logical space and
snaps into a ROW signature after descrambling (pinned in tests).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DiagnosisError


def _check_permutation(perm: np.ndarray, size: int, name: str) -> np.ndarray:
    perm = np.asarray(perm, dtype=int)
    if perm.shape != (size,) or sorted(perm.tolist()) != list(range(size)):
        raise DiagnosisError(f"{name} must be a permutation of 0..{size - 1}")
    return perm


class AddressScrambler:
    """Bidirectional logical↔physical address mapping.

    ``row_map[logical] = physical`` and likewise for columns.  The same
    object converts whole bitmaps (any dtype) and single addresses.
    """

    def __init__(self, row_map: np.ndarray, col_map: np.ndarray) -> None:
        self.row_map = _check_permutation(row_map, len(row_map), "row_map")
        self.col_map = _check_permutation(col_map, len(col_map), "col_map")
        self._row_inv = np.argsort(self.row_map)
        self._col_inv = np.argsort(self.col_map)

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------

    @classmethod
    def identity(cls, rows: int, cols: int) -> "AddressScrambler":
        """No scrambling (direct-decoded memory)."""
        return cls(np.arange(rows), np.arange(cols))

    @classmethod
    def folded_rows(cls, rows: int, cols: int) -> "AddressScrambler":
        """Folded row decoder: logical rows alternate top/bottom halves.

        Logical row 0, 1, 2, ... maps to physical 0, rows−1, 1,
        rows−2, ... — the classic shared-wordline-driver layout.
        """
        physical = np.empty(rows, dtype=int)
        lo, hi = 0, rows - 1
        for logical in range(rows):
            if logical % 2 == 0:
                physical[logical] = lo
                lo += 1
            else:
                physical[logical] = hi
                hi -= 1
        return cls(physical, np.arange(cols))

    @classmethod
    def interleaved_columns(cls, rows: int, cols: int, ways: int = 2) -> "AddressScrambler":
        """Column-mux interleave: logical col k maps to physical
        ``(k % ways)·(cols//ways) + k//ways``.
        """
        if ways < 1 or cols % ways:
            raise DiagnosisError(f"ways ({ways}) must divide cols ({cols})")
        span = cols // ways
        physical = np.array([(k % ways) * span + k // ways for k in range(cols)])
        return cls(np.arange(rows), physical)

    @classmethod
    def gray_rows(cls, rows: int, cols: int) -> "AddressScrambler":
        """Gray-coded row decoder (rows must be a power of two)."""
        if rows & (rows - 1):
            raise DiagnosisError(f"gray rows need a power-of-two count, got {rows}")
        physical = np.array([logical ^ (logical >> 1) for logical in range(rows)])
        return cls(physical, np.arange(cols))

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, cols) the scrambler covers."""
        return (len(self.row_map), len(self.col_map))

    def to_physical(self, logical_map: np.ndarray) -> np.ndarray:
        """Reorder a logical-address bitmap into physical coordinates."""
        logical_map = np.asarray(logical_map)
        if logical_map.shape != self.shape:
            raise DiagnosisError(
                f"map shape {logical_map.shape} != scrambler {self.shape}"
            )
        physical = np.empty_like(logical_map)
        physical[np.ix_(self.row_map, self.col_map)] = logical_map
        return physical

    def to_logical(self, physical_map: np.ndarray) -> np.ndarray:
        """Reorder a physical-address bitmap into logical coordinates."""
        physical_map = np.asarray(physical_map)
        if physical_map.shape != self.shape:
            raise DiagnosisError(
                f"map shape {physical_map.shape} != scrambler {self.shape}"
            )
        return physical_map[np.ix_(self.row_map, self.col_map)]

    def physical_address(self, row: int, col: int) -> tuple[int, int]:
        """Physical (row, col) of one logical address."""
        rows, cols = self.shape
        if not (0 <= row < rows and 0 <= col < cols):
            raise DiagnosisError(f"logical address ({row}, {col}) out of range")
        return int(self.row_map[row]), int(self.col_map[col])

    def logical_address(self, row: int, col: int) -> tuple[int, int]:
        """Logical (row, col) of one physical address."""
        rows, cols = self.shape
        if not (0 <= row < rows and 0 <= col < cols):
            raise DiagnosisError(f"physical address ({row}, {col}) out of range")
        return int(self._row_inv[row]), int(self._col_inv[col])
