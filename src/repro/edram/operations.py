"""Behavioural array operations: write, read, refresh, pause.

This is the functional-test view of the array used by the march-test
digital baseline.  Every operation advances an internal behavioural
clock; retention effects emerge naturally because reads evaluate each
cell's leakage droop at the current time.

Read is modelled as a real DRAM read: V_DD/2 bitline precharge, charge
sharing with the cell (:mod:`repro.edram.bitline`), resolution by the
sense amplifier (:mod:`repro.edram.senseamp`), then write-back (restore).
Defects shape the read signal exactly as described in
:mod:`repro.edram.defects`; BRIDGE defects couple horizontally adjacent
storage nodes so that writes to one victim overwrite its partner, which
is what lets march elements catch them.
"""

from __future__ import annotations

import numpy as np

from repro.edram.array import EDRAMArray
from repro.edram.bitline import Bitline
from repro.edram.cell import DRAMCell
from repro.edram.defects import DefectKind
from repro.edram.senseamp import SenseAmplifier
from repro.errors import ArrayConfigError


class ArrayOperations:
    """Functional interface to an :class:`~repro.edram.array.EDRAMArray`.

    Parameters
    ----------
    array:
        The array under test.
    senseamp:
        Sense amplifier model; a default (3 mV σ offset) is built when
        omitted.
    cycle_time:
        Behavioural time consumed by each write/read/refresh, seconds.
    """

    def __init__(
        self,
        array: EDRAMArray,
        senseamp: SenseAmplifier | None = None,
        cycle_time: float = 20e-9,
    ) -> None:
        if cycle_time <= 0:
            raise ArrayConfigError(f"cycle_time must be positive, got {cycle_time}")
        self.array = array
        self.senseamp = senseamp if senseamp is not None else SenseAmplifier()
        self.cycle_time = cycle_time
        self.now = 0.0
        self._bitline = Bitline(
            capacitance=array.bitline_capacitance(),
            precharge_voltage=array.tech.half_vdd,
        )

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    def pause(self, duration: float) -> None:
        """Idle for ``duration`` seconds (retention stress)."""
        if duration < 0:
            raise ArrayConfigError(f"pause duration must be >= 0, got {duration}")
        self.now += duration

    def _tick(self) -> None:
        self.now += self.cycle_time

    # ------------------------------------------------------------------
    # Bridge topology
    # ------------------------------------------------------------------

    def _bridge_partner(self, row: int, col: int) -> tuple[int, int] | None:
        """Address of the cell sharing a bridged storage node, if any."""
        if self.array.cell(row, col).has_defect(DefectKind.BRIDGE):
            return (row, col + 1)
        if col > 0 and self.array.cell(row, col - 1).has_defect(DefectKind.BRIDGE):
            return (row, col - 1)
        return None

    # ------------------------------------------------------------------
    # Single-cell operations
    # ------------------------------------------------------------------

    def write(self, row: int, col: int, bit: bool) -> None:
        """Write one bit; a bridged partner node is overwritten too."""
        level = self.array.tech.vdd if bit else 0.0
        self.array.cell(row, col).write(level, self.now)
        partner = self._bridge_partner(row, col)
        if partner is not None:
            p_row, p_col = partner
            self.array.cell(p_row, p_col).write(level, self.now)
        self._tick()

    def read(self, row: int, col: int) -> bool:
        """Read one bit (destructive read + restore), honouring defects."""
        cell = self.array.cell(row, col)
        capacitance, voltage = self._presented_state(row, col, cell)
        signal = self._bitline.read_signal(capacitance, voltage)
        bit = self.senseamp.resolve(signal)
        self._restore(row, col, cell, bit)
        self._tick()
        return bit

    def _presented_state(self, row: int, col: int, cell: DRAMCell) -> tuple[float, float]:
        """(capacitance, voltage) the cell presents to its bitline."""
        plate_bias = self.array.tech.half_vdd
        if cell.has_defect(DefectKind.SHORT):
            # Storage node resistively at the plate bias; full capacitance
            # couples but carries no data signal.
            return cell.capacitance, plate_bias
        if cell.has_defect(DefectKind.OPEN) or cell.has_defect(DefectKind.ACCESS_OPEN):
            return 0.0, plate_bias
        partner = self._bridge_partner(row, col)
        if partner is not None:
            p_cell = self.array.cell(*partner)
            total = cell.capacitance + p_cell.capacitance
            # The shared node: both cells were written together, so they
            # agree unless only one was rewritten through a non-bridge
            # path; average weighted by capacitance covers both cases.
            v_self = cell.stored_voltage(self.now, plate_bias)
            v_partner = p_cell.stored_voltage(self.now, plate_bias)
            voltage = (
                cell.capacitance * v_self + p_cell.capacitance * v_partner
            ) / total
            return total, voltage
        return cell.capacitance, cell.stored_voltage(self.now, plate_bias)

    def _restore(self, row: int, col: int, cell: DRAMCell, bit: bool) -> None:
        """Write-back after a destructive read (refreshes the cell)."""
        level = self.array.tech.vdd if bit else 0.0
        cell.write(level, self.now)
        partner = self._bridge_partner(row, col)
        if partner is not None:
            self.array.cell(*partner).write(level, self.now)

    def refresh(self, row: int, col: int) -> bool:
        """Refresh one cell (read + restore); returns the read value."""
        return self.read(row, col)

    # ------------------------------------------------------------------
    # Whole-array helpers
    # ------------------------------------------------------------------

    def write_solid(self, bit: bool) -> None:
        """Write the same value to every cell, row-major ascending."""
        for r in range(self.array.rows):
            for c in range(self.array.cols):
                self.write(r, c, bit)

    def write_checkerboard(self, phase: bool = False) -> None:
        """Write a checkerboard; ``phase`` flips which parity gets '1'."""
        for r in range(self.array.rows):
            for c in range(self.array.cols):
                self.write(r, c, ((r + c) % 2 == 0) != phase)

    def read_all(self) -> np.ndarray:
        """Read every cell; returns a boolean (rows, cols) array."""
        return np.array(
            [[self.read(r, c) for c in range(self.array.cols)] for r in range(self.array.rows)]
        )

    def expected_checkerboard(self, phase: bool = False) -> np.ndarray:
        """The ideal checkerboard pattern for comparison with reads."""
        r = np.arange(self.array.rows)[:, None]
        c = np.arange(self.array.cols)[None, :]
        return (((r + c) % 2) == 0) != phase

    @property
    def read_signal_nominal(self) -> float:
        """|ΔV| a healthy full cell produces at the sense amp, volts."""
        return abs(
            self._bitline.read_signal(self.array.tech.cell_capacitance, self.array.tech.vdd)
        )
