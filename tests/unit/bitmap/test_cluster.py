"""Connected components and cluster statistics."""

import numpy as np
import pytest

from repro.bitmap.cluster import ClusterStats, cluster_stats, connected_components
from repro.errors import DiagnosisError


def _mask(shape, cells):
    m = np.zeros(shape, dtype=bool)
    for r, c in cells:
        m[r, c] = True
    return m


def test_empty_mask():
    assert connected_components(np.zeros((4, 4), dtype=bool)) == []


def test_single_cell():
    comps = connected_components(_mask((4, 4), [(1, 1)]))
    assert comps == [{(1, 1)}]


def test_diagonal_cells_are_connected():
    comps = connected_components(_mask((4, 4), [(0, 0), (1, 1)]))
    assert len(comps) == 1


def test_separate_groups_sorted_by_size():
    cells = [(0, 0), (0, 1), (0, 2), (3, 3)]
    comps = connected_components(_mask((5, 5), cells))
    assert len(comps) == 2
    assert len(comps[0]) == 3


def test_validation():
    with pytest.raises(DiagnosisError):
        connected_components(np.zeros((2, 2)))
    with pytest.raises(DiagnosisError):
        connected_components(np.zeros(3, dtype=bool))


def test_cluster_stats_geometry():
    stats = cluster_stats({(1, 1), (1, 2), (2, 1), (2, 2)})
    assert stats.size == 4
    assert (stats.height, stats.width) == (2, 2)
    assert stats.density == 1.0
    assert stats.centroid == (1.5, 1.5)


def test_sparse_cluster_density():
    stats = cluster_stats({(0, 0), (2, 2)})
    assert stats.density == pytest.approx(2 / 9)


def test_empty_cluster_rejected():
    with pytest.raises(DiagnosisError):
        cluster_stats(set())


def test_line_stats():
    stats = cluster_stats({(3, c) for c in range(6)})
    assert stats.height == 1
    assert stats.width == 6
