"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library-level failures with a
single ``except`` clause while letting programming errors (``TypeError``,
``KeyError`` from misuse of plain dicts, ...) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class NetlistError(ReproError):
    """A circuit netlist is malformed (unknown node, duplicate element, ...)."""


class ConvergenceError(ReproError):
    """A nonlinear or transient solve failed to converge.

    Attributes
    ----------
    iterations:
        Number of Newton iterations performed before giving up.
    residual:
        Final residual norm (amps for KCL residuals).
    """

    def __init__(self, message: str, iterations: int = 0, residual: float = float("nan")):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class SingularCircuitError(ReproError):
    """The MNA system is singular (floating node, voltage-source loop, ...)."""


class TechnologyError(ReproError):
    """A technology card or device parameter set is invalid."""


class ArrayConfigError(ReproError):
    """An eDRAM array geometry or addressing request is invalid."""


class DefectError(ReproError):
    """A defect specification cannot be applied to the target array."""


class MeasurementError(ReproError):
    """The measurement structure was driven outside its legal flow."""


class CalibrationError(ReproError):
    """An abacus or specification window cannot be built or inverted."""


class DiagnosisError(ReproError):
    """A bitmap analysis or repair computation received invalid input."""
