"""Array geometry, macro tiling, addressing."""

import numpy as np
import pytest

from repro.edram.array import CellAddress, EDRAMArray
from repro.errors import ArrayConfigError
from repro.units import fF


class TestConstruction:
    def test_rejects_bad_dims(self):
        with pytest.raises(ArrayConfigError):
            EDRAMArray(0, 4)

    def test_macro_cols_must_divide(self):
        with pytest.raises(ArrayConfigError):
            EDRAMArray(4, 6, macro_cols=4)

    def test_macro_rows_must_divide(self):
        with pytest.raises(ArrayConfigError):
            EDRAMArray(6, 4, macro_rows=4)

    def test_capacitance_map_shape_checked(self):
        with pytest.raises(ArrayConfigError):
            EDRAMArray(2, 2, capacitance_map=np.ones((3, 3)) * 30 * fF)

    def test_capacitance_map_positivity_checked(self):
        bad = np.full((2, 2), 30 * fF)
        bad[0, 0] = 0.0
        with pytest.raises(ArrayConfigError):
            EDRAMArray(2, 2, capacitance_map=bad)

    def test_capacitance_map_applied(self):
        cap = np.arange(1, 5).reshape(2, 2) * 10 * fF
        arr = EDRAMArray(2, 2, capacitance_map=cap)
        assert arr.cell(1, 1).capacitance == pytest.approx(40 * fF)
        assert np.allclose(arr.capacitance_matrix(), cap)


class TestAddressing:
    def test_cell_bounds(self):
        arr = EDRAMArray(4, 4)
        with pytest.raises(ArrayConfigError):
            arr.cell(4, 0)
        with pytest.raises(ArrayConfigError):
            arr.cell(0, -1)

    def test_addresses_row_major(self):
        arr = EDRAMArray(2, 2)
        assert arr.addresses() == [
            CellAddress(0, 0), CellAddress(0, 1), CellAddress(1, 0), CellAddress(1, 1),
        ]

    def test_num_cells(self):
        assert EDRAMArray(8, 16).num_cells == 128


class TestMacroTiling:
    def test_column_stripe_default(self):
        arr = EDRAMArray(8, 6, macro_cols=2)
        assert arr.num_macros == 3
        assert arr.macro(0).rows == 8

    def test_row_segmentation(self):
        arr = EDRAMArray(8, 6, macro_cols=2, macro_rows=4)
        assert arr.num_macros == 6
        assert arr.macros_per_row == 3
        assert arr.macros_per_col == 2
        tile = arr.macro(4)  # second tile row, middle column group
        assert tile.row_start == 4
        assert tile.col_start == 2

    def test_macro_of(self):
        arr = EDRAMArray(8, 6, macro_cols=2, macro_rows=4)
        assert arr.macro_of(0, 0) == 0
        assert arr.macro_of(3, 5) == 2
        assert arr.macro_of(4, 0) == 3
        assert arr.macro_of(7, 5) == 5
        with pytest.raises(ArrayConfigError):
            arr.macro_of(8, 0)

    def test_macro_local_cell_lookup(self):
        arr = EDRAMArray(8, 6, macro_cols=2, macro_rows=4)
        arr.cell(5, 3).capacitance = 99 * fF
        tile = arr.macro(4)
        assert tile.cell(1, 1).capacitance == pytest.approx(99 * fF)

    def test_macro_local_bounds(self):
        tile = EDRAMArray(8, 6, macro_cols=2, macro_rows=4).macro(0)
        with pytest.raises(ArrayConfigError):
            tile.cell(4, 0)
        with pytest.raises(ArrayConfigError):
            tile.cell(0, 2)

    def test_global_address(self):
        tile = EDRAMArray(8, 6, macro_cols=2, macro_rows=4).macro(4)
        addr = tile.global_address(1, 1)
        assert (addr.row, addr.col) == (5, 3)

    def test_bitline_capacitance_is_full_height(self, tech):
        arr = EDRAMArray(128, 4, macro_cols=2, macro_rows=16)
        tile = arr.macro(0)
        assert tile.bitline_capacitance == pytest.approx(tech.bitline_capacitance(128))

    def test_plate_parasitic_is_tile_sized(self, tech):
        arr = EDRAMArray(128, 4, macro_cols=2, macro_rows=16)
        assert arr.macro(0).plate_parasitic == pytest.approx(tech.plate_parasitic(32))

    def test_macro_index_bounds(self):
        arr = EDRAMArray(4, 4)
        with pytest.raises(ArrayConfigError):
            arr.macro(99)

    def test_cells_enumeration(self):
        tile = EDRAMArray(4, 4, macro_cols=2, macro_rows=2).macro(3)
        triples = tile.cells()
        assert len(triples) == 4
        assert all(cell is tile.cell(r, c) for r, c, cell in triples)


class TestBulkViews:
    def test_effective_capacitance_reflects_defects(self):
        from repro.edram.defects import CellDefect, DefectKind

        arr = EDRAMArray(2, 2)
        arr.cell(0, 0).apply_defect(CellDefect(DefectKind.OPEN))
        eff = arr.effective_capacitance_matrix()
        assert eff[0, 0] == 0.0
        assert eff[1, 1] > 0

    def test_defect_locations(self):
        from repro.edram.defects import CellDefect, DefectKind

        arr = EDRAMArray(2, 2)
        arr.cell(1, 0).apply_defect(CellDefect(DefectKind.SHORT))
        assert arr.defect_locations() == [(1, 0)]

    def test_capacitance_matrix_tracks_direct_mutation(self):
        arr = EDRAMArray(2, 2)
        arr.cell(0, 1).capacitance = 45 * fF
        assert arr.capacitance_matrix()[0, 1] == 45 * fF
        # Returned matrix is a copy: writing it must not corrupt the array.
        view = arr.capacitance_matrix()
        view[1, 1] = 0.0
        assert arr.capacitance_matrix()[1, 1] > 0

    def test_capacitance_matrix_matches_cells_exactly(self):
        rng = np.random.default_rng(5)
        cap = (25 + rng.random((4, 4)) * 10) * fF
        arr = EDRAMArray(4, 4, capacitance_map=cap)
        arr.cell(2, 2).capacitance = 50 * fF
        expected = np.array(
            [[arr.cell(r, c).capacitance for c in range(4)] for r in range(4)]
        )
        assert np.array_equal(arr.capacitance_matrix(), expected)

    def test_defect_kind_matrix_and_mask(self):
        from repro.edram.defects import KIND_CODES, CellDefect, DefectKind

        arr = EDRAMArray(2, 4)
        arr.cell(0, 2).apply_defect(CellDefect(DefectKind.BRIDGE))
        kinds = arr.defect_kind_matrix()
        assert kinds[0, 2] == KIND_CODES[DefectKind.BRIDGE]
        assert (kinds != 0).sum() == 1
        mask = arr.defect_mask(DefectKind.BRIDGE)
        assert mask[0, 2] and mask.sum() == 1
        assert not arr.defect_mask(DefectKind.SHORT).any()

    def test_defect_count_is_per_kind(self):
        from repro.edram.defects import CellDefect, DefectKind

        arr = EDRAMArray(4, 4)
        assert arr.defect_count() == 0
        arr.cell(0, 0).apply_defect(CellDefect(DefectKind.SHORT))
        arr.cell(1, 1).apply_defect(CellDefect(DefectKind.SHORT))
        arr.cell(2, 2).apply_defect(CellDefect(DefectKind.LOW_CAP, 0.5))
        assert arr.defect_count(DefectKind.SHORT) == 2
        assert arr.defect_count(DefectKind.LOW_CAP) == 1
        assert arr.defect_count(DefectKind.BRIDGE) == 0
        assert arr.defect_count() == 3

    def test_parametric_defect_updates_capacitance_matrix(self):
        from repro.edram.defects import CellDefect, DefectKind

        arr = EDRAMArray(2, 2)
        before = arr.capacitance_matrix()[0, 0]
        arr.cell(0, 0).apply_defect(CellDefect(DefectKind.LOW_CAP, 0.5))
        assert arr.capacitance_matrix()[0, 0] == before * 0.5

    def test_version_bumps_on_mutation(self):
        from repro.edram.defects import CellDefect, DefectKind

        arr = EDRAMArray(2, 2)
        v0 = arr.version
        arr.cell(0, 0).capacitance = 31 * fF
        assert arr.version > v0
        v1 = arr.version
        arr.cell(1, 1).apply_defect(CellDefect(DefectKind.OPEN))
        assert arr.version > v1
        # Behavioural state (stored data) is not a structural mutation.
        v2 = arr.version
        arr.cell(0, 1).write(1.8, 0.0)
        assert arr.version == v2

    def test_macro_bulk_views_are_tile_slices(self):
        from repro.edram.defects import CellDefect, DefectKind

        arr = EDRAMArray(4, 4, macro_cols=2, macro_rows=2)
        arr.cell(2, 3).capacitance = 44 * fF
        arr.cell(3, 2).apply_defect(CellDefect(DefectKind.SHORT))
        macro = arr.macro(arr.macro_of(2, 3))
        assert macro.capacitance_matrix()[0, 1] == 44 * fF
        assert macro.defect_mask(DefectKind.SHORT)[1, 0]
        assert macro.capacitance_matrix().shape == (2, 2)
