"""Metrics: counters, gauges and histograms with pluggable exporters.

Where :mod:`repro.obs.trace` answers "what happened, in what order,
inside *this* run", metrics answer the aggregate questions — how many
cells went through which tier, how many Newton iterations the solver
needed, how often the sequencer's netlist cache hit.  A
:class:`MetricsRegistry` owns named instruments:

- :class:`Counter` — monotonically increasing count (cells scanned,
  cache hits, solver fallbacks),
- :class:`Gauge` — last-written value (wall seconds of the most recent
  scan, worker count),
- :class:`Histogram` — value distribution with count/sum/min/max/mean
  and percentiles (codes per macro, per-phase durations, solver
  iterations).

Exporters: :meth:`MetricsRegistry.write_jsonl` (one instrument per
line, machine-readable) and :meth:`MetricsRegistry.summary_table`
(aligned text for humans; printed by ``repro scan --metrics``).

Ambient registry
----------------
Deep layers (the charge engine, the Newton solver) cannot thread a
registry argument through every call without polluting the numeric
APIs.  Instead they report to the **ambient** registry: a
context-variable that :func:`use_metrics` installs for the duration of
a ``with`` block and :func:`active_metrics` reads.  Outside any block
the ambient registry is :data:`NULL_METRICS`, whose instruments accept
updates and store nothing — the disabled path is a method call on a
shared singleton.  ``ArrayScanner.scan`` installs its
``ScanConfig.metrics`` registry ambiently, so engine-level instruments
land in the same registry as the scan-level ones.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from contextvars import ContextVar
from time import perf_counter
from typing import Any, Iterable, Iterator, Sequence, TextIO

import numpy as np

from repro.errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "active_metrics",
    "use_metrics",
]


class Counter:
    """Monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        self.value += amount

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "name": self.name, "value": self.value}


class Gauge:
    """Last-written value (may go up or down).

    Each :meth:`set` stamps ``updated`` from a monotonic clock so that
    merging gauge shards from several processes can resolve
    last-writer-wins by write time (``perf_counter`` is system-wide
    ``CLOCK_MONOTONIC`` on Linux, so stamps are comparable across the
    forked pool workers).
    """

    kind = "gauge"
    __slots__ = ("name", "help", "value", "updated")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self.updated = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updated = perf_counter()

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "name": self.name, "value": self.value}


class Histogram:
    """Value distribution; keeps every observation.

    Observation counts in this library are bounded by cells-per-scan and
    timesteps-per-flow, so storing raw values (simple, exact
    percentiles) beats bucketing.  Use :meth:`observe_many` for
    vectorized producers.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "values")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    def observe_many(self, values: Iterable[float]) -> None:
        if isinstance(values, np.ndarray):
            # Hot path: whole-macro code planes land here; tolist()
            # converts to native floats at C speed.
            self.values.extend(values.ravel().astype(float, copy=False).tolist())
        else:
            self.values.extend(float(v) for v in values)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return sum(self.values)

    @property
    def min(self) -> float:
        return min(self.values) if self.values else float("nan")

    @property
    def max(self) -> float:
        return max(self.values) if self.values else float("nan")

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.values else float("nan")

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, ``q`` in [0, 100]."""
        if not 0 <= q <= 100:
            raise ObservabilityError(f"percentile must be in [0, 100], got {q}")
        if not self.values:
            return float("nan")
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1, round(q / 100 * (len(ordered) - 1))))
        return ordered[rank]

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named instruments, created on first use and shared thereafter.

    ``counter``/``gauge``/``histogram`` get-or-create: the same name
    always returns the same instrument, and asking for an existing name
    with a different kind raises :class:`ObservabilityError` (a metric
    cannot silently change type mid-run).
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, cls, name: str, help: str):
        if not name:
            raise ObservabilityError("metric name must be non-empty")
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ObservabilityError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get(Histogram, name, help)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """The instrument registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        """Instruments in name order (stable export order)."""
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    def to_dict(self) -> dict[str, dict[str, Any]]:
        """``{name: instrument dict}`` in name order."""
        return {m.name: m.to_dict() for m in self}

    def to_shipped(self) -> list[tuple[Any, ...]]:
        """Compact wire form for shipping deltas over the worker ack pipe.

        One tuple per instrument — ``("c", name, value)``,
        ``("g", name, value, updated)`` or ``("h", name, values)`` —
        plain strings/floats only, in name order.
        """
        shipped: list[tuple[Any, ...]] = []
        for metric in self:
            if isinstance(metric, Counter):
                shipped.append(("c", metric.name, metric.value))
            elif isinstance(metric, Gauge):
                shipped.append(("g", metric.name, metric.value, metric.updated))
            else:
                shipped.append(("h", metric.name, tuple(metric.values)))
        return shipped

    def merge_shipped(self, shipped: Iterable[Sequence[Any]]) -> None:
        """Fold :meth:`to_shipped` output from another registry into this one.

        Merge semantics per kind:

        - counters **sum** (shards count disjoint work),
        - gauges are **last-writer-wins** on the ``updated`` stamp, with
          the larger value breaking exact-timestamp ties so the result
          is independent of shard arrival order,
        - histograms **concatenate** observations (raw values, so
          percentiles over the union stay exact).

        Kind conflicts with an existing instrument raise
        :class:`ObservabilityError`, same as local get-or-create.
        """
        for record in shipped:
            try:
                tag, name = record[0], record[1]
            except (IndexError, TypeError) as exc:
                raise ObservabilityError(
                    f"malformed shipped metric: {record!r}"
                ) from exc
            if tag == "c":
                self.counter(name).inc(float(record[2]))
            elif tag == "g":
                gauge = self.gauge(name)
                stamp = (float(record[3]), float(record[2]))
                if stamp > (gauge.updated, gauge.value):
                    gauge.value = stamp[1]
                    gauge.updated = stamp[0]
            elif tag == "h":
                self.histogram(name).observe_many(record[2])
            else:
                raise ObservabilityError(
                    f"malformed shipped metric: {record!r}"
                )

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one.

        Equivalent to ``merge_shipped(other.to_shipped())``; see there
        for the per-kind semantics.
        """
        self.merge_shipped(other.to_shipped())

    def write_jsonl(self, target: str | TextIO) -> None:
        """Write one JSON object per instrument to a path or open file."""
        if hasattr(target, "write"):
            for metric in self:
                target.write(json.dumps(metric.to_dict()) + "\n")  # type: ignore[union-attr]
        else:
            with open(target, "w", encoding="utf-8") as fh:  # type: ignore[arg-type]
                for metric in self:
                    fh.write(json.dumps(metric.to_dict()) + "\n")

    def summary_table(self) -> str:
        """Aligned text table of every instrument (the CLI's view)."""
        if not self._metrics:
            return "(no metrics recorded)"
        rows: list[tuple[str, str, str]] = []
        for metric in self:
            if isinstance(metric, Histogram):
                detail = (
                    f"count={metric.count} mean={metric.mean:.6g} "
                    f"min={metric.min:.6g} p50={metric.percentile(50):.6g} "
                    f"p95={metric.percentile(95):.6g} "
                    f"p99={metric.percentile(99):.6g} max={metric.max:.6g}"
                ) if metric.count else "count=0"
                rows.append((metric.name, "histogram", detail))
            else:
                rows.append((metric.name, metric.kind, f"{metric.value:.6g}"))
        width_name = max(len(r[0]) for r in rows)
        width_kind = max(len(r[1]) for r in rows)
        return "\n".join(
            f"{name:<{width_name}}  {kind:<{width_kind}}  {detail}"
            for name, kind, detail in rows
        )


class _NullCounter:
    __slots__ = ()
    kind = "counter"
    name = ""
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    kind = "gauge"
    name = ""
    value = 0.0

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    kind = "histogram"
    name = ""
    count = 0

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: Iterable[float]) -> None:
        pass


class NullMetricsRegistry:
    """No-op registry: shared instruments that discard every update."""

    enabled = False

    _COUNTER = _NullCounter()
    _GAUGE = _NullGauge()
    _HISTOGRAM = _NullHistogram()

    def counter(self, name: str, help: str = "") -> _NullCounter:
        return self._COUNTER

    def gauge(self, name: str, help: str = "") -> _NullGauge:
        return self._GAUGE

    def histogram(self, name: str, help: str = "") -> _NullHistogram:
        return self._HISTOGRAM


#: Shared no-op registry; the ambient default.
NULL_METRICS = NullMetricsRegistry()

_ACTIVE: ContextVar[MetricsRegistry | NullMetricsRegistry] = ContextVar(
    "repro_obs_active_metrics", default=NULL_METRICS
)


def active_metrics() -> MetricsRegistry | NullMetricsRegistry:
    """The ambient registry installed by the nearest :func:`use_metrics`."""
    return _ACTIVE.get()


@contextmanager
def use_metrics(registry: MetricsRegistry | NullMetricsRegistry):
    """Install ``registry`` as the ambient registry for the block."""
    token = _ACTIVE.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE.reset(token)
