"""Retention model."""

import numpy as np
import pytest

from repro.edram.array import EDRAMArray
from repro.edram.defects import CellDefect, DefectKind
from repro.edram.leakage import RetentionModel
from repro.errors import ArrayConfigError
from repro.units import fA


@pytest.fixture()
def model():
    return RetentionModel(v_write=1.8, v_min=0.9)


def test_validation():
    with pytest.raises(ArrayConfigError):
        RetentionModel(v_write=1.0, v_min=1.0)
    with pytest.raises(ArrayConfigError):
        RetentionModel(v_write=1.0, v_min=-0.1)


def test_uniform_array_retention(model, tech):
    arr = EDRAMArray(4, 4, tech=tech)
    matrix = model.retention_matrix(arr)
    expected = 0.9 * tech.cell_capacitance / tech.junction_leak_per_cell
    assert np.allclose(matrix, expected)


def test_worst_cell_is_the_leaky_one(model, tech):
    arr = EDRAMArray(4, 4, tech=tech)
    arr.cell(2, 3).apply_defect(CellDefect(DefectKind.RETENTION, factor=50.0))
    worst, addr = model.worst_retention(arr)
    assert addr == (2, 3)
    healthy = model.cell_retention(arr, 0, 0)
    assert worst == pytest.approx(healthy / 50.0)


def test_refresh_interval_check(model, tech):
    arr = EDRAMArray(2, 2, tech=tech)
    healthy = model.cell_retention(arr, 0, 0)
    assert model.refresh_interval_ok(arr, healthy * 0.5)
    assert not model.refresh_interval_ok(arr, healthy * 2.0)


def test_failing_cells_listing(model, tech):
    arr = EDRAMArray(4, 4, tech=tech)
    arr.cell(1, 1).apply_defect(CellDefect(DefectKind.RETENTION, factor=1000.0))
    healthy = model.cell_retention(arr, 0, 0)
    failing = model.failing_cells(arr, healthy / 100.0)
    assert failing == [(1, 1)]


def test_zero_leak_cell_has_infinite_retention(model):
    arr = EDRAMArray(2, 2, leak_map=np.full((2, 2), 1 * fA))
    arr.cell(0, 0).leak_current = 0.0
    assert model.cell_retention(arr, 0, 0) == float("inf")


def test_default_technology_meets_its_retention_target(model, tech):
    # The nominal card should retain at least its declared target.
    arr = EDRAMArray(2, 2, tech=tech)
    assert model.refresh_interval_ok(arr, tech.retention_target_s)
