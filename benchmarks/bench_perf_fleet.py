"""Fleet orchestration overhead: 2-shard supervised run vs one process.

The fleet exists for fault tolerance, not speed — but fault tolerance
must not tax the healthy path.  This gate measures the full wall-clock
of a 2-shard local fleet (orchestrator + supervised worker
subprocesses + leases + throttled checkpoints + per-shard JSONL
progress) against the same wafer measured by a plain in-process
:meth:`WaferModel.measure_wafer`, and requires the fleet to stay
within **1.25×** of the single-process wall.

The wafer is sized so measurement dominates: each worker subprocess
pays a fresh interpreter + import (~half a second) that a toy wafer
would never amortize, and on a single-core runner the two shards gain
nothing from parallelism — the budget must hold even there.  Both
sides take the best of up to ``ATTEMPTS`` runs, because a loaded
machine inflates any single wall-clock reading.

The run also pins correctness while it's here: the merged lot's
``die_means`` must be bit-identical to the single-process wafer
report's means.  Results append to the ``BENCH_scan.json`` history as
``kind="fleet_overhead"`` so ``check_bench_history`` can chart the
orchestration tax across commits.
"""

import gc
import shutil
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np
from bench_perf_scan import _append_history, _git_rev
from conftest import report

from repro.fleet import FleetOrchestrator, merge_lot
from repro.wafer import WaferModel

#: Wafer width in dies — large enough that per-die measurement, not
#: worker interpreter start-up, dominates both sides of the ratio.
DIAMETER = 121
SEED = 11
SHARDS = 2

#: Fleet wall-clock budget as a multiple of the single-process wall.
BUDGET = 1.25

#: Best-of attempts; stop early once the gate passes.
ATTEMPTS = 3


def _measure_wafer_seconds():
    """One single-process wafer measurement, timed."""
    model = WaferModel(diameter_dies=DIAMETER, seed=SEED)
    gc.collect()
    started = time.perf_counter()
    wafer_report = model.measure_wafer()
    seconds = time.perf_counter() - started
    means = np.array([die.mean_capacitance for die in wafer_report.dies])
    return seconds, means


def _measure_fleet_seconds(root: Path):
    """One 2-shard fleet run + merge, timed (run only — merge checked)."""
    orchestrator = FleetOrchestrator(
        root,
        wafer={"diameter_dies": DIAMETER, "seed": SEED},
        shards=SHARDS,
        poll_seconds=0.02,
    )
    gc.collect()
    started = time.perf_counter()
    fleet_report = orchestrator.run()
    seconds = time.perf_counter() - started
    assert fleet_report.state == "healthy", (
        f"fleet finished {fleet_report.state!r}: "
        f"{[s.to_dict() for s in fleet_report.shards]}"
    )
    lot = merge_lot(root)
    return seconds, lot


def bench_perf_fleet_overhead():
    """2-shard local fleet must stay within 1.25× of one process."""
    best_wafer = float("inf")
    best_fleet = float("inf")
    wafer_means = None
    lot = None
    attempts = 0
    for attempt in range(ATTEMPTS):
        attempts = attempt + 1
        seconds, means = _measure_wafer_seconds()
        best_wafer = min(best_wafer, seconds)
        if wafer_means is None:
            wafer_means = means
        root = Path(tempfile.mkdtemp(prefix="bench-fleet-")) / "fleet"
        try:
            seconds, lot = _measure_fleet_seconds(root)
            best_fleet = min(best_fleet, seconds)
            measured = ~np.isnan(lot.die_means)
            assert measured.all(), "merged lot has unmeasured dies"
            assert np.array_equal(lot.die_means, wafer_means), (
                "merged lot die_means differ from the single-process wafer"
            )
        finally:
            shutil.rmtree(root.parent, ignore_errors=True)
        if best_fleet <= BUDGET * best_wafer:
            break

    ratio = best_fleet / best_wafer
    dies = int(lot.total_dies)
    entry = {
        "kind": "fleet_overhead",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_rev": _git_rev(),
        "diameter_dies": DIAMETER,
        "dies": dies,
        "shards": SHARDS,
        "wafer_seconds": best_wafer,
        "fleet_seconds": best_fleet,
        "fleet_overhead_ratio": ratio,
    }
    _append_history(entry)

    report(
        "fleet overhead (2 shards vs 1 process)",
        "\n".join([
            f"wafer ({dies} dies) : {best_wafer:8.2f} s  (single process)",
            f"fleet x{SHARDS}           : {best_fleet:8.2f} s  (supervised "
            "workers)",
            f"overhead           : {ratio:8.2f}x  (budget {BUDGET:.2f}x, "
            f"{attempts} attempt(s))",
        ]),
    )
    assert ratio <= BUDGET, (
        f"2-shard fleet cost {ratio:.2f}x the single-process wafer "
        f"({best_fleet:.2f}s vs {best_wafer:.2f}s over {attempts} attempts; "
        f"budget {BUDGET:.2f}x)"
    )
