"""Wafer-level monitoring."""

import math

import pytest

from repro.errors import DiagnosisError
from repro.wafer import WaferModel, WaferReport
from repro.units import fF, to_fF


@pytest.fixture(scope="module")
def report():
    return WaferModel(diameter_dies=7, seed=1).measure_wafer()


def test_validation():
    with pytest.raises(DiagnosisError):
        WaferModel(diameter_dies=2)
    with pytest.raises(DiagnosisError):
        WaferModel(die_rows=10, macro_rows=4)
    with pytest.raises(DiagnosisError):
        WaferReport(dies=[], diameter=5)


def test_sites_are_inside_the_circle():
    model = WaferModel(diameter_dies=9)
    for x, y, r in model.sites():
        assert 0 <= r <= 1.0
        centre = 4.0
        assert math.hypot(x - centre, y - centre) <= 4.5 + 1e-9


def test_corner_dies_are_not_printed():
    model = WaferModel(diameter_dies=9)
    coords = {(x, y) for x, y, _ in model.sites()}
    assert (0, 0) not in coords
    assert (4, 4) in coords


def test_wafer_mean_near_nominal(report):
    assert to_fF(report.wafer_mean) == pytest.approx(29.0, abs=1.0)


def test_radial_profile_recovers_planted_drop(report):
    a, b = report.radial_profile()
    assert to_fF(a) == pytest.approx(30.0, abs=0.5)  # centre value
    assert to_fF(-b) == pytest.approx(2.5, abs=0.8)  # planted drop


def test_zonal_means_decrease_outward(report):
    zones = report.zonal_means(rings=3)
    means = [m for _, m, _ in zones]
    counts = [n for _, _, n in zones]
    assert sum(counts) == len(report.dies)
    assert means[0] > means[-1]


def test_zonal_validation(report):
    with pytest.raises(DiagnosisError):
        report.zonal_means(rings=0)


def test_out_of_spec_dies(report):
    bad = report.out_of_spec_dies(spec_lo=29.2 * fF, spec_hi=36 * fF)
    # The edge ring sits below 29.2 fF by construction.
    assert len(bad) > 0
    assert all(d.radius_fraction > 0.3 for d in bad)


def test_ascii_map_renders(report):
    art = report.ascii_map()
    assert "wafer mean" in art
    assert ".." in art  # off-wafer corners


def test_determinism():
    a = WaferModel(diameter_dies=5, seed=3).measure_wafer()
    b = WaferModel(diameter_dies=5, seed=3).measure_wafer()
    assert a.wafer_mean == b.wafer_mean


def test_radial_profile_exact_on_synthetic_dies():
    """The fit recovers a planted a + b·r² profile exactly (no noise)."""
    from repro.wafer import DieSite

    a_true, b_true = 30.0 * fF, -2.5 * fF
    dies = [
        DieSite(x=i, y=0, radius_fraction=r,
                mean_capacitance=a_true + b_true * r**2,
                sigma_capacitance=0.0)
        for i, r in enumerate([0.0, 0.25, 0.5, 0.75, 1.0])
    ]
    a, b = WaferReport(dies=dies, diameter=5).radial_profile()
    assert a == pytest.approx(a_true, rel=1e-9)
    assert b == pytest.approx(b_true, rel=1e-9)


def test_radial_profile_flat_wafer_has_zero_slope():
    from repro.wafer import DieSite

    dies = [
        DieSite(x=i, y=0, radius_fraction=r, mean_capacitance=30.0 * fF,
                sigma_capacitance=0.0)
        for i, r in enumerate([0.0, 0.5, 1.0])
    ]
    a, b = WaferReport(dies=dies, diameter=3).radial_profile()
    assert to_fF(a) == pytest.approx(30.0)
    assert to_fF(b) == pytest.approx(0.0, abs=1e-9)


def test_measure_wafer_reports_die_progress():
    import io
    import json

    from repro.measure.config import ScanConfig
    from repro.obs import JsonlProgress

    buf = io.StringIO()
    model = WaferModel(diameter_dies=3, die_rows=8, die_cols=4,
                       macro_rows=4, macro_cols=2, seed=2)
    model.measure_wafer(config=ScanConfig(progress=JsonlProgress(buf)))
    events = [json.loads(line) for line in buf.getvalue().splitlines()]
    # Progress is die-granular: the per-die cell scans stay silent.
    assert all(e["units"] == "dies" for e in events)
    assert events[-1]["event"] == "finish"
    assert events[-1]["done"] == len(model.sites())


def test_legacy_tech_card_kwarg_warns_and_forwards():
    from repro.tech.corners import Corner, corner_technology

    card = corner_technology(Corner.FF)
    with pytest.warns(DeprecationWarning, match="technology="):
        model = WaferModel(diameter_dies=3, die_rows=8, die_cols=4,
                           macro_rows=4, tech=card, seed=3)
    assert model.tech == card
    # The shimmed model keeps the historical absolute defaults.
    assert model.nominal == 30.0 * fF
    assert model.measure_wafer().wafer_mean > 0


def test_legacy_tech_card_requires_edram_backend():
    from repro.tech.parameters import default_technology

    with pytest.warns(DeprecationWarning):
        with pytest.raises(DiagnosisError):
            WaferModel(diameter_dies=3, tech=default_technology(),
                       technology="fecap")


@pytest.mark.parametrize("technology", ["fecap", "1t"])
def test_wafer_per_technology(technology):
    from repro.technologies import get

    model = WaferModel(diameter_dies=3, die_rows=8, die_cols=4,
                       macro_rows=4, technology=technology, seed=4)
    nominal = get(technology).base_card().cell_capacitance
    report = model.measure_wafer()
    # The wafer profile scales with the technology nominal.
    assert 0.7 * nominal < report.wafer_mean < 1.3 * nominal


def test_wafer_config_technology_mismatch_rejected():
    from repro.errors import MeasurementError
    from repro.measure.config import ScanConfig

    model = WaferModel(diameter_dies=3, die_rows=8, die_cols=4,
                       macro_rows=4, technology="fecap")
    with pytest.raises(MeasurementError, match="fecap"):
        model.measure_wafer(config=ScanConfig(technology="edram"))


def test_wafer_die_fabrication_delegates_to_backend():
    model = WaferModel(diameter_dies=3, die_rows=8, die_cols=4,
                       macro_rows=4, technology="1t", seed=5)
    die = model.fabricate_die(0.0)
    assert die.technology == "1t"
    assert die.retention_time_map().shape == (8, 4)
