"""Instrument fault injection and the qualification screen."""

import numpy as np
import pytest

from repro.edram.array import EDRAMArray
from repro.edram.variation_map import compose_maps, mismatch_map, uniform_map
from repro.errors import MeasurementError
from repro.measure.faults import (
    FaultSpec,
    FaultySequencer,
    StructureFault,
    fault_signature,
)
from repro.measure.sequencer import MeasurementSequencer
from repro.units import fF


@pytest.fixture(scope="module")
def spread_macro(tech):
    """A macro whose healthy codes span several values."""
    capacitance = compose_maps(
        uniform_map((8, 2), 30 * fF), mismatch_map((8, 2), 4 * fF, seed=2)
    )
    array = EDRAMArray(8, 2, tech=tech, capacitance_map=capacitance)
    return array.macro(0)


def _faulty_codes(macro, structure, spec):
    return FaultySequencer(macro, structure, spec).scan_macro()


class TestSpecValidation:
    def test_dac_leg_needs_index(self):
        with pytest.raises(MeasurementError):
            FaultSpec(StructureFault.DAC_LEG_DEAD, 0)

    def test_cref_drift_needs_positive_factor(self):
        with pytest.raises(MeasurementError):
            FaultSpec(StructureFault.CREF_DRIFT, 0.0)


class TestFaultBehaviours:
    def test_lec_stuck_open_zeros_everything(self, spread_macro, structure_8x2):
        codes = _faulty_codes(
            spread_macro, structure_8x2, FaultSpec(StructureFault.LEC_STUCK_OPEN)
        )
        assert (codes == 0).all()

    def test_prg_stuck_open_zeros_everything(self, spread_macro, structure_8x2):
        codes = _faulty_codes(
            spread_macro, structure_8x2, FaultSpec(StructureFault.PRG_STUCK_OPEN)
        )
        assert (codes == 0).all()

    def test_lec_stuck_closed_saturates(self, spread_macro, structure_8x2):
        codes = _faulty_codes(
            spread_macro, structure_8x2, FaultSpec(StructureFault.LEC_STUCK_CLOSED)
        )
        assert (codes == structure_8x2.design.num_steps).all()

    def test_register_stuck_returns_constant(self, spread_macro, structure_8x2):
        codes = _faulty_codes(
            spread_macro, structure_8x2, FaultSpec(StructureFault.REGISTER_STUCK, 13)
        )
        assert (codes == 13).all()

    def test_dac_leg_dead_builds_a_wall(self, spread_macro, structure_8x2):
        healthy = MeasurementSequencer(spread_macro, structure_8x2)
        healthy_codes = np.array(
            [[healthy.measure_charge(r, c).code for c in range(2)] for r in range(8)]
        )
        dead = int(np.median(healthy_codes))
        codes = _faulty_codes(
            spread_macro, structure_8x2, FaultSpec(StructureFault.DAC_LEG_DEAD, dead)
        )
        # Codes below the dead leg survive; the rest saturate.
        assert (codes[healthy_codes < dead] == healthy_codes[healthy_codes < dead]).all()
        assert (codes[healthy_codes >= dead] == structure_8x2.design.num_steps).all()

    def test_cref_drift_is_a_gain_error(self, spread_macro, structure_8x2):
        healthy = MeasurementSequencer(spread_macro, structure_8x2)
        healthy_codes = np.array(
            [[healthy.measure_charge(r, c).code for c in range(2)] for r in range(8)]
        )
        grown = _faulty_codes(
            spread_macro, structure_8x2, FaultSpec(StructureFault.CREF_DRIFT, 1.2)
        )
        shrunk = _faulty_codes(
            spread_macro, structure_8x2, FaultSpec(StructureFault.CREF_DRIFT, 0.8)
        )
        assert grown.mean() < healthy_codes.mean()  # bigger C_REF divides harder
        assert shrunk.mean() > healthy_codes.mean()


class TestSignatureScreen:
    def test_all_zero_flags_lec_or_prg(self):
        sig = fault_signature(np.zeros((8, 2), dtype=int))
        assert sig is StructureFault.LEC_STUCK_OPEN

    def test_all_saturated_flags_lec_closed(self):
        sig = fault_signature(np.full((8, 2), 20))
        assert sig is StructureFault.LEC_STUCK_CLOSED

    def test_constant_midscale_flags_register(self):
        sig = fault_signature(np.full((8, 2), 13))
        assert sig is StructureFault.REGISTER_STUCK

    def test_wall_flags_dead_leg(self, spread_macro, structure_8x2):
        healthy = MeasurementSequencer(spread_macro, structure_8x2)
        healthy_codes = np.array(
            [[healthy.measure_charge(r, c).code for c in range(2)] for r in range(8)]
        )
        dead = int(np.median(healthy_codes))
        codes = _faulty_codes(
            spread_macro, structure_8x2, FaultSpec(StructureFault.DAC_LEG_DEAD, dead)
        )
        assert fault_signature(codes) is StructureFault.DAC_LEG_DEAD

    def test_healthy_map_passes(self, spread_macro, structure_8x2):
        healthy = MeasurementSequencer(spread_macro, structure_8x2)
        codes = np.array(
            [[healthy.measure_charge(r, c).code for c in range(2)] for r in range(8)]
        )
        assert fault_signature(codes) is None

    def test_cref_drift_is_undetectable_standalone(self, spread_macro, structure_8x2):
        codes = _faulty_codes(
            spread_macro, structure_8x2, FaultSpec(StructureFault.CREF_DRIFT, 1.15)
        )
        assert fault_signature(codes) is None  # needs a golden reference

    def test_empty_map_rejected(self):
        with pytest.raises(MeasurementError):
            fault_signature(np.empty((0, 0), dtype=int))
