"""Whole-array measurement scans — the "Analog Bitmap" producer.

The paper's end goal: "build an Analog Bitmap of the capacitor values of
the cells in the memory array".  :class:`ArrayScanner` measures every
cell of every macro-cell and assembles the code matrix.

For array-scale work the scanner evaluates a **vectorized closed form**
of the charge-tier algebra.  After phases 1–4, every capacitive branch
hanging on the plate–gate island reduces to an equivalent capacitance
``X`` with an equivalent pre-charge voltage of V_DD (they all rode up
with the plate during the CHARGE phase), except the reference side
(C_REF + wiring) which joins discharged; hence

    V_GS = V_DD · ΣX / (ΣX + C_REF_total)

with, per branch:

- target cell: ``C_m`` (its far plate is actively grounded),
- same-row neighbours: ``series(C_j, C_BL + C_js)`` (far side floats on
  the bitline),
- every off-row cell: ``series(C_k, C_js)`` (far side floats on the
  storage junction),
- plate wiring: ``C_pp``,
- defect variants (shorts substitute their island's ground capacitance,
  opens vanish) as derived in the module body.

Macros containing BRIDGE defects fall back to the exact charge engine
cell by cell — bridge topologies are many and rare, and the engine *is*
the reference.  Agreement between the closed form and the engine is
pinned by integration tests.

Performance layer (see docs/architecture.md "Performance architecture"):
macro masks are O(1) slices of the array's incrementally maintained bulk
matrices, the engine tier reuses one cached netlist per macro, and
``scan(jobs=N)`` fans macros out across a process pool.  Every scan
attaches a :class:`~repro.measure.stats.ScanStats` telemetry record to
its result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.edram.array import EDRAMArray, MacroCell
from repro.edram.defects import KIND_CODES, DefectKind
from repro.errors import MeasurementError
from repro.measure.sequencer import MeasurementSequencer
from repro.measure.stats import MacroTiming, ScanStats
from repro.measure.structure import MeasurementDesign, MeasurementStructure


def _series(a: float | np.ndarray, b: float | np.ndarray) -> np.ndarray:
    """Series combination a·b/(a+b), safely 0 when either plate is 0."""
    a = np.asarray(a, dtype=float)
    total = a + b
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(total > 0.0, a * b / np.where(total > 0.0, total, 1.0), 0.0)
    return out


@dataclass
class ScanResult:
    """Raw output of a full-array scan.

    Attributes
    ----------
    codes:
        (rows, cols) int array of measurement codes, 0..num_steps.
    vgs:
        (rows, cols) float array of internal V_GS values (simulation
        observability; not available on silicon).
    num_steps:
        The converter depth used.
    tiers:
        (rows, cols) array of 'c' (closed form) / 'e' (engine) markers
        recording which tier produced each cell.
    stats:
        Telemetry of the scan that produced this result (None for
        results assembled by hand or loaded from disk — stats describe a
        run, not the data, and are not persisted).
    """

    codes: np.ndarray
    vgs: np.ndarray
    num_steps: int
    tiers: np.ndarray
    stats: ScanStats | None = field(default=None, compare=False)

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, cols) of the scanned array."""
        return self.codes.shape  # type: ignore[return-value]

    def code_histogram(self) -> dict[int, int]:
        """Count of cells per code value, dense over ``0..num_steps``.

        Every code of the converter scale appears as a key — zero counts
        included — so downstream consumers (calibration, plotting,
        benches) can histogram directly without re-densifying.
        """
        hist = {code: 0 for code in range(self.num_steps + 1)}
        values, counts = np.unique(self.codes, return_counts=True)
        for v, n in zip(values, counts):
            hist[int(v)] = int(n)
        return hist

    def diff(self, reference: "ScanResult") -> np.ndarray:
        """Per-cell code delta against a reference scan (self − ref).

        Golden-die subtraction: comparing a die against a known-good
        reference cancels the systematic background exactly (both carry
        the same macro parasitics), leaving process/instrument drift and
        defects.  Shapes and converter depths must match.
        """
        if reference.shape != self.shape:
            raise MeasurementError(
                f"scan shapes differ: {self.shape} vs {reference.shape}"
            )
        if reference.num_steps != self.num_steps:
            raise MeasurementError("scans use different converter depths")
        return self.codes - reference.codes


class ArrayScanner:
    """Scan every cell of an array through its macro structures.

    Parameters
    ----------
    array:
        The eDRAM array to scan.
    structure:
        The measurement structure design shared by all macros (they are
        identical copies in silicon).  Defaults to the reference design;
        for non-reference macro geometries pass a structure produced by
        :func:`repro.calibration.design.design_structure` so the code
        scale matches the capacitance range.
    """

    def __init__(self, array: EDRAMArray, structure: MeasurementStructure | None = None) -> None:
        self.array = array
        self.structure = (
            structure
            if structure is not None
            else MeasurementStructure(array.tech, MeasurementDesign())
        )
        # Memoized on the structure: one bisection solve shared by every
        # scanner bound to it (e.g. one scanner per wafer die).
        self._boundaries = self.structure.code_boundaries()
        # Engine-tier sequencers cached per macro so the charge netlist
        # is built once per macro, not once per cell.
        self._sequencers: dict[int, MeasurementSequencer] = {}
        # Closed-form invariants; identical for every macro (the silicon
        # copies are exact), so paying the property chain per macro per
        # scan is pure overhead.
        tech = self.structure.tech
        m0 = self.array.macro(0)
        self._cjs = tech.storage_junction_cap
        self._cbl = m0.bitline_capacitance
        self._cpp = m0.plate_parasitic
        self._creft = self.structure.c_ref_total
        self._vdd = tech.vdd

    def codes_for_vgs(self, vgs: np.ndarray) -> np.ndarray:
        """Vectorized static conversion (matches ``code_for_vgs``)."""
        return self.structure.codes_for_vgs(vgs)

    def _sequencer(self, macro: MacroCell) -> MeasurementSequencer:
        sequencer = self._sequencers.get(macro.index)
        if sequencer is None:
            sequencer = MeasurementSequencer(macro, self.structure)
            self._sequencers[macro.index] = sequencer
        return sequencer

    # ------------------------------------------------------------------
    # Closed form per macro
    # ------------------------------------------------------------------

    def _macro_masks(self, macro: MacroCell) -> dict[str, np.ndarray]:
        kinds = macro.defect_kind_matrix()
        return {
            "cap": macro.capacitance_matrix(),
            "short": kinds == KIND_CODES[DefectKind.SHORT],
            "open": kinds == KIND_CODES[DefectKind.OPEN],
            "accopen": kinds == KIND_CODES[DefectKind.ACCESS_OPEN],
        }

    def closed_form_vgs(self, macro: MacroCell) -> np.ndarray:
        """V_GS for every cell of ``macro`` via the vectorized closed form."""
        cjs, cbl, cpp = self._cjs, self._cbl, self._cpp
        creft, vdd = self._creft, self._vdd

        if self.array.defect_count() == 0 or not macro.defect_kind_matrix().any():
            # Defect-free macro: every mask below is empty, so the
            # branch equivalents collapse to the healthy-cell terms.
            # Same algebra, same operation order — bit-identical to the
            # masked path (pinned by the scan tests) without its ~15
            # small-array ``np.where`` calls.
            cap = macro.capacitance_matrix()
            off_term = cap * cjs / (cap + cjs)
            nbr_term = cap * (cbl + cjs) / (cap + (cbl + cjs))
            off_all = float(off_term.sum())
            off_rows = off_term.sum(axis=1)
            nbr_rows = nbr_term.sum(axis=1)
            x = (
                cap
                + cpp
                + (nbr_rows[:, None] - nbr_term)
                + (off_all - off_rows)[:, None]
            )
            return vdd * x / (x + creft)

        m = self._macro_masks(macro)
        cap, short, open_, accopen = m["cap"], m["short"], m["open"], m["accopen"]
        normal = ~(short | open_ | accopen)

        # Branch equivalents per cell in each role (all pre-charged V_DD).
        floating_series = _series(cap, cjs)  # far side floats on C_js
        off_term = np.where(normal | accopen, floating_series, 0.0)
        off_term = np.where(short, cjs, off_term)

        nbr_term = np.where(normal, _series(cap, cbl + cjs), 0.0)
        nbr_term = np.where(accopen, floating_series, nbr_term)
        nbr_term = np.where(short, cbl + cjs, nbr_term)

        tgt_term = np.where(normal, cap, 0.0)
        tgt_term = np.where(accopen, floating_series, tgt_term)

        off_all = float(off_term.sum())
        off_rows = off_term.sum(axis=1)  # per-row totals
        nbr_rows = nbr_term.sum(axis=1)

        x = (
            tgt_term
            + cpp
            + (nbr_rows[:, None] - nbr_term)
            + (off_all - off_rows)[:, None]
        )
        vgs = vdd * x / (x + creft)
        # A shorted target clamps the plate to its grounded bitline.
        vgs = np.where(short, 0.0, vgs)
        return vgs

    # ------------------------------------------------------------------
    # Scan drivers
    # ------------------------------------------------------------------

    def _macro_needs_engine(self, macro: MacroCell) -> bool:
        """Bridges (own or incoming) force the exact engine.

        Defect-free arrays exit on the O(1) bridge count; otherwise one
        vectorized mask slice covers the macro's own cells plus the
        column immediately left of it (incoming cross-macro bridges).
        """
        if self.array.defect_count(DefectKind.BRIDGE) == 0:
            return False
        bridge = self.array.defect_mask(DefectKind.BRIDGE)
        col_lo = macro.col_start - 1 if macro.col_start > 0 else macro.col_start
        return bool(
            bridge[macro.row_start : macro.row_stop, col_lo : macro.col_stop].any()
        )

    def scan_macro(self, macro: MacroCell, force_engine: bool = False) -> tuple[np.ndarray, np.ndarray, str]:
        """Scan one macro; returns (vgs, codes, tier_marker)."""
        if force_engine or self._macro_needs_engine(macro):
            sequencer = self._sequencer(macro)
            mc = self.array.macro_cols
            vgs = np.zeros((macro.rows, mc))
            for r in range(macro.rows):
                for c in range(mc):
                    vgs[r, c] = sequencer.measure_charge(r, c).vgs
            return vgs, self.codes_for_vgs(vgs), "e"
        vgs = self.closed_form_vgs(macro)
        return vgs, self.codes_for_vgs(vgs), "c"

    def scan(
        self,
        force_engine: bool = False,
        jobs: int | None = None,
        preflight: bool = False,
    ) -> ScanResult:
        """Scan the whole array; returns the assembled :class:`ScanResult`.

        Parameters
        ----------
        force_engine:
            Route every macro through the exact charge engine (reference
            mode; slow).
        jobs:
            Worker processes to fan macros out across.  ``None`` or 1
            scans serially in-process; ``N > 1`` uses a process pool
            (macros are electrically independent, so parallel results
            are bit-exact against serial — pinned in tests).  Values
            above the macro count are capped.
        preflight:
            Run the static ERC pass (:mod:`repro.lint`) over every
            macro's charge network and flow before scanning.  Findings
            on known-defective cells are waived; anything else raises
            :class:`~repro.errors.RuleViolation` with the rule codes, so
            a structurally bad array is diagnosed up front instead of
            blowing up a solver mid-scan.

        The returned result carries a :class:`ScanStats` telemetry
        record in ``result.stats``.
        """
        if jobs is not None and jobs < 1:
            raise MeasurementError(f"jobs must be >= 1, got {jobs}")
        if preflight:
            from repro.lint import preflight_array, raise_on_errors

            raise_on_errors(preflight_array(self.array, self.structure))
        start = perf_counter()
        rows, cols = self.array.rows, self.array.cols
        codes = np.zeros((rows, cols), dtype=int)
        vgs = np.zeros((rows, cols))
        tiers = np.full((rows, cols), "c", dtype="<U1")
        timings: list[MacroTiming] = []

        effective_jobs = 1 if jobs is None else min(jobs, self.array.num_macros)
        if effective_jobs > 1:
            from repro.measure.parallel import scan_macros_parallel

            results = scan_macros_parallel(
                self.array, self.structure, force_engine, effective_jobs
            )
            for index, m_vgs, m_codes, tier, seconds in results:
                macro = self.array.macro(index)
                self._place(macro, m_vgs, m_codes, tier, vgs, codes, tiers)
                timings.append(MacroTiming(index, tier, macro.num_cells, seconds))
        else:
            for macro in self.array.macros():
                macro_start = perf_counter()
                m_vgs, m_codes, tier = self.scan_macro(macro, force_engine)
                seconds = perf_counter() - macro_start
                self._place(macro, m_vgs, m_codes, tier, vgs, codes, tiers)
                timings.append(MacroTiming(macro.index, tier, macro.num_cells, seconds))

        engine_cells = int((tiers == "e").sum())
        stats = ScanStats(
            total_cells=rows * cols,
            wall_seconds=perf_counter() - start,
            jobs=effective_jobs,
            closed_form_cells=rows * cols - engine_cells,
            engine_cells=engine_cells,
            macro_timings=timings,
        )
        return ScanResult(
            codes=codes,
            vgs=vgs,
            num_steps=self.structure.design.num_steps,
            tiers=tiers,
            stats=stats,
        )

    @staticmethod
    def _place(
        macro: MacroCell,
        m_vgs: np.ndarray,
        m_codes: np.ndarray,
        tier: str,
        vgs: np.ndarray,
        codes: np.ndarray,
        tiers: np.ndarray,
    ) -> None:
        rsl = slice(macro.row_start, macro.row_stop)
        csl = slice(macro.col_start, macro.col_stop)
        vgs[rsl, csl] = m_vgs
        codes[rsl, csl] = m_codes
        tiers[rsl, csl] = tier

    def measure_cell(self, row: int, col: int, tier: str = "charge") -> "object":
        """Measure one cell by global address through a named tier.

        ``tier`` is ``"charge"`` or ``"transient"``; returns the
        :class:`~repro.measure.result.MeasurementResult`.
        """
        if tier not in ("charge", "transient"):
            raise MeasurementError(f"unknown tier {tier!r}")
        macro = self.array.macro(self.array.macro_of(row, col))
        lrow = row - macro.row_start
        lcol = col - macro.col_start
        sequencer = self._sequencer(macro)
        if tier == "charge":
            return sequencer.measure_charge(lrow, lcol)
        return sequencer.measure_transient(lrow, lcol)
