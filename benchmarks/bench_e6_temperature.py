"""E6 — temperature robustness of the measurement (extension).

Silicon test happens at controlled-but-nonzero temperature spreads, and
eDRAM behaviour is famously temperature-sensitive.  This bench sweeps
the industrial range (−40 °C .. 125 °C) and reports:

- the code a 30 fF cell produces under a fixed 27 °C calibration (the
  conversion is first-order temperature-compensated: the REF V_TH drop
  and mobility loss pull its sink current in opposite directions),
- worst-cell retention time (junction leakage doubles every 10 K —
  five orders of magnitude across the range), motivating *hot* retention
  screens but *any-temperature* capacitance screens.
"""

from conftest import report

from repro.edram.array import EDRAMArray
from repro.edram.leakage import RetentionModel
from repro.measure.scan import ArrayScanner
from repro.measure.structure import MeasurementStructure
from repro.units import to_fF


def _measure_at(tech, design, celsius):
    card = tech.at_temperature(273.15 + celsius)
    array = EDRAMArray(2, 2, tech=card)
    structure = MeasurementStructure(card, design)
    scan = ArrayScanner(array, structure).scan()
    retention, _ = RetentionModel(v_write=card.vdd, v_min=card.half_vdd).worst_retention(array)
    return int(scan.codes[0, 0]), float(scan.vgs[0, 0]), retention, card


def bench_e6_temperature_sweep(benchmark, tech, structure_2x2):
    design = structure_2x2.design
    points = [-40, 0, 27, 85, 125]
    rows = [_measure_at(tech, design, c) for c in points]
    benchmark.pedantic(_measure_at, args=(tech, design, 85), rounds=3, iterations=1)

    lines = [
        "30 fF cell, structure designed and calibrated at 27 C:",
        "",
        f"{'T (C)':>6}  {'code':>5}  {'V_GS (V)':>9}  {'junction leak':>14}  "
        f"{'worst retention':>16}",
    ]
    for celsius, (code, vgs, retention, card) in zip(points, rows):
        lines.append(
            f"{celsius:>6}  {code:>5}  {vgs:>9.3f}  "
            f"{card.junction_leak_per_cell:>12.2e} A  {retention:>14.2e} s"
        )
    lines.append("")
    lines.append("the capacitance CODE drifts by at most ~1 step across the full")
    lines.append("range (V_TH and mobility temperature effects oppose), while the")
    lines.append("retention budget collapses ~300x from 27 C to 125 C: capacitance")
    lines.append("screening works at any insertion, retention screens must be hot.")
    report("E6: temperature robustness", "\n".join(lines))

    codes = [code for code, *_ in rows]
    assert max(codes) - min(codes) <= 2
    retention_27 = rows[2][2]
    retention_125 = rows[4][2]
    assert retention_125 < retention_27 / 100
