"""Design constants and static behaviour of the measurement structure.

:class:`MeasurementDesign` collects every sizing decision of the paper's
structure: the REF transistor geometry (whose gate capacitance *is*
C_REF), the current-DAC step, converter depth, phase timing, switch and
inverter sizes, and local parasitics.  :class:`MeasurementStructure`
binds a design to a technology card and answers the static questions the
charge/closed-form tiers need — most importantly the code produced by a
given charge-sharing voltage V_GS.

Defaults correspond to a structure sized for the paper's Figure-1
configuration (a 2×2 macro-cell) on the nominal technology card, giving
the 10–55 fF / 20-step / ~6 % behaviour the paper reports.  For other
macro geometries use :func:`repro.calibration.design.design_structure`,
which re-sizes C_REF and ΔI so the same capacitance range maps onto the
full code scale (the paper's "abacus obtained from a set of simulation"
workflow).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.circuit.mosfet import Mosfet
from repro.errors import MeasurementError
from repro.measure.current_dac import ProgrammableCurrentReference
from repro.measure.sense import InverterDesign, SenseChain
from repro.tech.parameters import TechnologyCard
from repro.units import fF, nA, ns, uA, um


@dataclass(frozen=True)
class MeasurementDesign:
    """Sizing of one embedded measurement structure.

    Parameters
    ----------
    w_ref, l_ref:
        REF transistor geometry, metres.  C_REF = C_ox·W·L.
    delta_i:
        Current-DAC step, amperes.
    num_steps:
        Converter depth (20 in the paper).
    phase_duration:
        Duration of each of the five flow phases, seconds (10 ns).
    gate_parasitic:
        Stray capacitance on the C_REF / gate node (wiring + LEC
        junction), farads.
    drain_parasitic:
        Stray capacitance on the REF drain node, farads.
    w_switch, l_switch:
        Geometry of the PRG / LEC / STD / S_BLi pass transistors.
    inverter:
        Sense-chain inverter geometry.
    mirror_knee:
        Compliance knee of the current-mirror output, volts.
    """

    w_ref: float = 4.3 * um
    l_ref: float = 1.08 * um
    delta_i: float = 4.0 * uA
    num_steps: int = 20
    phase_duration: float = 10.0 * ns
    gate_parasitic: float = 1.0 * fF
    drain_parasitic: float = 2.0 * fF
    w_switch: float = 0.36 * um
    l_switch: float = 0.18 * um
    inverter: InverterDesign = field(default_factory=InverterDesign)
    mirror_knee: float = 0.05

    def __post_init__(self) -> None:
        if min(self.w_ref, self.l_ref, self.w_switch, self.l_switch) <= 0:
            raise MeasurementError("device geometries must be positive")
        if self.delta_i <= 0:
            raise MeasurementError(f"delta_i must be positive, got {self.delta_i}")
        if self.num_steps < 2:
            raise MeasurementError(f"num_steps must be >= 2, got {self.num_steps}")
        if self.phase_duration <= 0:
            raise MeasurementError("phase_duration must be positive")
        if self.gate_parasitic < 0 or self.drain_parasitic < 0:
            raise MeasurementError("parasitics must be >= 0")

    @property
    def step_duration(self) -> float:
        """Time per current step so the ramp fits one phase, seconds."""
        return self.phase_duration / self.num_steps

    @property
    def flow_duration(self) -> float:
        """Total five-phase flow duration, seconds (50 ns in the paper)."""
        return 5.0 * self.phase_duration

    def c_ref(self, tech: TechnologyCard) -> float:
        """The reference capacitance C_REF (REF gate capacitance), farads."""
        return tech.nmos.gate_capacitance(self.w_ref, self.l_ref)

    def with_delta_i(self, delta_i: float) -> "MeasurementDesign":
        """Copy of this design with a different DAC step."""
        return replace(self, delta_i=delta_i)


class MeasurementStructure:
    """A designed structure bound to a technology card.

    Provides the structure's derived quantities (C_REF, DAC, sense
    threshold) and the **static analog-to-digital conversion**: the code
    a given V_GS produces, which the charge and closed-form tiers use in
    place of simulating the phase-5 ramp.
    """

    def __init__(self, tech: TechnologyCard, design: MeasurementDesign | None = None) -> None:
        self.tech = tech
        self.design = design if design is not None else MeasurementDesign()
        self.dac = ProgrammableCurrentReference(self.design.delta_i, self.design.num_steps)
        self.sense = SenseChain(tech, self.design.inverter)
        self._ref = Mosfet(
            "REF", "drain", "gate", "0", tech.nmos,
            w=self.design.w_ref, l=self.design.l_ref,
        )
        self._boundaries: "np.ndarray | None" = None

    @property
    def c_ref(self) -> float:
        """C_REF in farads."""
        return self.design.c_ref(self.tech)

    @property
    def c_ref_total(self) -> float:
        """C_REF plus the gate-node wiring parasitic, farads."""
        return self.c_ref + self.design.gate_parasitic

    def ref_sink_current(self, vgs: float, vds: float | None = None) -> float:
        """Current the REF transistor sinks at (vgs, vds), amperes.

        ``vds`` defaults to the sense threshold — the bias at which the
        OUT flip condition is evaluated.
        """
        if vds is None:
            vds = self.sense.threshold
        return self._ref.ids(vds, vgs, 0.0)

    def code_for_vgs(self, vgs: float) -> int:
        """Static conversion: the code phase 5 produces for a given V_GS.

        OUT flips during the first step whose injected current exceeds
        what REF can sink with its drain at the sense threshold; the code
        is the number of completed steps before that, i.e.
        ``floor(I_sink / ΔI)`` clamped to the scale.
        """
        i_sink = self.ref_sink_current(vgs)
        if i_sink <= 0.0:
            return 0
        code = int(i_sink / self.design.delta_i * (1.0 + 1e-12))
        return min(code, self.design.num_steps)

    def vgs_for_code_boundary(self, code: int) -> float:
        """The V_GS at which the output code transitions ``code-1 → code``.

        Solved by bisection on the monotone REF sink current; used by the
        accuracy analysis to express quantization bin edges in volts.
        """
        if not 1 <= code <= self.design.num_steps:
            raise MeasurementError(f"code {code} outside 1..{self.design.num_steps}")
        target = code * self.design.delta_i
        lo, hi = 0.0, 3.0 * self.tech.vdd
        if self.ref_sink_current(hi) < target:
            raise MeasurementError(
                f"REF transistor cannot sink {target} A at any V_GS; "
                "delta_i is oversized for this design"
            )
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if self.ref_sink_current(mid) < target:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def code_boundaries(self) -> np.ndarray:
        """V_GS levels at which the code increments (length ``num_steps``).

        Memoized: each boundary costs an 80-iteration bisection, and the
        table is a pure function of the design and technology, so every
        scanner sharing this structure (e.g. one per wafer die) reuses
        one solve.
        """
        if self._boundaries is None:
            self._boundaries = np.array(
                [self.vgs_for_code_boundary(k) for k in range(1, self.design.num_steps + 1)]
            )
        return self._boundaries

    def codes_for_vgs(self, vgs: "np.ndarray | float") -> np.ndarray:
        """Vectorized static conversion (matches :meth:`code_for_vgs`).

        A single ``np.searchsorted`` against the memoized boundary table.
        """
        return np.searchsorted(self.code_boundaries(), np.asarray(vgs), side="right")

    @property
    def min_detectable_step(self) -> float:
        """Smallest DAC step that can flip OUT within one step time, amperes.

        The flip requires the net injected current to slew the REF drain
        past the sense threshold inside ``step_duration``:
        ``ΔI_min = C_drain · V_threshold / t_step``.  Designs below this
        bias the transient-tier code late relative to the static tiers.
        """
        return (
            self.design.drain_parasitic
            * self.sense.threshold
            / self.design.step_duration
        )

    @property
    def is_slew_safe(self) -> bool:
        """True when the DAC step can flip OUT within one step time."""
        return self.design.delta_i >= self.min_detectable_step

    def subthreshold_leak_ok(self) -> bool:
        """Design sanity: the off-state REF leakage stays below ΔI/100."""
        return self.ref_sink_current(0.0) < max(self.design.delta_i / 100.0, 1.0 * nA)
