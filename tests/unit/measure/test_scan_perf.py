"""Performance layer of the scan path: parallel fan-out, caches, stats.

The contract under test: every optimisation is *invisible* in the data.
Parallel scans are bit-exact against serial scans, cached netlists give
bit-identical voltages to freshly built ones, and the vectorized bridge
check routes exactly the macros the old per-cell walk routed.
"""

import numpy as np
import pytest

from repro.edram.array import EDRAMArray
from repro.edram.defects import CellDefect, DefectInjector, DefectKind
from repro.errors import MeasurementError
from repro.measure.scan import ArrayScanner
from repro.measure.sequencer import MeasurementSequencer
from repro.units import fF


@pytest.fixture()
def zoo_array(tech):
    """16x8 array (4x2 macros) carrying every defect kind.

    Includes an in-macro bridge and a cross-macro bridge so both
    engine-fallback paths are exercised.
    """
    arr = EDRAMArray(16, 8, tech=tech, macro_cols=2, macro_rows=4)
    injector = DefectInjector(arr)
    injector.inject(0, 0, CellDefect(DefectKind.SHORT))
    injector.inject(2, 3, CellDefect(DefectKind.OPEN))
    injector.inject(5, 5, CellDefect(DefectKind.ACCESS_OPEN))
    injector.inject(7, 1, CellDefect(DefectKind.LOW_CAP, 0.6))
    injector.inject(9, 6, CellDefect(DefectKind.HIGH_CAP, 1.3))
    injector.inject(11, 2, CellDefect(DefectKind.RETENTION, 5.0))
    injector.inject(13, 4, CellDefect(DefectKind.BRIDGE))  # inside a macro
    injector.inject(3, 1, CellDefect(DefectKind.BRIDGE))   # crosses into next macro
    return arr


@pytest.fixture()
def zoo_structure(tech):
    from repro.calibration.design import design_structure

    return design_structure(tech, 4, 2, bitline_rows=16)


class TestParallelBitExactness:
    def test_parallel_equals_serial_on_defect_zoo(self, zoo_array, zoo_structure):
        scanner = ArrayScanner(zoo_array, zoo_structure)
        serial = scanner.scan()
        parallel = scanner.scan(jobs=3)
        assert np.array_equal(serial.codes, parallel.codes)
        assert np.array_equal(serial.vgs, parallel.vgs)  # bit-exact, no tolerance
        assert np.array_equal(serial.tiers, parallel.tiers)
        # Both engine (bridge fallback) and closed-form tiers must appear.
        assert {"c", "e"} == set(serial.tiers.ravel())

    def test_parallel_equals_serial_with_force_engine(self, zoo_array, zoo_structure):
        scanner = ArrayScanner(zoo_array, zoo_structure)
        serial = scanner.scan(force_engine=True)
        parallel = scanner.scan(force_engine=True, jobs=2)
        assert np.array_equal(serial.codes, parallel.codes)
        assert np.array_equal(serial.vgs, parallel.vgs)
        assert set(serial.tiers.ravel()) == {"e"}

    def test_jobs_above_macro_count_is_capped(self, tech, structure_2x2):
        arr = EDRAMArray(2, 2, tech=tech)  # a single macro
        scanner = ArrayScanner(arr, structure_2x2)
        result = scanner.scan(jobs=64)
        assert result.stats is not None
        assert result.stats.jobs == 1  # capped to num_macros

    def test_invalid_jobs_rejected(self, tech, structure_2x2):
        scanner = ArrayScanner(EDRAMArray(2, 2, tech=tech), structure_2x2)
        with pytest.raises(MeasurementError):
            scanner.scan(jobs=0)
        with pytest.raises(MeasurementError):
            scanner.scan(jobs=-2)


class TestScanStats:
    def test_stats_shape_and_tier_counts(self, zoo_array, zoo_structure):
        result = ArrayScanner(zoo_array, zoo_structure).scan()
        stats = result.stats
        assert stats is not None
        assert stats.total_cells == zoo_array.num_cells
        assert stats.closed_form_cells + stats.engine_cells == stats.total_cells
        assert stats.engine_cells == int((result.tiers == "e").sum())
        assert stats.jobs == 1
        assert stats.wall_seconds > 0
        assert stats.cells_per_second > 0
        assert len(stats.macro_timings) == zoo_array.num_macros
        assert [t.index for t in stats.macro_timings] == list(range(zoo_array.num_macros))
        assert sum(t.cells for t in stats.macro_timings) == stats.total_cells

    def test_macro_timings_carry_tier_markers(self, zoo_array, zoo_structure):
        result = ArrayScanner(zoo_array, zoo_structure).scan()
        by_index = {t.index: t.tier for t in result.stats.macro_timings}
        for macro in zoo_array.macros():
            expected = result.tiers[macro.row_start, macro.col_start]
            assert by_index[macro.index] == expected

    def test_parallel_stats_record_jobs(self, zoo_array, zoo_structure):
        result = ArrayScanner(zoo_array, zoo_structure).scan(jobs=3)
        assert result.stats.jobs == 3
        assert len(result.stats.macro_timings) == zoo_array.num_macros

    def test_summary_and_dict_roundtrip(self, zoo_array, zoo_structure):
        stats = ArrayScanner(zoo_array, zoo_structure).scan().stats
        text = stats.summary()
        assert "cells/s" in text and "closed-form" in text
        payload = stats.to_dict()
        assert payload["total_cells"] == stats.total_cells
        assert payload["cells_per_second"] == stats.cells_per_second
        assert len(payload["macro_timings"]) == len(stats.macro_timings)
        slowest = stats.slowest_macro()
        assert slowest.seconds == max(t.seconds for t in stats.macro_timings)


class TestSequencerNetworkCache:
    def test_repeated_measurements_bit_equal_fresh_builds(self, tech, zoo_structure):
        # ACCESS_OPEN is the trap: its floating storage node keeps charge
        # across flows unless the cached network is properly reset.
        arr = EDRAMArray(4, 2, tech=tech, macro_cols=2, macro_rows=4)
        arr.cell(1, 1).apply_defect(CellDefect(DefectKind.ACCESS_OPEN))
        arr.cell(2, 0).apply_defect(CellDefect(DefectKind.SHORT))
        cached = MeasurementSequencer(arr.macro(0), zoo_structure)
        first = [cached.measure_charge(r, c).vgs for r in range(4) for c in range(2)]
        second = [cached.measure_charge(r, c).vgs for r in range(4) for c in range(2)]
        fresh = [
            MeasurementSequencer(arr.macro(0), zoo_structure).measure_charge(r, c).vgs
            for r in range(4)
            for c in range(2)
        ]
        assert first == second == fresh

    def test_cache_invalidated_on_capacitance_edit(self, tech, structure_2x2):
        arr = EDRAMArray(2, 2, tech=tech)
        seq = MeasurementSequencer(arr.macro(0), structure_2x2)
        before = seq.measure_charge(0, 0).vgs
        arr.cell(0, 0).capacitance = 50 * fF
        after = seq.measure_charge(0, 0).vgs
        assert after > before
        expected = MeasurementSequencer(arr.macro(0), structure_2x2).measure_charge(0, 0).vgs
        assert after == expected

    def test_cache_invalidated_on_defect_injection(self, tech, structure_2x2):
        arr = EDRAMArray(2, 2, tech=tech)
        seq = MeasurementSequencer(arr.macro(0), structure_2x2)
        assert seq.measure_charge(0, 0).code > 0
        arr.cell(0, 0).apply_defect(CellDefect(DefectKind.SHORT))
        assert seq.measure_charge(0, 0).code == 0

    def test_standard_mode_unaffected_by_prior_flows(self, tech, structure_2x2):
        arr = EDRAMArray(2, 2, tech=tech)
        seq = MeasurementSequencer(arr.macro(0), structure_2x2)
        seq.measure_charge(1, 0)
        assert seq.standard_mode_plate_voltage() == pytest.approx(tech.half_vdd)


class TestVectorizedBridgeRouting:
    def test_defect_free_array_skips_engine_entirely(self, tech, structure_8x2):
        arr = EDRAMArray(8, 4, tech=tech, macro_cols=2)
        scanner = ArrayScanner(arr, structure_8x2)
        for macro in arr.macros():
            assert not scanner._macro_needs_engine(macro)

    def test_routing_matches_cell_walk(self, zoo_array, zoo_structure):
        scanner = ArrayScanner(zoo_array, zoo_structure)
        for macro in zoo_array.macros():
            walked = any(
                zoo_array.cell(r, c).has_defect(DefectKind.BRIDGE)
                for r in macro.row_range
                for c in macro.columns
            ) or (
                macro.col_start > 0
                and any(
                    zoo_array.cell(r, macro.col_start - 1).has_defect(DefectKind.BRIDGE)
                    for r in macro.row_range
                )
            )
            assert scanner._macro_needs_engine(macro) == walked


class TestDenseHistogram:
    def test_histogram_covers_full_scale(self, tech, structure_2x2):
        arr = EDRAMArray(2, 2, tech=tech)
        result = ArrayScanner(arr, structure_2x2).scan()
        hist = result.code_histogram()
        assert sorted(hist) == list(range(result.num_steps + 1))
        assert sum(hist.values()) == arr.num_cells
        assert all(n >= 0 for n in hist.values())
