"""Retention and leakage modelling.

DRAM cells lose their stored level through junction leakage; the
retention time distribution across an array is one of the key process
health indicators.  :class:`RetentionModel` evaluates per-cell retention
and array-level statistics on top of the cell model's linear-droop
behaviour (constant junction current, see
:meth:`repro.edram.cell.DRAMCell.stored_voltage`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.edram.array import EDRAMArray
from repro.errors import ArrayConfigError


@dataclass(frozen=True)
class RetentionModel:
    """Evaluate retention against a minimum readable level.

    Parameters
    ----------
    v_write:
        Written '1' level, volts.
    v_min:
        Lowest storage voltage that still reads back as '1' (set by
        bitline ratio and sense-amp offset), volts.
    """

    v_write: float
    v_min: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.v_min < self.v_write:
            raise ArrayConfigError(
                f"need 0 <= v_min < v_write, got v_min={self.v_min}, v_write={self.v_write}"
            )

    def cell_retention(self, array: EDRAMArray, row: int, col: int) -> float:
        """Retention time of one cell in seconds (inf for zero leakage)."""
        return array.cell(row, col).retention_time(self.v_write, self.v_min)

    def retention_matrix(self, array: EDRAMArray) -> np.ndarray:
        """Per-cell retention times, shape (rows, cols), seconds."""
        return np.array(
            [
                [self.cell_retention(array, r, c) for c in range(array.cols)]
                for r in range(array.rows)
            ]
        )

    def worst_retention(self, array: EDRAMArray) -> tuple[float, tuple[int, int]]:
        """The worst cell's retention time and its address."""
        matrix = self.retention_matrix(array)
        idx = np.unravel_index(int(np.argmin(matrix)), matrix.shape)
        return float(matrix[idx]), (int(idx[0]), int(idx[1]))

    def refresh_interval_ok(self, array: EDRAMArray, interval: float) -> bool:
        """True if every cell survives a refresh interval of ``interval`` s."""
        worst, _ = self.worst_retention(array)
        return worst >= interval

    def failing_cells(self, array: EDRAMArray, interval: float) -> list[tuple[int, int]]:
        """Addresses of cells whose retention falls short of ``interval``."""
        matrix = self.retention_matrix(array)
        rows, cols = np.nonzero(matrix < interval)
        return [(int(r), int(c)) for r, c in zip(rows, cols)]
