"""Property-based tests of abacus and conversion invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration.abacus import Abacus
from repro.calibration.design import design_structure
from repro.tech.parameters import default_technology
from repro.units import fF

_TECH = default_technology()
_STRUCTURE = design_structure(_TECH, 2, 2)
_ABACUS = Abacus.analytic(_STRUCTURE, 2, 2)


@given(cap=st.floats(min_value=0.0, max_value=200.0))
@settings(max_examples=200, deadline=None)
def test_code_is_monotone_step_function(cap):
    c = cap * fF
    code = _ABACUS.code_for_capacitance(c)
    assert 0 <= code <= 20
    # A strictly smaller capacitance never yields a larger code.
    if cap > 1.0:
        smaller = _ABACUS.code_for_capacitance((cap - 1.0) * fF)
        assert smaller <= code


@given(cap=st.floats(min_value=0.0, max_value=200.0))
@settings(max_examples=200, deadline=None)
def test_truth_lies_inside_reported_bin(cap):
    c = cap * fF
    code = _ABACUS.code_for_capacitance(c)
    row = _ABACUS.row(code)
    assert row.c_min - 1e-20 <= c
    assert c <= row.c_max or np.isinf(row.c_max)


@given(code=st.integers(min_value=1, max_value=19))
@settings(max_examples=50, deadline=None)
def test_estimate_roundtrip(code):
    estimate = _ABACUS.estimate(code)
    assert _ABACUS.code_for_capacitance(estimate) == code


@given(vgs=st.floats(min_value=0.0, max_value=1.8))
@settings(max_examples=200, deadline=None)
def test_vectorized_conversion_matches_scalar(vgs):
    from repro.measure.scan import ArrayScanner
    from repro.edram.array import EDRAMArray

    scanner = ArrayScanner(EDRAMArray(2, 2, tech=_TECH), _STRUCTURE)
    assert int(scanner.codes_for_vgs(np.array([vgs]))[0]) == _STRUCTURE.code_for_vgs(vgs)


@given(
    c_lo=st.floats(min_value=8.0, max_value=20.0),
    span=st.floats(min_value=20.0, max_value=50.0),
    depth=st.integers(min_value=4, max_value=32),
)
@settings(max_examples=15, deadline=None)
def test_designed_range_endpoints_always_land(c_lo, span, depth):
    structure = design_structure(
        _TECH, 2, 2, c_lo=c_lo * fF, c_hi=(c_lo + span) * fF, num_steps=depth
    )
    abacus = Abacus.analytic(structure, 2, 2)
    assert abacus.num_steps == depth
    assert abs(abacus.range_floor - c_lo * fF) < 0.05 * c_lo * fF
    assert abs(abacus.range_ceiling - (c_lo + span) * fF) < 0.05 * (c_lo + span) * fF
