"""Supervised process-pool fan-out for whole-array scans.

Macro-cells are electrically independent — plate segmentation is the
paper's core idea — so per-macro scans parallelise embarrassingly.  The
fan-out ships the array and structure to each worker once (at pool
start-up, not per task), rebuilds one :class:`ArrayScanner` per process,
and streams macro indices; results come back as
``(index, vgs, codes, tier, quality, seconds)`` tuples the caller
reassembles in index order.

Supervision (:class:`~repro.resilience.supervisor.SupervisedPool`): a
worker that dies or blows its per-macro wall-clock budget is respawned
and the macro retried under the configured
:class:`~repro.resilience.retry.RetryPolicy`; a macro that exhausts its
retries is reported back so the scan engine can run it **in-process**
as the final rung — a hostile pool degrades throughput, never the
planes.  Ctrl-C tears the pool down (terminate + join, ~2 s bound)
before propagating.

Bit-exactness: every worker runs exactly the serial per-macro code on a
faithful copy of the array, so a parallel scan equals the serial scan
bit for bit regardless of retries or respawns (pinned in
``tests/unit/measure/test_scan_perf.py``).

The pool uses the ``fork`` start method (Linux): workers inherit the
array by copy-on-write instead of pickling it.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable

from repro.resilience.faults import FaultPlan, fault_point
from repro.resilience.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.resilience.supervisor import SupervisedPool, TaskFailure

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.edram.array import EDRAMArray
    from repro.measure.structure import MeasurementStructure

    MacroResult = tuple[int, np.ndarray, np.ndarray, str, np.ndarray, float]

#: Per-process scanner state, installed by :func:`_init_worker`.
_WORKER: dict = {}


def _init_worker(array: "EDRAMArray", structure: "MeasurementStructure") -> None:
    # Imported here so worker start-up does not re-trigger the circular
    # scan -> parallel import at module load.
    from repro.measure.scan import ArrayScanner

    _WORKER["scanner"] = ArrayScanner(array, structure)


def _scan_one(payload: tuple[int, bool], attempt: int) -> "MacroResult":
    from repro.measure.config import ScanConfig

    index, force_engine = payload
    fault_point("worker.scan_macro", macro=index, attempt=attempt)
    scanner = _WORKER["scanner"]
    config = ScanConfig(force_engine=force_engine)
    start = perf_counter()
    vgs, codes, tier, quality = scanner._scan_macro(
        scanner.array.macro(index), config
    )
    return index, vgs, codes, tier, quality, perf_counter() - start


def scan_macros_parallel(
    array: "EDRAMArray",
    structure: "MeasurementStructure",
    force_engine: bool,
    jobs: int,
    *,
    indices: "list[int] | None" = None,
    retry: RetryPolicy | None = None,
    timeout: float | None = None,
    fault_plan: FaultPlan | None = None,
    on_result: "Callable[[MacroResult], None] | None" = None,
) -> tuple["list[MacroResult]", list[tuple[int, BaseException]], dict[str, int]]:
    """Scan macros of ``array`` across ``jobs`` supervised workers.

    Parameters
    ----------
    indices:
        Macro indices to scan (default: all) — a resumed scan passes
        only the macros its checkpoint has not completed.
    retry / timeout / fault_plan:
        Supervision knobs, straight from the :class:`ScanConfig`.
    on_result:
        Parent-side hook invoked with each macro result as it lands
        (completion order) — the scan engine places planes and
        checkpoints incrementally through it.

    Returns ``(results, failures, telemetry)``: successful results in
    macro-index order, ``(macro_index, error)`` for macros that
    exhausted their retries (the caller re-runs those in-process), and
    the pool's retry/timeout/respawn counters.
    """
    todo = list(range(array.num_macros)) if indices is None else list(indices)
    workers = max(1, min(jobs, len(todo)))
    pool = SupervisedPool(
        _scan_one,
        initializer=_init_worker,
        initargs=(array, structure),
        jobs=workers,
        retry=retry if retry is not None else DEFAULT_RETRY_POLICY,
        timeout=timeout,
        fault_plan=fault_plan,
    )
    hook = None if on_result is None else (lambda _task, payload: on_result(payload))
    outcomes = pool.run([(index, force_engine) for index in todo], on_result=hook)
    results: "list[MacroResult]" = []
    failures: list[tuple[int, BaseException]] = []
    for macro_index, outcome in zip(todo, outcomes):
        if isinstance(outcome, TaskFailure):
            failures.append((macro_index, outcome.error))
        else:
            results.append(outcome)
    results.sort(key=lambda item: item[0])
    telemetry = {
        "retries": pool.retries,
        "timeouts": pool.timeouts,
        "respawns": pool.respawns,
    }
    return results, failures, telemetry
