"""Terminal renderings of bitmaps.

Benches and examples run headless, so "figures" are compact ASCII maps:
one character per cell, with a legend.  Codes are rendered base-36-style
(0-9 then a-k for 10..20); fail maps use ``#``/``.``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DiagnosisError

_CODE_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyz"


def render_code_map(codes: np.ndarray, max_rows: int = 40, max_cols: int = 100) -> str:
    """Render a code matrix, one glyph per cell.

    Large arrays are decimated evenly to fit ``max_rows × max_cols`` —
    a banner line records the decimation so nobody mistakes the view for
    the full map.
    """
    codes = np.asarray(codes)
    if codes.ndim != 2:
        raise DiagnosisError("codes must be a 2-D array")
    if codes.max(initial=0) >= len(_CODE_GLYPHS):
        raise DiagnosisError("code values exceed the glyph table")
    rows, cols = codes.shape
    row_step = max(1, int(np.ceil(rows / max_rows)))
    col_step = max(1, int(np.ceil(cols / max_cols)))
    view = codes[::row_step, ::col_step]
    lines = []
    if row_step > 1 or col_step > 1:
        lines.append(f"(decimated view: every {row_step} rows x {col_step} cols)")
    for row in view:
        lines.append("".join(_CODE_GLYPHS[int(v)] for v in row))
    return "\n".join(lines)


def render_fail_map(fails: np.ndarray, max_rows: int = 40, max_cols: int = 100) -> str:
    """Render a boolean fail map: ``#`` failing, ``.`` passing."""
    fails = np.asarray(fails)
    if fails.ndim != 2 or fails.dtype != bool:
        raise DiagnosisError("fails must be a 2-D boolean array")
    rows, cols = fails.shape
    row_step = max(1, int(np.ceil(rows / max_rows)))
    col_step = max(1, int(np.ceil(cols / max_cols)))
    view = fails[::row_step, ::col_step]
    lines = []
    if row_step > 1 or col_step > 1:
        lines.append(f"(decimated view: every {row_step} rows x {col_step} cols)")
    for row in view:
        lines.append("".join("#" if v else "." for v in row))
    return "\n".join(lines)
