"""Idealized external capacitance probe (ground-truth reference).

Failure-analysis labs measure sample capacitors by physically probing a
deprocessed die with an LCR meter — destructive, slow (hours per site),
but accurate.  :class:`DirectProbe` models that instrument: the true
capacitance plus configurable Gaussian instrument noise.  Benches use it
both as the scoring reference and to illustrate the paper's value
proposition (full-array coverage at test time vs a handful of destructive
probe sites).
"""

from __future__ import annotations

import numpy as np

from repro.edram.array import EDRAMArray
from repro.errors import MeasurementError
from repro.units import fF


class DirectProbe:
    """Destructive probe-station measurement model.

    Parameters
    ----------
    array:
        Array whose cells can be probed.
    noise_sigma:
        1σ instrument noise, farads (a good LCR bridge resolves ~0.1 fF).
    seconds_per_site:
        Time cost bookkeeping per probed cell (deprocessing + contact),
        used by throughput comparisons.
    seed:
        Noise reproducibility.
    """

    def __init__(
        self,
        array: EDRAMArray,
        noise_sigma: float = 0.1 * fF,
        seconds_per_site: float = 1800.0,
        seed: int = 0,
    ) -> None:
        if noise_sigma < 0:
            raise MeasurementError(f"noise_sigma must be >= 0, got {noise_sigma}")
        if seconds_per_site <= 0:
            raise MeasurementError("seconds_per_site must be positive")
        self.array = array
        self.noise_sigma = noise_sigma
        self.seconds_per_site = seconds_per_site
        self._rng = np.random.default_rng(seed)
        self.sites_probed = 0

    def probe(self, row: int, col: int) -> float:
        """Measure one cell's *electrical* capacitance, farads.

        Opens measure near zero (the probe sees the broken node);
        shorts read as a rail-out (returned as ``inf`` — the bridge
        cannot balance a resistive short).
        """
        cell = self.array.cell(row, col)
        self.sites_probed += 1
        if cell.is_plate_shorted():
            return float("inf")
        true_value = cell.effective_capacitance()
        return max(0.0, true_value + float(self._rng.normal(0.0, self.noise_sigma)))

    def probe_sample(self, addresses: list[tuple[int, int]]) -> dict[tuple[int, int], float]:
        """Probe a list of sites; returns address → measured farads."""
        return {(r, c): self.probe(r, c) for r, c in addresses}

    @property
    def time_spent(self) -> float:
        """Total probing time so far, seconds."""
        return self.sites_probed * self.seconds_per_site
