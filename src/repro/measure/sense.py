"""The two-inverter sense chain driving the digital output OUT.

Per the paper, "the sensing function is composed of two inverters, which
drive the digital output OUT": the first inverter watches the REF
transistor's drain; while the drain sits low the first inverter outputs
high and OUT is low.  When the injected current exceeds what REF can
sink, the drain rises past the inverter threshold, the first inverter
falls, and OUT rises — the flip the shift register freezes on.

Two views:

- :class:`InverterDesign` + :meth:`SenseChain.add_to_circuit` build the
  four-transistor CMOS chain for the MNA transient tier;
- :meth:`SenseChain.output_of` / :attr:`SenseChain.threshold` provide the
  static abstraction (flip at the inverter switching voltage) used by the
  charge and closed-form tiers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuit.mosfet import Mosfet
from repro.circuit.netlist import Circuit
from repro.errors import MeasurementError
from repro.tech.parameters import TechnologyCard
from repro.units import um


@dataclass(frozen=True)
class InverterDesign:
    """Geometry of one CMOS inverter.

    The default p/n width ratio compensates the kp ratio of the synthetic
    technology card (kp_n/kp_p = 4) so the switching threshold sits near
    V_DD/2 — the level the paper's conversion assumes.
    """

    wn: float = 0.42 * um
    wp: float = 1.68 * um
    l: float = 0.18 * um

    def __post_init__(self) -> None:
        if self.wn <= 0 or self.wp <= 0 or self.l <= 0:
            raise MeasurementError("inverter dimensions must be positive")


class SenseChain:
    """Two cascaded inverters between the REF drain and OUT."""

    def __init__(self, tech: TechnologyCard, design: InverterDesign | None = None) -> None:
        self.tech = tech
        self.design = design if design is not None else InverterDesign()

    @property
    def threshold(self) -> float:
        """Switching voltage of the first inverter, volts.

        Computed from the level-1 saturation balance
        ``βn(Vm − Vtn)² = βp(VDD − Vm − |Vtp|)²``; with matched effective
        strengths this lands at V_DD/2, which is the threshold the paper
        quotes ("when V_DS is larger than V_DD/2 ... the inverter
        switches").
        """
        d = self.design
        beta_n = self.tech.nmos.beta_eff(d.wn, d.l)
        beta_p = self.tech.pmos.beta_eff(d.wp, d.l)
        r = math.sqrt(beta_n / beta_p)
        vtn = abs(self.tech.nmos.vth_eff)
        vtp = abs(self.tech.pmos.vth_eff)
        return (self.tech.vdd - vtp + r * vtn) / (1.0 + r)

    def output_of(self, v_drain: float) -> bool:
        """Static OUT level for a REF-drain voltage (True = flipped high)."""
        return v_drain > self.threshold

    def add_to_circuit(
        self,
        circuit: Circuit,
        input_node: str,
        output_node: str,
        vdd_node: str,
        prefix: str = "SENSE",
        mid_node: str | None = None,
    ) -> str:
        """Add the four-transistor chain to ``circuit``.

        Returns the name of the internal node between the two inverters.
        ``vdd_node`` must already be held at V_DD by a source.
        """
        d = self.design
        mid = mid_node if mid_node is not None else f"{prefix}_mid"
        vdd = self.tech.vdd
        circuit.add(
            Mosfet(f"{prefix}_MP1", mid, input_node, vdd_node, self.tech.pmos,
                   w=d.wp, l=d.l, bulk_voltage=vdd)
        )
        circuit.add(
            Mosfet(f"{prefix}_MN1", mid, input_node, "0", self.tech.nmos,
                   w=d.wn, l=d.l, bulk_voltage=0.0)
        )
        circuit.add(
            Mosfet(f"{prefix}_MP2", output_node, mid, vdd_node, self.tech.pmos,
                   w=d.wp, l=d.l, bulk_voltage=vdd)
        )
        circuit.add(
            Mosfet(f"{prefix}_MN2", output_node, mid, "0", self.tech.nmos,
                   w=d.wn, l=d.l, bulk_voltage=0.0)
        )
        return mid
