"""E4 — whole-array Analog Bitmap at scale.

The paper's end product: "build an Analog Bitmap of the capacitor values
of the cells in the memory array".  This bench scans a realistic
64k-cell array (256x256, plate tiles of 16x2) carrying a composite
process signature — deposition tilt, edge roll-off, a particle cluster
and random mismatch — then extracts the signatures from the bitmap.
The timed kernel is the full-array scan (closed-form tier).
"""

import numpy as np
import pytest
from conftest import report

from repro.bitmap.analog import AnalogBitmap
from repro.bitmap.export import render_code_map
from repro.bitmap.signatures import fit_gradient
from repro.calibration.abacus import Abacus
from repro.calibration.design import design_structure
from repro.calibration.window import SpecificationWindow
from repro.edram.array import EDRAMArray
from repro.edram.defects import DefectInjector, DefectKind
from repro.edram.variation_map import (
    cluster_defect_map,
    compose_maps,
    edge_rolloff_map,
    linear_tilt_map,
    mismatch_map,
    uniform_map,
)
from repro.measure.scan import ArrayScanner
from repro.units import fF, to_fF

ROWS, COLS = 256, 256
MACRO_ROWS, MACRO_COLS = 16, 2


def _build(tech):
    shape = (ROWS, COLS)
    cap = compose_maps(
        uniform_map(shape, 30 * fF),
        mismatch_map(shape, 0.8 * fF, seed=31),
        linear_tilt_map(shape, col_slope=0.012 * fF),
        edge_rolloff_map(shape, depth=3 * fF, width=3),
        cluster_defect_map(shape, center=(60, 180), radius=5.0, depth=12 * fF),
    )
    array = EDRAMArray(ROWS, COLS, tech=tech, macro_cols=MACRO_COLS,
                       macro_rows=MACRO_ROWS, capacitance_map=cap)
    DefectInjector(array, seed=32).scatter(DefectKind.SHORT, 5)
    return array


def bench_e4_array_scan(benchmark, tech):
    array = _build(tech)
    structure = design_structure(tech, MACRO_ROWS, MACRO_COLS, bitline_rows=ROWS)
    abacus = Abacus.analytic(structure, MACRO_ROWS, MACRO_COLS, bitline_rows=ROWS)
    scanner = ArrayScanner(array, structure)

    scan = benchmark(scanner.scan)
    bitmap = AnalogBitmap(scan, abacus)
    window = SpecificationWindow.from_capacitance(abacus, 24 * fF, 36 * fF)
    gradient = fit_gradient(bitmap.estimates)

    flagged = bitmap.out_of_spec(window)
    lines = [
        f"scanned {array.num_cells} cells across {array.num_macros} macro tiles",
        f"population: mean {to_fF(bitmap.mean_capacitance()):.2f} fF, "
        f"sigma {to_fF(bitmap.std_capacitance()):.2f} fF",
        f"out-of-spec cells: {int(flagged.sum())} "
        f"({100 * flagged.mean():.2f} % of the array)",
        "",
        f"recovered tilt: {to_fF(gradient.col_slope) * 1000:.1f} aF/column "
        f"(planted 12.0), significant: {gradient.significant}",
        "",
        "decimated analog bitmap (codes; the particle cluster, edge",
        "roll-off and shorts are visible):",
        render_code_map(scan.codes, max_rows=32, max_cols=86),
    ]
    report("E4: whole-array analog bitmap", "\n".join(lines))

    assert scan.codes.shape == (ROWS, COLS)
    assert gradient.significant
    assert gradient.col_slope == pytest.approx(0.012 * fF, rel=0.4)
    # The planted cluster must be flagged.
    assert flagged[58:63, 178:183].any()

