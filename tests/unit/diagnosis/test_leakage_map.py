"""Leakage bitmap extraction (capacitance + retention ladder)."""

import numpy as np
import pytest

from repro.bitmap.analog import AnalogBitmap
from repro.diagnosis.leakage_map import (
    LeakageBounds,
    extract_leakage,
    retention_ladder,
)
from repro.edram.array import EDRAMArray
from repro.edram.defects import CellDefect, DefectKind
from repro.edram.operations import ArrayOperations
from repro.errors import DiagnosisError
from repro.measure.scan import ArrayScanner

PAUSES = [0.01, 0.1, 1.0, 10.0]


@pytest.fixture(scope="module")
def setup(tech, structure_8x2, abacus_8x2):
    array = EDRAMArray(8, 4, tech=tech, macro_cols=2)
    array.cell(2, 1).apply_defect(CellDefect(DefectKind.RETENTION, factor=3000.0))
    array.cell(5, 3).apply_defect(CellDefect(DefectKind.RETENTION, factor=300.0))
    array.cell(6, 0).apply_defect(CellDefect(DefectKind.SHORT))
    bitmap = AnalogBitmap(ArrayScanner(array, structure_8x2).scan(), abacus_8x2)
    ladder = retention_ladder(ArrayOperations(array), PAUSES)
    bounds = extract_leakage(bitmap, ladder, PAUSES, v_write=1.8, v_min=0.9)
    return array, bitmap, ladder, bounds


class TestLadder:
    def test_validation(self, tech):
        ops = ArrayOperations(EDRAMArray(2, 2, tech=tech))
        with pytest.raises(DiagnosisError):
            retention_ladder(ops, [])
        with pytest.raises(DiagnosisError):
            retention_ladder(ops, [0.1, 0.1])
        with pytest.raises(DiagnosisError):
            retention_ladder(ops, [-1.0, 1.0])

    def test_healthy_cells_survive_everything(self, setup):
        _, _, ladder, _ = setup
        assert ladder[0, 0] == len(PAUSES)

    def test_leaky_cells_ordered_by_severity(self, setup):
        _, _, ladder, _ = setup
        assert ladder[2, 1] < ladder[5, 3] < len(PAUSES)


class TestBounds:
    def test_bounds_bracket_true_leakage(self, setup):
        array, _, _, bounds = setup
        for addr in ((2, 1), (5, 3)):
            true = array.cell(*addr).leak_current
            assert bounds.lower[addr] <= true * 1.2
            if np.isfinite(bounds.upper[addr]):
                assert bounds.upper[addr] >= true * 0.8

    def test_healthy_cells_have_only_upper_bounds(self, setup):
        array, _, _, bounds = setup
        assert bounds.lower[0, 0] == 0.0
        assert np.isfinite(bounds.upper[0, 0])
        assert bounds.upper[0, 0] >= array.cell(0, 0).leak_current

    def test_unmeasurable_cells_are_nan(self, setup):
        _, _, _, bounds = setup
        assert np.isnan(bounds.lower[6, 0])  # the short: no C estimate
        assert np.isnan(bounds.upper[6, 0])

    def test_midpoint_only_where_two_sided(self, setup):
        _, _, _, bounds = setup
        mid = bounds.midpoint()
        assert np.isfinite(mid[5, 3])  # bracketed cell
        assert np.isnan(mid[0, 0])  # one-sided cell

    def test_provably_leaky_query(self, setup):
        array, _, _, bounds = setup
        leaky = bounds.leaky_cells(1e-13)
        assert set(leaky) == {(2, 1), (5, 3)}
        with pytest.raises(DiagnosisError):
            bounds.leaky_cells(0.0)

    def test_diagnostic_separation(self, setup, tech):
        """The headline: same fail time, different root cause."""
        # A small capacitor with normal leakage and a normal capacitor
        # with high leakage can fail the same pause; only the combined
        # map separates them.
        array = EDRAMArray(4, 2, tech=tech)
        array.cell(0, 0).apply_defect(CellDefect(DefectKind.LOW_CAP, factor=0.4))
        array.cell(0, 0).leak_current *= 120  # small cap, leaky-ish
        array.cell(1, 1).apply_defect(CellDefect(DefectKind.RETENTION, factor=300.0))
        from repro.calibration.design import design_structure
        from repro.calibration.abacus import Abacus

        structure = design_structure(tech, 4, 2)
        abacus = Abacus.analytic(structure, 4, 2)
        bitmap = AnalogBitmap(ArrayScanner(array, structure).scan(), abacus)
        ladder = retention_ladder(ArrayOperations(array), PAUSES)
        bounds = extract_leakage(bitmap, ladder, PAUSES, 1.8, 0.9)
        # Both fail retention by 10 s...
        assert ladder[0, 0] < len(PAUSES)
        assert ladder[1, 1] < len(PAUSES)
        # ...but the capacitance map separates cause: (0,0) is a small
        # capacitor, (1,1) is a full capacitor with worse leakage bound.
        assert bitmap.estimates[0, 0] < 0.6 * bitmap.estimates[1, 1]


class TestValidation:
    def test_shape_mismatch(self, setup):
        _, bitmap, _, _ = setup
        with pytest.raises(DiagnosisError):
            extract_leakage(bitmap, np.zeros((2, 2), dtype=int), PAUSES, 1.8, 0.9)

    def test_voltage_order(self, setup):
        _, bitmap, ladder, _ = setup
        with pytest.raises(DiagnosisError):
            extract_leakage(bitmap, ladder, PAUSES, v_write=0.9, v_min=1.8)
