"""Structured lint diagnostics and the report container.

A :class:`Diagnostic` is one finding of one rule: a stable code
(``ERC001``), a severity, a human message, and the node names (or source
location) it anchors to.  Rules yield diagnostics; the analyzer collects
them into a :class:`LintReport`, which handles severity filtering,
defect waivers, JSON serialization and exit-code semantics.

Severity semantics follow compiler practice: ``ERROR`` findings make
``repro lint`` exit non-zero and make a pre-flight check raise
:class:`~repro.errors.RuleViolation`; ``WARNING`` findings are reported
but never fatal; ``INFO`` is advisory only.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator


class Severity(enum.Enum):
    """Diagnostic severity, ordered from advisory to fatal."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        """Numeric rank for comparisons (higher is more severe)."""
        return {"info": 0, "warning": 1, "error": 2}[self.value]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one lint rule.

    Parameters
    ----------
    code:
        Stable rule code, e.g. ``"ERC001"``.
    slug:
        Kebab-case rule name, e.g. ``"floating-node"``.
    severity:
        Effective severity of this finding.
    message:
        Human-readable description naming the offending entity.
    subject:
        What was analyzed (circuit title, network label, file path...).
    nodes:
        Node names the finding anchors to (netlist rules).
    location:
        ``file:line`` anchor (source rules), if any.
    waived:
        True when a known-defect waiver suppressed this finding; waived
        diagnostics stay in the report for audit but never fail a check.
    """

    code: str
    slug: str
    severity: Severity
    message: str
    subject: str = ""
    nodes: tuple[str, ...] = ()
    location: str | None = None
    waived: bool = False

    def format(self) -> str:
        """One-line human rendering, ``code severity slug: message``."""
        suffix = ""
        if self.location:
            suffix = f" ({self.location})"
        elif self.subject:
            suffix = f" [{self.subject}]"
        waived = " (waived)" if self.waived else ""
        return f"{self.code} {self.severity.value:<7} {self.slug}: {self.message}{suffix}{waived}"

    def to_dict(self) -> dict[str, object]:
        """JSON-ready dict representation."""
        return {
            "code": self.code,
            "slug": self.slug,
            "severity": self.severity.value,
            "message": self.message,
            "subject": self.subject,
            "nodes": list(self.nodes),
            "location": self.location,
            "waived": self.waived,
        }


@dataclass
class LintReport:
    """An ordered collection of diagnostics with filtering helpers."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        """Append one diagnostic."""
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        """Append many diagnostics (e.g. another report's)."""
        self.diagnostics.extend(diagnostics)

    def merge(self, other: "LintReport") -> "LintReport":
        """Fold ``other``'s diagnostics into this report; returns self."""
        self.extend(other.diagnostics)
        return self

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------

    @property
    def errors(self) -> list[Diagnostic]:
        """Unwaived error-severity diagnostics."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR and not d.waived]

    @property
    def warnings(self) -> list[Diagnostic]:
        """Unwaived warning-severity diagnostics."""
        return [d for d in self.diagnostics if d.severity is Severity.WARNING and not d.waived]

    @property
    def ok(self) -> bool:
        """True when no unwaived error remains."""
        return not self.errors

    def by_code(self, code: str) -> list[Diagnostic]:
        """All diagnostics (waived included) carrying ``code``."""
        return [d for d in self.diagnostics if d.code == code]

    def codes(self) -> set[str]:
        """Set of rule codes present (waived included)."""
        return {d.code for d in self.diagnostics}

    # ------------------------------------------------------------------
    # Waivers
    # ------------------------------------------------------------------

    def waive_nodes(self, nodes: Iterable[str]) -> "LintReport":
        """Mark findings anchored to any of ``nodes`` as waived.

        This is how pre-flight checks tolerate *known* defects: the
        defect injector knows which storage nodes it sabotaged, and
        findings that touch those nodes are expected, not actionable.
        Returns self for chaining.
        """
        waived = set(nodes)
        if not waived:
            return self
        self.diagnostics = [
            replace(d, waived=True) if not d.waived and waived & set(d.nodes) else d
            for d in self.diagnostics
        ]
        return self

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def summary(self) -> str:
        """Counts line, e.g. ``2 errors, 1 warning (1 waived)``."""
        n_err = len(self.errors)
        n_warn = len(self.warnings)
        n_waived = sum(1 for d in self.diagnostics if d.waived)
        parts = [
            f"{n_err} error{'s' if n_err != 1 else ''}",
            f"{n_warn} warning{'s' if n_warn != 1 else ''}",
        ]
        text = ", ".join(parts)
        if n_waived:
            text += f" ({n_waived} waived)"
        return text

    def format_text(self) -> str:
        """Full human rendering: one line per diagnostic plus a summary."""
        lines = [d.format() for d in self.diagnostics]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_json(self, indent: int | None = 2) -> str:
        """JSON rendering: diagnostics array plus count fields."""
        payload = {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "error_count": len(self.errors),
            "warning_count": len(self.warnings),
            "ok": self.ok,
        }
        return json.dumps(payload, indent=indent)

    @property
    def exit_code(self) -> int:
        """Process exit code: 1 when unwaived errors exist, else 0."""
        return 0 if self.ok else 1
