"""Instrument fault qualification: defects in the structure itself.

The measurement structure is fabricated in the same imperfect process it
monitors, so a test program must recognize when the *instrument* is
broken rather than the array ("who tests the tester").  This module
injects the structure's own realistic failure modes into the static
measurement path and catalogues their array-level signatures:

=====================  ====================================================
fault                  signature on a healthy array
=====================  ====================================================
LEC stuck open         no charge sharing → V_GS = 0 → every code 0
LEC stuck closed       C_REF never isolated: the CHARGE phase drives the
                       gate too → V_GS = V_DD → every code saturates
PRG stuck open         plate never charges → every code 0
DAC leg k dead         ramp plateaus at step k: codes ≥ k collapse to
                       k−1 or saturate (a 'wall' in the histogram)
register stuck at n    every readout returns n regardless of C_m
C_REF drift            multiplicative code shift (gain error) — the
                       subtlest: looks like a process shift of the array
=====================  ====================================================

:class:`FaultySequencer` wraps a healthy macro measurement with one
fault; :func:`fault_signature` classifies a code map against the
catalogue, which is what an automated test program would run before
trusting an analog bitmap.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.edram.array import MacroCell
from repro.errors import MeasurementError
from repro.measure.result import MeasurementResult
from repro.measure.sequencer import MeasurementSequencer
from repro.measure.structure import MeasurementStructure


class StructureFault(enum.Enum):
    """Failure modes of the measurement structure itself."""

    LEC_STUCK_OPEN = "lec_stuck_open"
    LEC_STUCK_CLOSED = "lec_stuck_closed"
    PRG_STUCK_OPEN = "prg_stuck_open"
    DAC_LEG_DEAD = "dac_leg_dead"
    REGISTER_STUCK = "register_stuck"
    CREF_DRIFT = "cref_drift"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class FaultSpec:
    """One injected instrument fault.

    ``parameter`` is fault-specific: the dead leg index for
    ``DAC_LEG_DEAD``, the stuck value for ``REGISTER_STUCK``, the
    capacitance multiplier for ``CREF_DRIFT``; ignored otherwise.
    """

    fault: StructureFault
    parameter: float = 0.0

    def __post_init__(self) -> None:
        if self.fault is StructureFault.DAC_LEG_DEAD and not 1 <= self.parameter:
            raise MeasurementError("DAC_LEG_DEAD needs a leg index >= 1")
        if self.fault is StructureFault.CREF_DRIFT and self.parameter <= 0:
            raise MeasurementError("CREF_DRIFT needs a positive multiplier")


class FaultySequencer:
    """Measurement sequencer with one injected instrument fault."""

    def __init__(
        self,
        macro: MacroCell,
        structure: MeasurementStructure,
        spec: FaultSpec,
    ) -> None:
        self.macro = macro
        self.structure = structure
        self.spec = spec
        self._healthy = MeasurementSequencer(macro, structure)

    def _faulty_vgs(self, row: int, lcol: int) -> float:
        fault = self.spec.fault
        if fault is StructureFault.LEC_STUCK_OPEN:
            return 0.0  # C_REF node never connects; gate stays grounded
        if fault is StructureFault.PRG_STUCK_OPEN:
            return 0.0  # plate never charges; sharing yields nothing
        if fault is StructureFault.LEC_STUCK_CLOSED:
            # The gate follows the plate through every phase, including
            # the V_DD CHARGE drive; nothing discharges it before ramp.
            return self.structure.tech.vdd
        if fault is StructureFault.CREF_DRIFT:
            # The reference capacitor shifted (dielectric drift): the
            # share divides against a different C_REF than calibrated.
            healthy_vgs = self._healthy.measure_charge(row, lcol).vgs
            vdd = self.structure.tech.vdd
            if healthy_vgs >= vdd:
                return vdd
            x = self.structure.c_ref_total * healthy_vgs / (vdd - healthy_vgs)
            drifted = self.structure.c_ref_total * self.spec.parameter
            return vdd * x / (x + drifted)
        # Conversion-stage faults share the healthy V_GS.
        return self._healthy.measure_charge(row, lcol).vgs

    def _convert(self, vgs: float) -> int:
        fault = self.spec.fault
        if fault is StructureFault.REGISTER_STUCK:
            return int(self.spec.parameter)
        code = self.structure.code_for_vgs(vgs)
        if fault is StructureFault.DAC_LEG_DEAD:
            dead = int(self.spec.parameter)
            # The ramp never rises past leg `dead`: cells needing more
            # current than (dead-1) legs can deliver never flip.
            if code >= dead:
                return self.structure.design.num_steps
        return code

    def measure(self, row: int, lcol: int) -> MeasurementResult:
        """Measure one cell through the faulty instrument."""
        vgs = self._faulty_vgs(row, lcol)
        code = self._convert(vgs)
        return MeasurementResult(
            code=code,
            num_steps=self.structure.design.num_steps,
            vgs=vgs,
            tier="charge+fault",
            address=(self.macro.row_start + row, self.macro.col_start + lcol),
        )

    def scan_macro(self) -> np.ndarray:
        """Codes for every cell of the macro."""
        mc = self.macro.array.macro_cols
        return np.array(
            [[self.measure(r, c).code for c in range(mc)] for r in range(self.macro.rows)]
        )


def fault_signature(codes: np.ndarray, num_steps: int = 20) -> StructureFault | None:
    """Classify a macro's code map against the instrument-fault catalogue.

    Returns the suspected fault or ``None`` when the map looks like a
    plausible array measurement (spread of mid-range codes).  This is
    the "qualify the instrument first" screen; CREF drift is *not*
    detectable from one map alone (it mimics a process shift) and needs
    a golden reference — by design, it returns ``None`` here.
    """
    codes = np.asarray(codes)
    if codes.size == 0:
        raise MeasurementError("empty code map")
    values = np.unique(codes)
    if values.size == 1:
        value = int(values[0])
        if value == 0:
            return StructureFault.LEC_STUCK_OPEN  # or PRG; same signature
        if value == num_steps:
            return StructureFault.LEC_STUCK_CLOSED
        return StructureFault.REGISTER_STUCK
    # A dead DAC leg leaves a forbidden band: some codes present below a
    # threshold, a saturation spike at full scale, nothing between.
    present = set(int(v) for v in values)
    if num_steps in present:
        below = sorted(v for v in present if v < num_steps)
        if below:
            gap_start = below[-1] + 1
            saturated = int((codes == num_steps).sum())
            if gap_start < num_steps and saturated >= codes.size * 0.05:
                return StructureFault.DAC_LEG_DEAD
    return None
