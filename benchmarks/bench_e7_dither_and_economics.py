"""E7 — sub-code resolution and test economics (extension).

Two dials a production deployment of the paper's structure turns:

1. **Dithered conversion**: repeating the flow R times with a ΔI/R ramp
   offset refines the quantization R-fold at R× the test time.  The
   bench sweeps R and reports worst-case extraction error versus silicon
   time per cell.
2. **Campaign scheduling**: full analog bitmaps vs sparse process
   monitoring, with stream sizes and the (absurd) probe-station
   equivalent.
"""

import numpy as np
from conftest import report

from repro.calibration.dither import DitheredConverter
from repro.controller.address import ScanOrder
from repro.controller.bist import BISTController
from repro.controller.scheduler import TestScheduler
from repro.edram.array import EDRAMArray
from repro.edram.variation_map import compose_maps, mismatch_map, uniform_map
from repro.units import fF, to_fF


def _dither_error(tech, structure, repeats):
    converter = DitheredConverter(structure, 2, 2, repeats=repeats)
    errors = []
    for cm_ff in np.linspace(18, 48, 31):
        array = EDRAMArray(2, 2, tech=tech)
        array.cell(0, 0).capacitance = cm_ff * fF
        result = converter.measure(array.macro(0), 0, 0)
        errors.append(abs(result.capacitance - cm_ff * fF))
    return max(errors), converter.effective_resolution(), repeats * structure.design.flow_duration


def bench_e7_dither_resolution(benchmark, tech, structure_2x2):
    lines = [
        "dithered conversion (offset ramps, same 20-step DAC):",
        "",
        f"{'repeats':>8}  {'max err (fF)':>13}  {'LSB (fF)':>9}  {'time/cell':>10}",
    ]
    results = {}
    for repeats in (1, 2, 4, 8, 16):
        max_err, lsb, t_cell = _dither_error(tech, structure_2x2, repeats)
        results[repeats] = max_err
        lines.append(
            f"{repeats:>8}  {to_fF(max_err):>13.3f}  {to_fF(lsb):>9.3f}  "
            f"{t_cell * 1e9:>8.0f} ns"
        )
    benchmark.pedantic(
        _dither_error, args=(tech, structure_2x2, 4), rounds=1, iterations=1
    )
    lines.append("")
    lines.append("error halves per doubling of R: the paper's 6 % converter turns")
    lines.append("into a sub-1 % instrument for 8x the (still tiny) test time.")
    report("E7a: dither resolution vs test time", "\n".join(lines))

    assert results[8] < results[1] / 4
    assert results[16] < results[2] / 4


def bench_e7_test_economics(benchmark, tech):
    rows, cols = 128, 64
    capacitance = compose_maps(
        uniform_map((rows, cols), 30 * fF),
        mismatch_map((rows, cols), 0.8 * fF, seed=71),
    )
    array = EDRAMArray(rows, cols, tech=tech, macro_cols=2, macro_rows=16,
                       capacitance_map=capacitance)
    from repro.calibration.design import design_structure

    structure = design_structure(tech, 16, 2, bitline_rows=rows)
    scheduler = TestScheduler(array, structure)
    controller = BISTController(array, structure, scheduler)

    full = benchmark.pedantic(
        controller.run, args=(ScanOrder.MACRO_MAJOR,), rounds=2, iterations=1
    )
    sparse = controller.monitor(fraction=0.02, seed=5)

    lines = [f"array: {array.num_cells} cells ({array.num_macros} tiles of 16x2)", ""]
    for plan in scheduler.compare_strategies():
        lines.append(plan.describe())
    lines.append("")
    lines.append(
        f"full bitmap stream : {full.stream.encoded_bits} bits "
        f"({full.stream.compression_ratio:.1f}x vs raw), "
        f"mean code {full.mean_code():.2f}"
    )
    lines.append(
        f"sparse monitor     : {sparse.plan.cells} cells "
        f"({100 * sparse.coverage:.1f} %), mean code "
        f"{sparse.mean_code():.2f} +- {sparse.sampling_sigma():.2f}"
    )
    speedup = scheduler.speedup_vs_probe(scheduler.plan(ScanOrder.MACRO_MAJOR))
    lines.append(
        f"probe-station equivalent for the full map: "
        f"{scheduler.probe_station_equivalent(array.num_cells) / 3600:.0f} hours; "
        f"embedded structure speedup per cell ~{speedup:.1e}x"
    )
    lines.append("")
    lines.append("phase-5 conversion strategy (same full campaign):")
    expected = int(full.mean_code())
    for strategy in ("full", "early_stop", "sar"):
        plan = scheduler.plan(
            ScanOrder.MACRO_MAJOR, conversion=strategy, expected_code=expected
        )
        steps = scheduler.conversion_steps(strategy, expected)
        lines.append(
            f"  {strategy:<11} {steps:>5.1f} steps/cell  "
            f"flow {plan.flow_time * 1e6:8.1f} us  total {plan.total_time * 1e6:8.1f} us"
        )
    lines.append("  (early-stop needs only a ramp-halt gate; SAR needs a")
    lines.append("   binary-weighted DAC instead of the paper's shift register.)")
    report("E7b: test economics", "\n".join(lines))

    assert abs(sparse.mean_code() - full.mean_code()) < 3 * max(
        sparse.sampling_sigma(), 0.05
    )
    assert full.coverage == 1.0
