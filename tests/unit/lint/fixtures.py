"""Known-good and known-bad fixtures for the lint rule tests.

Each ``bad_*`` builder seeds exactly the violation its name says (some
produce collateral findings too — a dangling node is usually also a
DC-pathless node); the ``good_*`` builders must lint clean.  The CLI
acceptance test iterates :data:`BAD_FIXTURES` to prove every rule code
fires at least once.
"""

from __future__ import annotations

from repro.circuit.charge import CapacitorNetwork
from repro.circuit.elements import Capacitor, Resistor, VoltageSource
from repro.circuit.netlist import Circuit
from repro.edram.array import EDRAMArray
from repro.edram.defects import CellDefect, DefectKind
from repro.measure.netlist_builder import ChargeNetlist, build_charge_network
from repro.measure.structure import MeasurementDesign, MeasurementStructure
from repro.tech.parameters import MosfetParams, TechnologyCard
from repro.units import fF


def small_array(rows: int = 8, cols: int = 4) -> EDRAMArray:
    return EDRAMArray(rows, cols, macro_cols=2, macro_rows=4)


def structure_for(array: EDRAMArray) -> MeasurementStructure:
    return MeasurementStructure(array.tech, MeasurementDesign())


# ---------------------------------------------------------------------------
# Circuit fixtures (ERC001 / ERC002 / ERC005 / UNT001)
# ---------------------------------------------------------------------------


def good_divider() -> Circuit:
    ckt = Circuit("good-divider")
    ckt.add(VoltageSource("V1", "in", "0", 1.8))
    ckt.add(Resistor("R1", "in", "mid", 1e3))
    ckt.add(Resistor("R2", "mid", "0", 1e3))
    return ckt


def bad_floating_node() -> Circuit:
    """ERC001: capacitor to a dangling node nothing else touches."""
    ckt = good_divider()
    ckt.add(Capacitor("CTYPO", "mid", "midd", 30 * fF))  # note the typo'd node
    return ckt


def bad_no_dc_path() -> Circuit:
    """ERC002: two nodes joined only by capacitors — a floating island."""
    ckt = good_divider()
    ckt.add(Capacitor("C1", "mid", "island_a", 30 * fF))
    ckt.add(Capacitor("C2", "island_a", "island_b", 30 * fF))
    ckt.add(Capacitor("C3", "island_b", "0", 30 * fF))
    return ckt


def bad_vsource_loop() -> Circuit:
    """ERC005: two ideal sources in parallel between the same nodes."""
    ckt = good_divider()
    ckt.add(VoltageSource("V2", "in", "0", 1.7))
    return ckt


def bad_unit_magnitude() -> Circuit:
    """UNT001: a '30 fF' capacitor written as thirty farads."""
    ckt = good_divider()
    ckt.add(Capacitor("CSLIP", "mid", "0", 30.0))
    return ckt


# ---------------------------------------------------------------------------
# Charge-network fixtures (ERC003)
# ---------------------------------------------------------------------------


def good_charge_network() -> CapacitorNetwork:
    net = CapacitorNetwork()
    net.add_capacitor("CM", "plate", "0", 30 * fF)
    net.add_capacitor("CREF", "gate", "0", 28 * fF)
    net.add_switch("LEC", "plate", "gate")
    net.drive("plate", 0.0)
    return net


def bad_charge_trap() -> CapacitorNetwork:
    """ERC003: a capacitively loaded node no switch or drive can reach."""
    net = good_charge_network()
    net.add_capacitor("CSTRAY", "orphan", "0", 5 * fF)
    return net


# ---------------------------------------------------------------------------
# Flow fixtures (ERC004)
# ---------------------------------------------------------------------------


def good_flow() -> ChargeNetlist:
    array = small_array()
    return build_charge_network(array.macro(0), structure_for(array))


def bad_flow_isolation() -> ChargeNetlist:
    """ERC004: a dielectric SHORT keeps a storage node tied to the plate
    through the ISOLATE phase (the paper's step-3 invariant broken)."""
    array = small_array()
    array.cell(1, 0).apply_defect(CellDefect(DefectKind.SHORT))
    return build_charge_network(array.macro(0), structure_for(array))


def bad_flow_miswired_lec() -> ChargeNetlist:
    """ERC004: the LEC switch lands on a wiring stub instead of the gate,
    so SHARE never connects C_m to C_REF."""
    array = small_array()
    structure = structure_for(array)
    macro = array.macro(0)
    tech = structure.tech
    net = CapacitorNetwork()
    net.add_capacitor("CPP", "plate", "0", macro.plate_parasitic)
    net.add_capacitor("CREFT", "gate", "0", structure.c_ref_total)
    net.add_switch("LEC", "plate", "lec_stub")  # miswired: not the gate
    access = {}
    for row in range(macro.rows):
        for col in range(array.macro_cols):
            s = f"s{row}_{col}"
            net.add_capacitor(f"CJS{row}_{col}", s, "0", tech.storage_junction_cap)
            net.add_capacitor(f"CCELL{row}_{col}", "plate", s, macro.cell(row, col).capacitance)
            name = f"AC{row}_{col}"
            net.add_switch(name, f"bl{col}", s)
            access[(row, col)] = name
    return ChargeNetlist(net, macro, access, "LEC")


# ---------------------------------------------------------------------------
# Technology fixtures (PRM001)
# ---------------------------------------------------------------------------


def bad_corner_technology() -> TechnologyCard:
    """PRM001: thresholds and kp far outside the corner envelope."""
    return TechnologyCard(
        name="rogue-card",
        nmos=MosfetParams(polarity="nmos", vth0=0.9, kp=900e-6),
        pmos=MosfetParams(polarity="pmos", vth0=-0.9, kp=20e-6),
        cell_capacitance=60.0 * fF,
    )


# ---------------------------------------------------------------------------
# Source fixtures (PY001 / PY002)
# ---------------------------------------------------------------------------

BAD_SOURCE = '''"""Module with both source-rule violations."""

C_REF = 28e-15          # PY001: femto-scale magic literal


def check(value):
    assert value > 0     # PY002: runtime validation by assert
    return value * C_REF
'''

GOOD_SOURCE = '''"""Module that uses the units vocabulary properly."""

from repro.units import fF

C_REF = 28 * fF
TOLERANCE = 1e-12       # coarse epsilon, above the femto threshold


def check(value):
    if value <= 0:
        raise ValueError(value)
    return value * C_REF
'''

#: (rule code, fixture builder, lint kind) — the acceptance matrix.
BAD_FIXTURES = [
    ("ERC001", bad_floating_node, "circuit"),
    ("ERC002", bad_no_dc_path, "circuit"),
    ("ERC003", bad_charge_trap, "charge"),
    ("ERC004", bad_flow_isolation, "flow"),
    ("ERC005", bad_vsource_loop, "circuit"),
    ("UNT001", bad_unit_magnitude, "circuit"),
    ("PRM001", bad_corner_technology, "technology"),
]
