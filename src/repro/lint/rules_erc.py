"""Electrical rule checks (ERC) over netlists, charge networks and flows.

These are the structural checks that catch, *before any solver runs*,
the error classes that otherwise surface as a cryptic
:class:`~repro.errors.SingularCircuitError` deep inside MNA — or worse,
as a silently wrong V_GS.  The rule set mirrors the hazards of the
paper's measurement (§2): the charge-sharing result
``V_GS = V_DD·C_m/(C_m + C_REF + C_par)`` only holds when every
capacitor except the cell under test is isolated from the plate by the
end of the ISOLATE phase, and a floating or charge-trapped node on the
C_REF side corrupts the denominator invisibly.

Rules
-----
==========  ==========================  ========  ============================
code        slug                        target    catches
==========  ==========================  ========  ============================
``ERC001``  floating-node               circuit   dangling node (one terminal)
``ERC002``  no-dc-path-to-ground        circuit   capacitively-isolated island
``ERC003``  charge-trap                 charge    unreachable charged node
``ERC004``  phase-isolation-violation   flow      plate not isolated in step 3
``ERC005``  voltage-source-loop         circuit   V-source loop / parallel pair
==========  ==========================  ========  ============================
"""

from __future__ import annotations

from typing import Iterator

from repro.circuit.charge import CapacitorNetwork
from repro.circuit.elements import Element, Resistor, Switch, VoltageSource
from repro.circuit.mosfet import Mosfet
from repro.circuit.netlist import GROUND, Circuit
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import rule


class _UnionFind:
    """Union-find over hashable keys (node names)."""

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def add(self, key: str) -> None:
        self._parent.setdefault(key, key)

    def find(self, key: str) -> str:
        self.add(key)
        root = key
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[key] != root:  # path compression
            self._parent[key], key = root, self._parent[key]
        return root

    def union(self, a: str, b: str) -> bool:
        """Merge the sets of ``a`` and ``b``; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self._parent[rb] = ra
        return True

    def groups(self) -> dict[str, set[str]]:
        """All sets, keyed by representative."""
        out: dict[str, set[str]] = {}
        for key in self._parent:
            out.setdefault(self.find(key), set()).add(key)
        return out


def _dc_edges(element: Element) -> Iterator[tuple[str, str]]:
    """Node pairs joined by a DC current path through ``element``.

    Capacitors are DC opens; current sources and mirror outputs have
    infinite DC output impedance, so neither *pins* a floating node.
    A switch conducts in both states (its off-state is a finite, if
    huge, resistance), and a MOSFET conducts drain-to-source through
    its channel/leakage floor — but its gate draws no current.
    """
    if isinstance(element, (Resistor, VoltageSource, Switch)):
        yield element.nodes()
    elif isinstance(element, Mosfet):
        yield (element.drain, element.source)


@rule(
    "ERC001",
    "floating-node",
    target="circuit",
    summary="node connected to exactly one element terminal (dangling)",
)
def check_floating_node(circuit: Circuit, context: dict[str, object]) -> Iterator[Diagnostic]:
    """A node touched by a single element terminal cannot carry current.

    Almost always a typo'd node name: the intended connection landed on
    a fresh implicit node instead.  Ground is exempt (it is pinned by
    definition), as is any node a voltage source drives — a one-terminal
    source node is a legal test stimulus.
    """
    touch_count: dict[str, int] = {}
    pinned: set[str] = set()
    for element in circuit:
        for node in element.nodes():
            touch_count[node] = touch_count.get(node, 0) + 1
        if isinstance(element, VoltageSource):
            pinned.update(element.nodes())
    for node, count in touch_count.items():
        if node == GROUND or node in pinned:
            continue
        if count == 1:
            yield check_floating_node.diagnostic(
                f"node {node!r} connects to exactly one element terminal",
                subject=circuit.title,
                nodes=(node,),
            )


@rule(
    "ERC002",
    "no-dc-path-to-ground",
    target="circuit",
    summary="node group with no resistive/source path to the reference node",
)
def check_dc_path(circuit: Circuit, context: dict[str, object]) -> Iterator[Diagnostic]:
    """Every node needs a DC path to ground or MNA is singular.

    Builds the conduction graph (resistors, sources, switches, MOSFET
    channels) and reports every connected component that does not reach
    ground.  Capacitor-only islands are the classic instance: gmin keeps
    the solve numerically alive but the island's bias is then set by the
    solver's crutch, not the design.
    """
    uf = _UnionFind()
    uf.add(GROUND)
    for name in circuit.node_names:
        uf.add(name)
    for element in circuit:
        for a, b in _dc_edges(element):
            uf.union(a, b)
    ground_root = uf.find(GROUND)
    for root, members in sorted(uf.groups().items()):
        if root == ground_root:
            continue
        nodes = tuple(sorted(members))
        shown = ", ".join(nodes[:6]) + (", ..." if len(nodes) > 6 else "")
        yield check_dc_path.diagnostic(
            f"{len(nodes)} node(s) have no DC path to ground: {shown}",
            subject=circuit.title,
            nodes=nodes,
        )


@rule(
    "ERC005",
    "voltage-source-loop",
    target="circuit",
    summary="loop of ideal voltage sources (including parallel sources)",
)
def check_vsource_loop(circuit: Circuit, context: dict[str, object]) -> Iterator[Diagnostic]:
    """A cycle of ideal voltage sources over-determines the node voltages.

    Two sources in parallel are the two-edge case.  Detected by running
    union-find over voltage-source edges only: a source whose terminals
    are already connected through other sources closes a loop.
    """
    uf = _UnionFind()
    for element in circuit.elements_of_type(VoltageSource):
        a, b = element.nodes()
        if not uf.union(a, b):
            yield check_vsource_loop.diagnostic(
                f"voltage source {element.name!r} closes a source loop "
                f"between nodes {a!r} and {b!r}",
                subject=circuit.title,
                nodes=(a, b),
            )


@rule(
    "ERC003",
    "charge-trap",
    target="charge",
    summary="capacitively loaded node that no switch or drive can ever reach",
)
def check_charge_trap(net: CapacitorNetwork, context: dict[str, object]) -> Iterator[Diagnostic]:
    """A floating, capacitor-loaded node with no switch is a charge trap.

    In the ideal-switch network every reconfiguration happens through
    switches or direct drives; a node that carries capacitance but has
    no switch incident and no drive attached keeps whatever charge it
    was born with forever.  On the C_REF/gate node this silently adds a
    stuck term to the charge-sharing denominator; on a storage node it
    means the cell can never be measured.  The access-open defect
    renders exactly this way, which is why pre-flight checks waive the
    storage nodes of known-defective cells.
    """
    switched: set[str] = set()
    for _name, a, b, _closed in net.switches():
        switched.add(a)
        switched.add(b)
    loaded: set[str] = set()
    for _name, a, b, c in net.capacitors():
        if c > 0.0:
            loaded.add(a)
            loaded.add(b)
    for node in net.node_names:
        if node == net.GROUND or net.is_driven(node):
            continue
        if node in loaded and node not in switched:
            yield check_charge_trap.diagnostic(
                f"node {node!r} carries capacitance but no switch or drive "
                "can ever reach it (trapped charge)",
                subject=str(context.get("subject", "charge-network")),
                nodes=(node,),
            )


@rule(
    "ERC004",
    "phase-isolation-violation",
    target="flow",
    summary="plate island not isolated as the measurement flow demands",
)
def check_phase_isolation(subject: object, context: dict[str, object]) -> Iterator[Diagnostic]:
    """Replay the five-step flow's switch schedule and check isolation.

    ``subject`` is a :class:`~repro.measure.netlist_builder.ChargeNetlist`
    (built macro network); ``context`` may carry ``row`` for the target
    row (default 0) and a ``subject`` label.

    The paper's step 3 (ISOLATE) requires the plate to float alone: PRG
    open, LEC open, every neighbour bitline floated.  Any closed switch
    still touching the plate at that point — a dielectric short rendered
    as a stuck switch, a miswired LEC — injects its far-side capacitance
    into the charge-sharing denominator and skews every code the macro
    produces.  Step 4 (SHARE) then requires the plate island to be
    exactly {plate, gate}: C_m must share with C_REF and nothing else.

    The replay drives only the switch states (union-find island checks);
    no charge solve runs.
    """
    from repro.measure.netlist_builder import ChargeNetlist

    if not isinstance(subject, ChargeNetlist):
        raise TypeError(f"ERC004 expects a ChargeNetlist, got {type(subject).__name__}")
    built = subject
    net = built.network
    label = str(context.get("subject", f"macro[{built.macro.index}]"))
    row = int(context.get("row", 0))  # type: ignore[call-overload]

    snap = net.snapshot()
    try:
        # Phase 1→2→3 switch schedule (see MeasurementSequencer): only the
        # target row's access switches stay closed, LEC opens.
        for (r, _c), name in built.access_switches.items():
            if r == row:
                net.close_switch(name)
            else:
                net.open_switch(name)
        net.open_switch(built.lec_switch)

        plate_island = net.island_of("plate")
        extras = sorted(plate_island - {"plate"})
        if extras:
            yield check_phase_isolation.diagnostic(
                "ISOLATE phase: plate is still switch-connected to "
                f"{', '.join(repr(n) for n in extras)} (expected isolated plate)",
                subject=label,
                nodes=tuple(["plate", *extras]),
            )

        # Phase 4: LEC closes; the island must be exactly {plate, gate}
        # plus whatever ISOLATE already flagged.
        net.close_switch(built.lec_switch)
        share_island = net.island_of("plate")
        share_extras = sorted(share_island - {"plate", "gate"} - set(extras))
        if "gate" not in share_island:
            yield check_phase_isolation.diagnostic(
                "SHARE phase: closing LEC does not connect the plate to the "
                "C_REF gate node (miswired LEC switch)",
                subject=label,
                nodes=("plate", "gate"),
            )
        if share_extras:
            yield check_phase_isolation.diagnostic(
                "SHARE phase: plate-gate island also contains "
                f"{', '.join(repr(n) for n in share_extras)}",
                subject=label,
                nodes=tuple(["plate", "gate", *share_extras]),
            )
    finally:
        net.restore(snap)
