"""Crosstalk-compensated joint estimation (extension).

The abacus decodes each cell *assuming nominal neighbours*, but the
measurement physics couples plate-mates: each reading is

    X_t = C_t + C_pp + Σ_{row mates j} series(C_j, C_BL + C_js)
              + Σ_{off-row k} series(C_k, C_js)

so a defective neighbour biases C_t (an open row-mate reads ≈ −13 fF
apparent on 64-row bitlines; a short reads high by its coupled bitline).
Since the coupling terms are *small* relative to C_t, the joint system
inverts by fixed-point iteration: decode everything with the nominal
assumption, recompute every cell's background from its mates' current
estimates, re-subtract, repeat.  Three iterations converge to the
quantization floor.

Defect handling uses the measurement itself: code-0 cells are treated as
opens (no coupling) unless the classifier called them SHORT (full
bitline coupling); full-scale cells contribute their range ceiling.
"""

from __future__ import annotations

import numpy as np

from repro.bitmap.analog import AnalogBitmap
from repro.calibration.design import nominal_background
from repro.diagnosis.classifier import CellVerdict
from repro.edram.array import EDRAMArray
from repro.errors import DiagnosisError


def _series(a: np.ndarray | float, b: float) -> np.ndarray | float:
    total = a + b
    return np.where(total > 0, a * b / np.where(total > 0, total, 1.0), 0.0)


def compensate_estimates(
    bitmap: AnalogBitmap,
    array: EDRAMArray,
    verdicts: np.ndarray | None = None,
    iterations: int = 4,
) -> np.ndarray:
    """Jointly re-invert a bitmap, compensating plate-mate coupling.

    Parameters
    ----------
    bitmap:
        The decoded bitmap (provides codes and abacus).
    array:
        The scanned array (provides geometry — *not* the true
        capacitances; those stay unknown, as on silicon).
    verdicts:
        Optional classifier output; used to treat SHORT cells'
        coupling correctly.  Without it, code-0 cells are assumed open.
    iterations:
        Fixed-point sweeps (converges in 2–3).

    Returns the compensated estimate matrix in farads (NaN where the
    cell itself is out of range).
    """
    if iterations < 1:
        raise DiagnosisError("iterations must be >= 1")
    if bitmap.shape != (array.rows, array.cols):
        raise DiagnosisError(
            f"bitmap {bitmap.shape} does not match array "
            f"{(array.rows, array.cols)}"
        )
    tech = array.tech
    structure = bitmap.abacus.structure
    creft = structure.c_ref_total
    vdd = tech.vdd
    cjs = tech.storage_junction_cap
    cbl = tech.bitline_capacitance(array.rows)
    background_nominal = nominal_background(
        tech, array.macro_rows, array.macro_cols, bitline_rows=array.rows
    )

    # The measurement's total island capacitance per cell, from the code
    # bin midpoint (X = C_estimate + nominal background by construction
    # of the abacus).
    x_measured = bitmap.estimates + background_nominal  # NaN out of range

    # Initial guesses: abacus estimates; nominal value where unknown.
    nominal = tech.cell_capacitance
    estimates = np.where(np.isfinite(bitmap.estimates), bitmap.estimates, nominal)

    # Coupling state per cell: how it loads its plate-mates.
    short_mask = np.zeros(bitmap.shape, dtype=bool)
    open_mask = bitmap.codes == 0
    over_mask = bitmap.codes == bitmap.scan.num_steps
    if verdicts is not None:
        flat = np.vectorize(lambda v: v is CellVerdict.SHORT)(verdicts)
        short_mask = flat & open_mask
        open_mask = open_mask & ~short_mask
    estimates = np.where(open_mask, 0.0, estimates)
    estimates = np.where(over_mask, bitmap.abacus.range_ceiling, estimates)

    cpp = tech.plate_parasitic(array.macro_rows * array.macro_cols)

    for _ in range(iterations):
        new = estimates.copy()
        for macro in array.macros():
            rows = slice(macro.row_start, macro.row_stop)
            cols = slice(macro.col_start, macro.col_stop)
            local = estimates[rows, cols]
            l_short = short_mask[rows, cols]
            l_open = open_mask[rows, cols]

            # Per-cell contribution when acting as a same-row neighbour
            # and as an off-row load.
            nbr = np.where(l_short, cbl + cjs, _series(local, cbl + cjs))
            nbr = np.where(l_open, 0.0, nbr)
            off = np.where(l_short, cjs, _series(local, cjs))
            off = np.where(l_open, 0.0, off)

            nbr_rows = nbr.sum(axis=1, keepdims=True)
            off_total = off.sum()
            off_rows = off.sum(axis=1, keepdims=True)
            background = cpp + (nbr_rows - nbr) + (off_total - off_rows)

            x_local = x_measured[rows, cols]
            updated = np.where(
                np.isfinite(x_local), np.maximum(x_local - background, 0.0), local
            )
            # Out-of-range cells keep their coupling-state values.
            updated = np.where(l_open, 0.0, updated)
            updated = np.where(
                over_mask[rows, cols], bitmap.abacus.range_ceiling, updated
            )
            new[rows, cols] = updated
        estimates = new

    # Report NaN where the cell itself was undecodable (matching the
    # plain bitmap semantics); the compensated values elsewhere.
    out = np.where(np.isfinite(bitmap.estimates), estimates, np.nan)
    return out
