"""Resilience subsystem: degrade gracefully, retry deterministically, resume.

The production-scale north star (ROADMAP) means scans that take hours
and wafer runs that take days; at that scale solver blow-ups, worker
deaths and interrupts are routine, not exceptional.  This package turns
each of them from "lose the run" into data:

- :mod:`~repro.resilience.faults` — deterministic fault injection
  (:class:`FaultPlan` / :func:`inject` / :func:`fault_point`) so chaos
  tests can make any layer fail at a chosen cell, macro or die;
- :mod:`~repro.resilience.quality` — :class:`CellQuality` flags
  (GOOD/DEGRADED/FAILED) riding alongside the scan planes;
- :mod:`~repro.resilience.retry` — :class:`RetryPolicy` with bounded
  attempts and seeded exponential backoff + jitter;
- :mod:`~repro.resilience.supervisor` — :class:`SupervisedPool`, the
  retry/timeout/respawn process pool behind ``ArrayScanner.scan(jobs=N)``;
- :mod:`~repro.resilience.checkpoint` — :class:`Checkpointer` /
  checkpoint files under the run ledger powering ``--resume``.
"""

from repro.resilience.checkpoint import (
    Checkpointer,
    ScanCheckpoint,
    list_checkpoints,
    load_checkpoint,
    resume_fingerprint,
)
from repro.resilience.faults import (
    Fault,
    FaultPlan,
    active_fault_plan,
    fault_point,
    inject,
    install_plan,
)
from repro.resilience.quality import (
    QUALITY_DTYPE,
    CellQuality,
    quality_counts,
    quality_plane,
    worst_quality,
)
from repro.resilience.retry import DEFAULT_RETRY_POLICY, NO_RETRY, RetryPolicy
from repro.resilience.supervisor import SupervisedPool, TaskFailure

__all__ = [
    "Fault",
    "FaultPlan",
    "active_fault_plan",
    "fault_point",
    "inject",
    "install_plan",
    "CellQuality",
    "QUALITY_DTYPE",
    "quality_plane",
    "quality_counts",
    "worst_quality",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "NO_RETRY",
    "SupervisedPool",
    "TaskFailure",
    "Checkpointer",
    "ScanCheckpoint",
    "load_checkpoint",
    "list_checkpoints",
    "resume_fingerprint",
]
