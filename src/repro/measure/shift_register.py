"""Shift register controlling the programmable current reference.

The paper's I_REFP is "designed to get a numerical linear ramp of current
with 20 steps controlled by a shift register" [3]; when OUT flips, "the
stored value in the shift register ... is then extracted ... and gives a
digital image of the capacitor's value".

This is a behavioural model of that register: a thermometer-coded chain
of flip-flops.  Each test clock shifts a '1' in, enabling one more
current-source leg.  Freezing on the OUT flip captures the code.
"""

from __future__ import annotations

from repro.errors import MeasurementError


class ShiftRegister:
    """Thermometer-coded shift register of ``length`` stages.

    >>> sr = ShiftRegister(20)
    >>> sr.clock(); sr.clock(); sr.clock()
    >>> sr.count
    3
    >>> sr.bits[:5]
    [True, True, True, False, False]
    """

    def __init__(self, length: int = 20) -> None:
        if length < 1:
            raise MeasurementError(f"shift register length must be >= 1, got {length}")
        self.length = length
        self._bits = [False] * length
        self._frozen = False

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------

    def clock(self) -> None:
        """Shift one '1' in (enable the next current leg).

        Clocking a frozen or full register is a no-op for fullness but an
        error when frozen — the controller must stop the test clock once
        OUT has flipped.
        """
        if self._frozen:
            raise MeasurementError("register is frozen; extract the code instead")
        if self.count < self.length:
            self._bits[self.count] = True

    def freeze(self) -> None:
        """Capture the current contents (called on the OUT flip)."""
        self._frozen = True

    def reset(self) -> None:
        """Clear all stages and unfreeze."""
        self._bits = [False] * self.length
        self._frozen = False

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    @property
    def bits(self) -> list[bool]:
        """Copy of the thermometer-coded register contents."""
        return list(self._bits)

    @property
    def count(self) -> int:
        """Number of enabled stages (the current step index)."""
        return sum(self._bits)

    @property
    def frozen(self) -> bool:
        """True once :meth:`freeze` has been called."""
        return self._frozen

    def is_thermometer(self) -> bool:
        """Sanity invariant: a valid state is ones followed by zeros."""
        seen_zero = False
        for bit in self._bits:
            if not bit:
                seen_zero = True
            elif seen_zero:
                return False
        return True

    def extract_code(self) -> int:
        """The measurement code captured at the flip.

        The code convention is "completed steps with OUT still low":
        the register holds ``k`` ones when OUT flipped during step ``k``,
        so the code is ``k − 1`` (clamped at 0); a register that was
        never frozen because OUT never flipped yields the full scale.
        """
        if not self.is_thermometer():
            raise MeasurementError(f"corrupted register state {self._bits}")
        if not self._frozen:
            return self.length
        return max(0, self.count - 1)
