"""On-die golden reference cells: detecting and correcting C_REF drift.

Experiment E8 shows that a drifted reference capacitor is invisible in a
single analog bitmap — it rescales every code the same way a process
shift would.  The standard DFT countermeasure is a **reference bank**:
a few array positions carry precision capacitors (MIM/poly, ±1 %
tolerance, temperature-stable) instead of DRAM cells.  Their codes are
known in advance; any systematic deviation measures the *instrument's*
gain error, and the abacus can be rescaled on the spot.

Gain algebra: with the calibrated total reference ``C_REFT`` drifted to
``g·C_REFT``, the charge share yields ``V = VDD·X/(X + g·C_REFT)``, so
the apparent plate capacitance decodes as ``X_app = X/g``.  Hence

- drift estimate from a reference of true plate load ``X_true``:
  ``g = X_true / X_app``,
- abacus correction: every bin edge ``c`` maps to
  ``g·(c + bg) − bg`` where ``bg`` is the macro background.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.calibration.abacus import Abacus
from repro.calibration.design import nominal_background
from repro.edram.array import EDRAMArray
from repro.errors import CalibrationError
from repro.measure.scan import ScanResult
from repro.units import fF


class InstrumentStatus(enum.Enum):
    """Verdict of a reference-bank check."""

    OK = "ok"
    GAIN_DRIFT = "gain_drift"
    FAULTY = "faulty"  # references out of range: structure is broken

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class InstrumentVerdict:
    """Outcome of evaluating the reference bank against a scan.

    ``gain`` is the estimated C_REF drift factor (1.0 = nominal);
    ``corrected_abacus`` is set when a correctable drift was found.
    """

    status: InstrumentStatus
    gain: float
    expected_code: int
    observed_codes: tuple[int, ...]
    corrected_abacus: Abacus | None = None


class ReferenceBank:
    """Precision reference capacitors embedded in the array.

    One designated cell per macro tile (its local (0, 0) corner by
    convention) is replaced by a precision capacitor of ``value``.
    Those positions are excluded from diagnosis (they are not DRAM
    cells) and polled by :class:`InstrumentCheck`.

    Parameters
    ----------
    array:
        The array to instrument (cells are overwritten in place).
    value:
        Reference capacitance, farads.  Mid-range maximizes drift
        sensitivity.
    tolerance:
        Relative fabrication tolerance of the precision capacitor.
    """

    def __init__(
        self,
        array: EDRAMArray,
        value: float = 30.0 * fF,
        tolerance: float = 0.01,
        seed: int = 0,
    ) -> None:
        if value <= 0:
            raise CalibrationError("reference value must be positive")
        if not 0 <= tolerance < 0.2:
            raise CalibrationError("tolerance must be in [0, 0.2)")
        self.array = array
        self.value = value
        self.tolerance = tolerance
        rng = np.random.default_rng(seed)
        self.positions: list[tuple[int, int]] = []
        for macro in array.macros():
            address = macro.global_address(0, 0)
            actual = value * (1.0 + rng.normal(0.0, tolerance / 3.0))
            array.cell(address.row, address.col).capacitance = actual
            self.positions.append((address.row, address.col))

    def mask(self) -> np.ndarray:
        """Boolean mask of reference positions (to exclude from diagnosis)."""
        out = np.zeros((self.array.rows, self.array.cols), dtype=bool)
        for row, col in self.positions:
            out[row, col] = True
        return out


class InstrumentCheck:
    """Evaluate a scan's reference codes against expectation.

    Parameters
    ----------
    abacus:
        The calibration in use.
    bank:
        The reference bank of the scanned array.
    rows, macro_cols, bitline_rows:
        Macro geometry (for the background term of the gain algebra).
    code_tolerance:
        Mean reference-code deviation accepted as healthy, codes.
    """

    def __init__(
        self,
        abacus: Abacus,
        bank: ReferenceBank,
        rows: int,
        macro_cols: int,
        bitline_rows: int | None = None,
        code_tolerance: float = 1.0,
    ) -> None:
        if code_tolerance <= 0:
            raise CalibrationError("code_tolerance must be positive")
        self.abacus = abacus
        self.bank = bank
        self.background = nominal_background(
            abacus.structure.tech, rows, macro_cols, bitline_rows
        )
        self.code_tolerance = code_tolerance

    def evaluate(self, scan: ScanResult) -> InstrumentVerdict:
        """Check one scan; estimate and correct gain drift if present."""
        observed = tuple(
            int(scan.codes[row, col]) for row, col in self.bank.positions
        )
        expected = self.abacus.code_for_capacitance(self.bank.value)
        in_range = [c for c in observed if 0 < c < self.abacus.num_steps]
        if len(in_range) < max(1, len(observed) // 2):
            return InstrumentVerdict(
                status=InstrumentStatus.FAULTY,
                gain=float("nan"),
                expected_code=expected,
                observed_codes=observed,
            )
        deviation = float(np.mean(in_range)) - expected
        if abs(deviation) <= self.code_tolerance:
            return InstrumentVerdict(
                status=InstrumentStatus.OK,
                gain=1.0,
                expected_code=expected,
                observed_codes=observed,
            )
        # Gain estimate: apparent plate load vs true plate load.
        apparent = [self.abacus.estimate(code) for code in in_range]
        x_app = float(np.mean([a for a in apparent if a is not None])) + self.background
        x_true = self.bank.value + self.background
        gain = x_true / x_app
        corrected_edges = gain * (self.abacus.edges + self.background) - self.background
        corrected = Abacus(
            self.abacus.structure, np.maximum.accumulate(np.maximum(corrected_edges, 0.0))
        )
        return InstrumentVerdict(
            status=InstrumentStatus.GAIN_DRIFT,
            gain=gain,
            expected_code=expected,
            observed_codes=observed,
            corrected_abacus=corrected,
        )
