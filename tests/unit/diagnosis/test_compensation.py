"""Crosstalk-compensated joint estimation."""

import numpy as np
import pytest

from repro.bitmap.analog import AnalogBitmap
from repro.calibration.abacus import Abacus
from repro.calibration.design import design_structure
from repro.calibration.window import SpecificationWindow
from repro.diagnosis.classifier import CellClassifier
from repro.diagnosis.compensation import compensate_estimates
from repro.edram.array import EDRAMArray
from repro.edram.defects import CellDefect, DefectKind
from repro.errors import DiagnosisError
from repro.measure.scan import ArrayScanner
from repro.units import fF, to_fF


@pytest.fixture(scope="module")
def calibrated(tech):
    structure = design_structure(tech, 8, 2, bitline_rows=64)
    abacus = Abacus.analytic(structure, 8, 2, bitline_rows=64)
    return structure, abacus


def _bitmap(tech, calibrated, defect=None, where=(3, 1)):
    structure, abacus = calibrated
    array = EDRAMArray(64, 4, tech=tech, macro_cols=2, macro_rows=8)
    if defect is not None:
        array.cell(*where).apply_defect(defect)
    bitmap = AnalogBitmap(ArrayScanner(array, structure).scan(), abacus)
    return array, bitmap


def test_open_neighbour_bias_removed(tech, calibrated):
    array, bitmap = _bitmap(tech, calibrated, CellDefect(DefectKind.OPEN))
    true = array.cell(3, 0).capacitance
    naive_bias = abs(bitmap.estimates[3, 0] - true)
    compensated = compensate_estimates(bitmap, array)
    joint_bias = abs(compensated[3, 0] - true)
    assert naive_bias > 10 * fF  # the documented crosstalk
    assert joint_bias < 1.5 * fF
    assert joint_bias < naive_bias / 5


def test_short_neighbour_bias_removed(tech, calibrated):
    structure, abacus = calibrated
    array, bitmap = _bitmap(tech, calibrated, CellDefect(DefectKind.SHORT))
    window = SpecificationWindow.from_capacitance(abacus, 24 * fF, 36 * fF)
    verdicts = CellClassifier(bitmap, window, macro_cols=2).classify_all()
    compensated = compensate_estimates(bitmap, array, verdicts)
    true = array.cell(3, 0).capacitance
    naive_bias = abs(bitmap.estimates[3, 0] - true)
    joint_bias = abs(compensated[3, 0] - true)
    assert joint_bias < naive_bias


def test_healthy_cells_barely_move(tech, calibrated):
    array, bitmap = _bitmap(tech, calibrated)
    compensated = compensate_estimates(bitmap, array)
    finite = np.isfinite(bitmap.estimates)
    shift = np.abs(compensated[finite] - bitmap.estimates[finite])
    assert float(shift.max()) < 1.0 * fF


def test_out_of_range_cells_stay_nan(tech, calibrated):
    array, bitmap = _bitmap(tech, calibrated, CellDefect(DefectKind.OPEN))
    compensated = compensate_estimates(bitmap, array)
    assert np.isnan(compensated[3, 1])


def test_convergence_is_fast(tech, calibrated):
    array, bitmap = _bitmap(tech, calibrated, CellDefect(DefectKind.OPEN))
    two = compensate_estimates(bitmap, array, iterations=2)
    six = compensate_estimates(bitmap, array, iterations=6)
    finite = np.isfinite(two)
    assert np.allclose(two[finite], six[finite], atol=0.05 * fF)


def test_validation(tech, calibrated):
    array, bitmap = _bitmap(tech, calibrated)
    with pytest.raises(DiagnosisError):
        compensate_estimates(bitmap, array, iterations=0)
    other = EDRAMArray(8, 2, tech=tech)
    with pytest.raises(DiagnosisError):
        compensate_estimates(bitmap, other)
