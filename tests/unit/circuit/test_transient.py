"""Transient solver behaviour."""

import math

import numpy as np
import pytest

from repro.circuit.elements import Capacitor, CurrentSource, Resistor, Switch, VoltageSource
from repro.circuit.mosfet import Mosfet
from repro.circuit.netlist import Circuit
from repro.circuit.stimulus import PiecewiseConstant, Pulse, Staircase, Step
from repro.circuit.transient import TransientOptions, transient_analysis
from repro.errors import ReproError
from repro.units import fF, ns, um


def _rc(tau_r=10e3, tau_c=100 * fF):
    ckt = Circuit()
    ckt.add(VoltageSource("V", "in", "0", Step(1 * ns, 0.0, 1.0)))
    ckt.add(Resistor("R", "in", "out", tau_r))
    ckt.add(Capacitor("C", "out", "0", tau_c))
    return ckt


def test_rc_final_value():
    wf = transient_analysis(_rc(), 10 * ns, options=TransientOptions(dt=20e-12))
    assert wf.final("out") == pytest.approx(1.0, abs=0.01)


def test_rc_exponential_shape():
    wf = transient_analysis(_rc(), 6 * ns, options=TransientOptions(dt=10e-12))
    for k in (1.0, 2.0):
        expected = 1.0 - math.exp(-k)
        measured = wf.value_at("out", 1e-9 + k * 1e-9)
        assert measured == pytest.approx(expected, abs=0.02)


def test_breakpoints_are_hit_exactly():
    ckt = Circuit()
    ckt.add(VoltageSource("V", "a", "0", Pulse(1.05e-9, 2.35e-9, 0.0, 1.0)))
    ckt.add(Resistor("R", "a", "0", 1e3))
    # Deliberately coarse dt that does not divide the pulse edges.
    wf = transient_analysis(ckt, 4e-9, options=TransientOptions(dt=0.4e-9))
    assert 1.05e-9 in wf.time
    assert 2.35e-9 in wf.time
    assert wf.value_at("a", 1.6e-9) == pytest.approx(1.0)


def test_staircase_current_integrates_on_capacitor():
    # I = k * 1 uA into 1 pF: slope should grow stepwise.
    ckt = Circuit()
    ckt.add(
        CurrentSource("I", "0", "x", Staircase(0.0, 1e-9, 1e-6, 3))
    )
    ckt.add(Capacitor("C", "x", "0", 1e-12))
    wf = transient_analysis(
        ckt, 3e-9, options=TransientOptions(dt=10e-12, use_ic=True)
    )
    # After 1 ns at 1 uA: V = I*t/C = 1 mV.
    assert wf.value_at("x", 1e-9) == pytest.approx(1e-3, rel=0.05)
    # The second ns at 2 uA adds 2 mV more.
    assert wf.value_at("x", 2e-9) == pytest.approx(3e-3, rel=0.05)


def test_use_ic_skips_dc_solve():
    ckt = Circuit()
    ckt.add(Resistor("R", "a", "0", 1e6))
    ckt.add(Capacitor("C", "a", "0", 1e-12))  # tau = 1 us >> sim
    wf = transient_analysis(
        ckt, 1e-9, options=TransientOptions(dt=50e-12, use_ic=True, ic={"a": 1.5})
    )
    assert wf["a"][0] == pytest.approx(1.5)
    assert wf.final("a") == pytest.approx(1.5, rel=0.01)


def test_capacitor_ic_attribute_applied():
    ckt = Circuit()
    ckt.add(Resistor("R", "a", "0", 1e9))
    ckt.add(Capacitor("C", "a", "0", 1e-12, ic=0.7))
    wf = transient_analysis(ckt, 1e-9, options=TransientOptions(dt=50e-12, use_ic=True))
    assert wf["a"][0] == pytest.approx(0.7)


def test_record_subset_of_nodes():
    wf = transient_analysis(
        _rc(), 2e-9, options=TransientOptions(dt=50e-12, record=["out"])
    )
    assert "out" in wf
    assert "in" not in wf


def test_invalid_time_range_rejected():
    with pytest.raises(ReproError):
        transient_analysis(_rc(), t_stop=0.0)


def test_invalid_options_rejected():
    with pytest.raises(ReproError):
        TransientOptions(dt=-1.0)
    with pytest.raises(ReproError):
        TransientOptions(integrator="euler-forward")


def test_switch_toggling_transfers_charge():
    """Switched-capacitor charge transfer through an ideal switch."""
    ckt = Circuit()
    ckt.add(VoltageSource("V", "src", "0", 1.0))
    ckt.add(Switch("S1", "src", "a", control=PiecewiseConstant([2e-9], [1.0, 0.0]), r_on=100.0))
    ckt.add(Capacitor("CA", "a", "0", 100 * fF))
    ckt.add(Switch("S2", "a", "b", control=PiecewiseConstant([2e-9], [0.0, 1.0]), r_on=100.0))
    ckt.add(Capacitor("CB", "b", "0", 100 * fF))
    wf = transient_analysis(
        ckt, 6e-9, options=TransientOptions(dt=20e-12, use_ic=True)
    )
    # Phase 1: CA charges to 1 V. Phase 2: shares with CB -> 0.5 V each.
    assert wf.value_at("a", 1.9e-9) == pytest.approx(1.0, abs=0.01)
    assert wf.final("b") == pytest.approx(0.5, abs=0.01)
    assert wf.final("a") == pytest.approx(0.5, abs=0.01)


def test_cmos_ring_inverter_switches(tech):
    """An inverter driven by a step must flip its output."""
    ckt = Circuit()
    ckt.add(VoltageSource("VDD", "vdd", "0", 1.8))
    ckt.add(VoltageSource("VIN", "in", "0", Step(1e-9, 0.0, 1.8)))
    ckt.add(Mosfet("MP", "out", "in", "vdd", tech.pmos, w=1.68 * um, l=0.18 * um, bulk_voltage=1.8))
    ckt.add(Mosfet("MN", "out", "in", "0", tech.nmos, w=0.42 * um, l=0.18 * um))
    ckt.add(Capacitor("CL", "out", "0", 5 * fF))
    wf = transient_analysis(ckt, 3e-9, options=TransientOptions(dt=10e-12))
    assert wf.value_at("out", 0.9e-9) > 1.7
    assert wf.final("out") < 0.05
    crossings = wf.crossings("out", 0.9, "fall")
    assert len(crossings) == 1
    assert crossings[0] > 1e-9


def test_energy_conservation_lossless_cap_divider():
    """Charge is conserved when two capacitors share through a switch."""
    ckt = Circuit()
    ckt.add(Capacitor("C1", "a", "0", 60 * fF, ic=1.8))
    ckt.add(Capacitor("C2", "b", "0", 30 * fF, ic=0.0))
    ckt.add(Switch("S", "a", "b", control=Step(0.5e-9), r_on=1e3))
    wf = transient_analysis(ckt, 5e-9, options=TransientOptions(dt=10e-12, use_ic=True))
    v_final = 1.8 * 60 / 90
    assert wf.final("a") == pytest.approx(v_final, rel=0.01)
    assert wf.final("b") == pytest.approx(v_final, rel=0.01)
