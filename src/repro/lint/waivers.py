"""File-based lint waivers with expiry dates.

A waiver file is a JSON list of objects::

    [
      {"code": "CCY001", "location": "parallel.py",
       "reason": "sanctioned per-process installer",
       "expires": "2026-12-31"}
    ]

``code`` is required and must match the diagnostic's rule code exactly;
``location`` (optional) is a substring match against the diagnostic's
``location`` or ``subject``, so one entry can waive a whole file or pin
a single line.  ``reason`` is free text kept for audit.  ``expires``
(optional, ISO ``YYYY-MM-DD``) bounds the waiver's lifetime: an expired
waiver **stops suppressing** and instead surfaces as a ``WVR001
expired-waiver`` WARNING naming what it used to hide — a waiver is a
debt with a due date, never a permanent mute.

Waived diagnostics stay in the report (``waived=True``) for audit, the
same semantics as the known-defect waivers in
:meth:`~repro.lint.diagnostics.LintReport.waive_nodes`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from datetime import date
from pathlib import Path
from typing import Iterable

from repro.errors import LintError
from repro.lint.diagnostics import Diagnostic, LintReport, Severity

__all__ = ["Waiver", "load_waivers", "apply_waivers"]

#: Synthetic diagnostic code for expired waivers (not a registry rule —
#: it annotates the waiver mechanism itself, not an analyzable subject).
EXPIRED_WAIVER_CODE = "WVR001"


@dataclass(frozen=True)
class Waiver:
    """One waiver entry: which findings it suppresses, and until when."""

    code: str
    location: str = ""
    reason: str = ""
    expires: str | None = None

    def __post_init__(self) -> None:
        if not self.code:
            raise LintError("waiver entry is missing the required 'code' field")
        if self.expires is not None:
            try:
                date.fromisoformat(self.expires)
            except ValueError as exc:
                raise LintError(
                    f"waiver for {self.code}: bad expires date "
                    f"{self.expires!r} (expected YYYY-MM-DD)"
                ) from exc

    def expired(self, today: date) -> bool:
        """True once ``today`` is past the expiry date (if any)."""
        return self.expires is not None and date.fromisoformat(self.expires) < today

    def matches(self, diagnostic: Diagnostic) -> bool:
        """True when this waiver covers ``diagnostic``."""
        if diagnostic.code != self.code:
            return False
        if not self.location:
            return True
        anchor = (diagnostic.location or "") + " " + diagnostic.subject
        return self.location in anchor


def load_waivers(path: str | Path) -> list[Waiver]:
    """Parse a waiver file; raises :class:`~repro.errors.LintError`."""
    path = Path(path)
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise LintError(f"cannot read waiver file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise LintError(f"malformed waiver file {path}: {exc}") from exc
    if not isinstance(raw, list):
        raise LintError(
            f"waiver file {path} must hold a JSON list of waiver objects"
        )
    waivers = []
    for i, entry in enumerate(raw):
        if not isinstance(entry, dict):
            raise LintError(f"waiver file {path}: entry {i} is not an object")
        unknown = set(entry) - {"code", "location", "reason", "expires"}
        if unknown:
            raise LintError(
                f"waiver file {path}: entry {i} has unknown keys "
                f"{sorted(unknown)}"
            )
        waivers.append(
            Waiver(
                code=str(entry.get("code", "")),
                location=str(entry.get("location", "")),
                reason=str(entry.get("reason", "")),
                expires=entry.get("expires"),
            )
        )
    return waivers


def apply_waivers(
    report: LintReport,
    waivers: Iterable[Waiver],
    today: date | None = None,
) -> LintReport:
    """Apply ``waivers`` to ``report`` in place; returns the report.

    Live waivers mark matching unwaived diagnostics ``waived=True``.
    Expired waivers suppress nothing; each expired waiver that *would*
    have matched something (or matched nothing at all — stale either
    way) adds one ``WVR001`` WARNING so the debt stays visible.
    """
    today = today if today is not None else date.today()
    waivers = list(waivers)
    expired_hits: dict[Waiver, int] = {}
    fresh: list[Diagnostic] = []
    for diagnostic in report.diagnostics:
        if diagnostic.waived:
            fresh.append(diagnostic)
            continue
        matched = next(
            (w for w in waivers if w.matches(diagnostic)), None
        )
        if matched is None:
            fresh.append(diagnostic)
        elif matched.expired(today):
            expired_hits[matched] = expired_hits.get(matched, 0) + 1
            fresh.append(diagnostic)
        else:
            fresh.append(replace(diagnostic, waived=True))
    report.diagnostics = fresh
    for waiver in waivers:
        if not waiver.expired(today):
            continue
        hits = expired_hits.get(waiver, 0)
        detail = (
            f"still matching {hits} finding(s)" if hits
            else "matching nothing (stale entry)"
        )
        reason = f" (reason was: {waiver.reason})" if waiver.reason else ""
        report.add(
            Diagnostic(
                code=EXPIRED_WAIVER_CODE,
                slug="expired-waiver",
                severity=Severity.WARNING,
                message=(
                    f"waiver for {waiver.code} expired {waiver.expires}, "
                    f"{detail}; fix the finding or renew the date{reason}"
                ),
                subject=waiver.location or waiver.code,
            )
        )
    return report
