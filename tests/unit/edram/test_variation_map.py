"""Spatial capacitance map generators."""

import numpy as np
import pytest

from repro.edram.variation_map import (
    cluster_defect_map,
    compose_maps,
    edge_rolloff_map,
    linear_tilt_map,
    mismatch_map,
    radial_map,
    uniform_map,
)
from repro.errors import ArrayConfigError
from repro.units import fF


def test_uniform_map():
    m = uniform_map((4, 6), 30 * fF)
    assert m.shape == (4, 6)
    assert np.all(m == 30 * fF)


def test_uniform_rejects_nonpositive():
    with pytest.raises(ArrayConfigError):
        uniform_map((2, 2), 0.0)


def test_mismatch_statistics_and_determinism():
    a = mismatch_map((50, 50), 1 * fF, seed=7)
    b = mismatch_map((50, 50), 1 * fF, seed=7)
    assert np.array_equal(a, b)
    assert abs(a.mean()) < 0.1 * fF
    assert a.std() == pytest.approx(1 * fF, rel=0.1)


def test_mismatch_rejects_negative_sigma():
    with pytest.raises(ArrayConfigError):
        mismatch_map((2, 2), -1.0)


def test_linear_tilt_is_zero_mean():
    m = linear_tilt_map((8, 8), row_slope=0.1 * fF, col_slope=-0.05 * fF)
    assert abs(m.mean()) < 1e-25
    assert m[7, 0] - m[0, 0] == pytest.approx(7 * 0.1 * fF)
    assert m[0, 7] - m[0, 0] == pytest.approx(-7 * 0.05 * fF)


def test_radial_dome_peaks_at_centre():
    m = radial_map((9, 9), amplitude=2 * fF)
    assert m[4, 4] == m.max()
    assert m[0, 0] == pytest.approx(m[8, 8])
    assert m[4, 4] - m[0, 0] == pytest.approx(2 * fF)


def test_radial_bowl_with_negative_amplitude():
    m = radial_map((9, 9), amplitude=-2 * fF)
    assert m[4, 4] == m.min()


def test_edge_rolloff_hits_border_only():
    m = edge_rolloff_map((10, 10), depth=3 * fF, width=2)
    assert m[0, 5] == pytest.approx(-3 * fF)
    assert m[1, 5] == pytest.approx(-1.5 * fF)
    assert m[5, 5] == 0.0


def test_edge_rolloff_validation():
    with pytest.raises(ArrayConfigError):
        edge_rolloff_map((4, 4), depth=-1.0)
    with pytest.raises(ArrayConfigError):
        edge_rolloff_map((4, 4), depth=1.0, width=0)


def test_cluster_defect_dip():
    m = cluster_defect_map((10, 10), center=(5, 5), radius=1.5, depth=4 * fF)
    assert m[5, 5] == pytest.approx(-4 * fF)
    assert abs(m[0, 0]) < 0.1 * fF


def test_cluster_requires_positive_radius():
    with pytest.raises(ArrayConfigError):
        cluster_defect_map((4, 4), (1, 1), radius=0.0, depth=1.0)


def test_compose_clamps_at_floor():
    base = uniform_map((4, 4), 5 * fF)
    dip = cluster_defect_map((4, 4), (2, 2), radius=1.0, depth=50 * fF)
    combined = compose_maps(base, dip)
    assert combined.min() >= 1 * fF
    assert combined[0, 0] == pytest.approx(5 * fF, rel=0.01)


def test_compose_rejects_shape_mismatch():
    with pytest.raises(ArrayConfigError):
        compose_maps(uniform_map((4, 4), 1 * fF), np.zeros((2, 2)))


def test_compose_does_not_mutate_base():
    base = uniform_map((3, 3), 30 * fF)
    compose_maps(base, mismatch_map((3, 3), 1 * fF))
    assert np.all(base == 30 * fF)


def test_shape_validation_everywhere():
    with pytest.raises(ArrayConfigError):
        uniform_map((0, 4), 1.0)
