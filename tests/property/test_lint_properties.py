"""Property test: the ERC gate predicts solvable MNA systems.

The lint subsystem's core promise is that a netlist passing the
structural checks (no dangling nodes, a DC path to ground everywhere, no
voltage-source loops) never blows up the DC operating-point solve with a
singular matrix.  Randomized linear circuits exercise that promise well
beyond the hand-written fixtures.
"""

import numpy as np
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.circuit.dc import dc_operating_point
from repro.circuit.elements import Capacitor, Resistor, VoltageSource
from repro.circuit.netlist import Circuit
from repro.lint import lint_circuit
from repro.units import fF

_NODES = ("0", "n1", "n2", "n3", "n4", "n5")

# Random element soup: kind, endpoint indices, value index.
elements_strategy = st.lists(
    st.tuples(
        st.sampled_from(("R", "C", "V")),
        st.integers(min_value=0, max_value=len(_NODES) - 1),
        st.integers(min_value=0, max_value=len(_NODES) - 1),
        st.floats(min_value=0.1, max_value=10.0),
    ),
    min_size=1,
    max_size=12,
)


def _build(elements):
    ckt = Circuit("random")
    for k, (kind, ia, ib, scale) in enumerate(elements):
        if ia == ib:
            continue
        a, b = _NODES[ia], _NODES[ib]
        if kind == "R":
            ckt.add(Resistor(f"R{k}", a, b, scale * 1e3))
        elif kind == "C":
            ckt.add(Capacitor(f"C{k}", a, b, scale * 10 * fF))
        else:
            ckt.add(VoltageSource(f"V{k}", a, b, scale))
    return ckt


@given(elements=elements_strategy)
@settings(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)
def test_erc_clean_circuits_have_nonsingular_operating_point(elements):
    ckt = _build(elements)
    assume(len(list(iter(ckt))) > 0)
    report = lint_circuit(ckt, only=("ERC001", "ERC002", "ERC005"))
    assume(report.ok and len(report) == 0)
    # The ERC gate passed: the DC solve must neither raise
    # SingularCircuitError nor produce non-finite voltages.
    op = dc_operating_point(ckt)
    assert all(np.isfinite(v) for v in op.values())


@given(elements=elements_strategy)
@settings(max_examples=150, deadline=None)
def test_erc_verdict_is_deterministic(elements):
    ckt = _build(elements)
    first = lint_circuit(ckt)
    second = lint_circuit(ckt)
    assert [d.to_dict() for d in first] == [d.to_dict() for d in second]
