"""Orchestrator supervision: stale leases must never condemn fresh workers.

The wedge-kill channel reads lease files, and a fresh worker needs a
beat of interpreter startup before it writes its own — so any lease
surviving from a previous generation or a previous fleet in the same
root (the default ``.repro-fleet``) must be ignored, or every respawn
is SIGKILLed on sight and recovery can never succeed.
"""

import time

from repro.fleet import FleetOrchestrator
from repro.fleet.lease import ShardLease, write_lease

WAFER = {"diameter_dies": 3, "seed": 11}


def test_preexisting_stale_lease_does_not_kill_fresh_worker(tmp_path):
    root = tmp_path / "fleet"
    # An hour-stale lease from some dead prior process: under the old
    # unguarded check its age alone exceeded any heartbeat timeout, so
    # the first poll killed the brand-new worker before it could write
    # a lease of its own — on every retry.
    stale = ShardLease(
        shard_id=0, start=0, stop=9, pid=1, generation=0,
        heartbeat=time.time() - 3600.0,
    )
    write_lease(root / "leases" / "s00.json", stale)

    report = FleetOrchestrator(
        root, wafer=WAFER, shards=1, poll_seconds=0.02,
    ).run()
    assert report.state == "healthy"
    assert report.respawns == 0
    assert report.shards[0].exitcode == 0


def test_rerun_in_same_root_survives_previous_leases(tmp_path):
    root = tmp_path / "fleet"
    orchestrator = FleetOrchestrator(
        root, wafer=WAFER, shards=1, poll_seconds=0.02,
    )
    assert orchestrator.run().state == "healthy"
    # The first run's lease (state done, ageing heartbeat) is still on
    # disk; a second fleet in the same root must start cleanly.
    assert orchestrator.run().state == "healthy"
