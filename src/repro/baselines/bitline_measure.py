"""Naive bitline-side capacitance measurement — the negative baseline.

The paper's opening design decision: "the proposed measurement structure
is connected to the plate node of the macro-cell ... in order to delete
capacitance noise measurement due to the parasitic bit-line capacitance."
This module implements what happens if you *don't*: charge the cell,
share it onto its own (discharged) bitline, and convert the resulting
bitline voltage with the same NMOS-gate + current-ramp converter.

Why it loses (all three effects quantified by experiment E1):

1. **Compression.** The full-height bitline capacitance (tens to
   hundreds of fF — it cannot be segmented the way the plate can) sits
   directly in parallel with the signal, pushing most of the 10–55 fF
   transfer range *below the REF threshold*: the converter runs in
   subthreshold, where step currents are too small to slew the drain
   within a current step.  :attr:`achievable_depth` applies that slew
   constraint (``i_min``) and collapses accordingly.
2. **Calibration noise.** The conversion now divides by ``C_m + C_BL``
   with C_BL a *parasitic* known only to ±10 % — a first-order
   capacitance error (:meth:`capacitance_error_from_cbl`).  On the plate
   node, C_BL enters only through a second-order series term.
3. **Threshold sensitivity.** Subthreshold conversion turns mV of
   REF-V_TH mismatch into tens of percent of current error
   (:meth:`capacitance_error_from_vth`).
"""

from __future__ import annotations

import numpy as np

from repro.circuit.mosfet import Mosfet
from repro.edram.array import EDRAMArray
from repro.edram.defects import DefectKind
from repro.errors import MeasurementError
from repro.measure.sense import InverterDesign, SenseChain
from repro.units import fF, pF, uA


class BitlineMeasurement:
    """Charge-share a cell onto its bitline and current-ramp convert.

    The converter reuses the paper's conversion idea but samples the
    *bitline* instead of the isolated plate.  Its sampling capacitance
    C_REF' is chosen to maximise the slew-constrained depth, so the
    comparison against the plate-node structure is as fair as physics
    allows.

    Parameters
    ----------
    array:
        The array under test (supplies C_BL and the technology card).
    num_steps:
        Converter depth to attempt (20, like the paper's).
    c_lo, c_hi:
        Capacitance range of interest, farads.
    i_min:
        Smallest usable DAC step, amperes — the current needed to slew
        the drain node past the sense threshold within one step time
        (≈ C_drain·V_DD/2 / t_step ≈ a few µA).
    """

    def __init__(
        self,
        array: EDRAMArray,
        num_steps: int = 20,
        c_lo: float = 10.0 * fF,
        c_hi: float = 55.0 * fF,
        i_min: float = 1.0 * uA,
    ) -> None:
        if i_min <= 0:
            raise MeasurementError(f"i_min must be positive, got {i_min}")
        self.array = array
        self.num_steps = num_steps
        self.c_lo = c_lo
        self.c_hi = c_hi
        self.i_min = i_min
        tech = array.tech
        self._threshold = SenseChain(tech, InverterDesign()).threshold
        self._probe = Mosfet("BLPROBE", "d", "g", "s", tech.nmos, w=4e-6, l=1e-6)
        self._creft = self._best_creft()
        v_hi = self._vbl(self.c_hi)
        i_hi = self._probe.ids(self._threshold, v_hi, 0.0)
        self._delta_i = max(i_hi / num_steps, i_min)

    # ------------------------------------------------------------------
    # Transfer curve
    # ------------------------------------------------------------------

    @property
    def c_bitline(self) -> float:
        """Full-height bitline parasitic the signal shares into, farads."""
        return self.array.bitline_capacitance()

    def _vbl(self, cm: float, creft: float | None = None, c_bl: float | None = None) -> float:
        """Converter input voltage for a cell of capacitance ``cm``.

        ``V = VDD · C_m / (C_m + C_BL + C_REF')``.
        """
        creft = self._creft if creft is None else creft
        c_bl = self.c_bitline if c_bl is None else c_bl
        return self.array.tech.vdd * cm / (cm + c_bl + creft)

    def _depth(self, creft: float) -> float:
        """Slew-constrained converter depth for a candidate C_REF'.

        ``I(c_hi) / max(I(c_lo), i_min)`` — steps below ``i_min`` cannot
        flip the sense chain within a step time and do not count.
        """
        i_lo = self._probe.ids(self._threshold, self._vbl(self.c_lo, creft), 0.0)
        i_hi = self._probe.ids(self._threshold, self._vbl(self.c_hi, creft), 0.0)
        return i_hi / max(i_lo, self.i_min)

    def _best_creft(self) -> float:
        """C_REF' maximising slew-constrained depth on the bitline node."""
        grid = np.geomspace(0.1 * fF, 10.0 * pF, 100)
        depths = [self._depth(float(c)) for c in grid]
        return float(grid[int(np.argmax(depths))])

    @property
    def achievable_depth(self) -> float:
        """Best slew-constrained converter depth on the bitline (steps)."""
        return self._depth(self._creft)

    # ------------------------------------------------------------------
    # Error sensitivities (the paper's "capacitance noise")
    # ------------------------------------------------------------------

    def capacitance_error_from_cbl(self, cm: float, relative_cbl_error: float = 0.1) -> float:
        """Extraction error (farads) caused by C_BL mis-knowledge.

        The calibration assumes the nominal C_BL; a real column deviates
        by ``relative_cbl_error``.  The induced voltage shift is
        re-interpreted as a capacitance shift through the nominal
        transfer slope.
        """
        c_bl = self.c_bitline
        v_nominal = self._vbl(cm)
        v_actual = self._vbl(cm, c_bl=c_bl * (1.0 + relative_cbl_error))
        dv_dc = (self._vbl(cm + 0.01 * fF) - self._vbl(cm - 0.01 * fF)) / (0.02 * fF)
        return abs(v_actual - v_nominal) / dv_dc

    def capacitance_error_from_vth(self, cm: float, delta_vth: float = 0.01) -> float:
        """Extraction error (farads) caused by REF threshold mismatch.

        A ``delta_vth`` shift moves the REF sink current; the code error
        it produces is mapped back to capacitance through the nominal
        current-vs-capacitance slope at ``cm``.
        """
        v = self._vbl(cm)
        i_nominal = self._probe.ids(self._threshold, v, 0.0)
        i_shifted = self._probe.ids(self._threshold, v - delta_vth, 0.0)
        h = 0.01 * fF
        di_dc = (
            self._probe.ids(self._threshold, self._vbl(cm + h), 0.0)
            - self._probe.ids(self._threshold, self._vbl(cm - h), 0.0)
        ) / (2.0 * h)
        if di_dc <= 0:
            return float("inf")
        return abs(i_shifted - i_nominal) / di_dc

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def code_for_capacitance(self, cm: float) -> int:
        """Converter code for an ideal cell of capacitance ``cm``."""
        if cm < 0:
            raise MeasurementError(f"capacitance must be >= 0, got {cm}")
        i_sink = self._probe.ids(self._threshold, self._vbl(cm), 0.0)
        if i_sink <= 0:
            return 0
        return min(self.num_steps, int(i_sink / self._delta_i * (1 + 1e-12)))

    def measure(self, row: int, col: int) -> int:
        """Measure one cell of the array (honouring defects)."""
        cell = self.array.cell(row, col)
        if cell.has_defect(DefectKind.SHORT):
            # The shorted cell couples the V_DD/2 plate straight onto the
            # bitline: the converter sees a mid-rail level regardless of
            # capacitance.
            i_sink = self._probe.ids(self._threshold, self.array.tech.half_vdd, 0.0)
            return min(self.num_steps, int(i_sink / self._delta_i))
        return self.code_for_capacitance(cell.effective_capacitance())

    def scan(self) -> np.ndarray:
        """Measure every cell; returns the code matrix."""
        return np.array(
            [
                [self.measure(r, c) for c in range(self.array.cols)]
                for r in range(self.array.rows)
            ]
        )
