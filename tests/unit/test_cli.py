"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_design_command(capsys):
    assert main(["design", "--rows", "16", "--macro-rows", "8", "--cols", "4"]) == 0
    out = capsys.readouterr().out
    assert "C_REF" in out
    assert "DAC step" in out


def test_abacus_command(capsys):
    assert main(["abacus", "--rows", "8", "--macro-rows", "8", "--cols", "4"]) == 0
    out = capsys.readouterr().out
    assert "over range" in out
    assert "ambiguous" in out


def test_scan_command_healthy(capsys):
    assert main([
        "scan", "--rows", "8", "--cols", "4", "--macro-rows", "8", "--healthy",
    ]) == 0
    out = capsys.readouterr().out
    assert "scanned 32 cells" in out


def test_scan_command_saves(tmp_path, capsys):
    target = tmp_path / "scan.npz"
    assert main([
        "scan", "--rows", "8", "--cols", "4", "--macro-rows", "8",
        "--save", str(target),
    ]) == 0
    assert target.exists()
    from repro.io import load_scan

    loaded = load_scan(target)
    assert loaded.codes.shape == (8, 4)


def test_scan_command_trace_and_metrics(tmp_path, capsys):
    trace_path = tmp_path / "trace.jsonl"
    metrics_path = tmp_path / "metrics.jsonl"
    assert main([
        "scan", "--rows", "8", "--cols", "4", "--macro-rows", "8",
        "--trace", str(trace_path), "--metrics",
        "--metrics-out", str(metrics_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "metrics:" in out
    assert "scan.cells" in out
    assert trace_path.exists() and metrics_path.exists()

    from repro.obs import load_trace, summarize_trace

    summary = summarize_trace(load_trace(str(trace_path)))
    # The injected bridge routes at least one macro through the engine,
    # so the trace shows the full five-phase tree.
    assert summary.covers(
        "scan", "macro", "cell", "phase:discharge", "phase:charge",
        "phase:isolate", "phase:share", "phase:convert",
    )


def test_scan_command_json(capsys):
    import json

    assert main([
        "scan", "--rows", "8", "--cols", "4", "--macro-rows", "8", "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["cells"] == 32
    assert payload["geometry"]["rows"] == 8
    assert payload["stats"]["total_cells"] == 32
    assert sum(payload["code_histogram"].values()) == 32


def test_scan_command_force_engine(capsys):
    assert main([
        "scan", "--rows", "4", "--cols", "4", "--macro-rows", "4",
        "--macro-cols", "2", "--healthy", "--force-engine",
    ]) == 0
    assert "engine" in capsys.readouterr().out


def test_trace_command(tmp_path, capsys):
    trace_path = tmp_path / "trace.jsonl"
    main([
        "scan", "--rows", "8", "--cols", "4", "--macro-rows", "8", "--healthy",
        "--trace", str(trace_path),
    ])
    capsys.readouterr()
    assert main(["trace", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "scan" in out
    assert "max depth" in out


def test_trace_command_json(tmp_path, capsys):
    import json

    trace_path = tmp_path / "trace.jsonl"
    main([
        "scan", "--rows", "8", "--cols", "4", "--macro-rows", "8", "--healthy",
        "--trace", str(trace_path),
    ])
    capsys.readouterr()
    assert main(["trace", str(trace_path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["total_spans"] >= 1
    # A healthy traced scan stays on the batched-kernel fast path.
    assert {row["name"] for row in payload["spans"]} >= {"scan", "kernel"}


def test_diagnose_command_json(capsys):
    import json

    assert main([
        "diagnose", "--rows", "16", "--cols", "8", "--macro-rows", "8", "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "verdicts" in payload
    assert "repair" in payload
    assert isinstance(payload["repair"]["success"], bool)


def test_diagnose_command(capsys):
    assert main(["diagnose", "--rows", "16", "--cols", "8", "--macro-rows", "8"]) == 0
    out = capsys.readouterr().out
    assert "repair" in out
    assert "findings:" in out


def test_wafer_command(capsys):
    assert main(["wafer", "--diameter", "5"]) == 0
    out = capsys.readouterr().out
    assert "wafer mean" in out
    assert "radial profile" in out


def test_default_ledger_dir_matches_library():
    from repro.cli import _DEFAULT_LEDGER_DIR
    from repro.obs import DEFAULT_LEDGER_DIR

    assert _DEFAULT_LEDGER_DIR == DEFAULT_LEDGER_DIR


def test_scan_json_round_trip_schema(capsys):
    """The --json payload parses and carries the documented keys."""
    import json

    assert main([
        "scan", "--rows", "8", "--cols", "4", "--macro-rows", "8",
        "--healthy", "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert {
        "geometry", "cells", "num_steps", "mean_fF", "sigma_fF",
        "code_histogram", "stats", "metrics", "trace", "saved",
        "run_id", "ledger",
    } <= set(payload)
    assert payload["run_id"] is None  # not recorded
    assert payload["geometry"]["macros"] == 2  # (8/8 rows) x (4/2 cols)
    assert payload["stats"]["wall_seconds"] > 0
    assert isinstance(payload["mean_fF"], float)


def test_diagnose_json_round_trip_schema(capsys):
    import json

    assert main([
        "diagnose", "--rows", "16", "--cols", "8", "--macro-rows", "8", "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert {
        "digital_fails", "verdicts", "findings", "process", "repair",
        "scan_stats", "run_id", "ledger",
    } <= set(payload)
    assert isinstance(payload["digital_fails"], int)
    assert sum(payload["verdicts"].values()) == 16 * 8


def _record_scan(tmp_path, seed, nominal=None, extra=()):
    args = [
        "scan", "--rows", "16", "--cols", "8", "--macro-rows", "8",
        "--healthy", "--seed", str(seed),
        "--record", str(tmp_path / "runs"), *extra,
    ]
    if nominal is not None:
        args += ["--nominal-ff", str(nominal)]
    return main(args)


def test_scan_record_and_runs_verbs(tmp_path, capsys):
    import json

    assert _record_scan(tmp_path, seed=1, extra=("--label", "base")) == 0
    assert _record_scan(tmp_path, seed=2) == 0
    out = capsys.readouterr().out
    assert "recorded as r0001" in out

    assert main(["runs", "list", "--dir", str(tmp_path / "runs")]) == 0
    listing = capsys.readouterr().out
    assert "r0001" in listing and "r0002" in listing and "base" in listing

    assert main(["runs", "show", "--dir", str(tmp_path / "runs"),
                 "r0001", "--json"]) == 0
    manifest = json.loads(capsys.readouterr().out)
    assert manifest["run_id"] == "r0001"
    assert manifest["seed"] == 1
    assert "cap_mean_fF" in manifest["scalars"]

    assert main(["runs", "diff", "--dir", str(tmp_path / "runs"),
                 "r0001", "r0002"]) == 0
    diff_out = capsys.readouterr().out
    assert "runs diff: r0001 -> r0002" in diff_out
    assert "bitmap:" in diff_out


def test_runs_check_gates_on_drift(tmp_path, capsys):
    # Clean pair (same process, different seeds): gate passes.
    assert _record_scan(tmp_path, seed=1) == 0
    assert _record_scan(tmp_path, seed=2) == 0
    capsys.readouterr()
    assert main(["runs", "check", "--dir", str(tmp_path / "runs")]) == 0
    # Injected 4 fF process drift: gate fails.
    assert _record_scan(tmp_path, seed=3, nominal=26.0) == 0
    capsys.readouterr()
    assert main(["runs", "check", "--dir", str(tmp_path / "runs")]) == 1
    assert "DRF" in capsys.readouterr().out


def test_runs_show_unknown_id_fails_cleanly(tmp_path, capsys):
    assert _record_scan(tmp_path, seed=1) == 0
    capsys.readouterr()
    assert main(["runs", "show", "--dir", str(tmp_path / "runs"), "r0099"]) == 2
    assert "no run" in capsys.readouterr().err


def test_runs_list_empty_ledger(tmp_path, capsys):
    assert main(["runs", "list", "--dir", str(tmp_path / "void")]) == 0
    assert "no recorded runs" in capsys.readouterr().out


def test_scan_progress_jsonl(tmp_path, capsys):
    import json

    target = tmp_path / "progress.jsonl"
    assert main([
        "scan", "--rows", "8", "--cols", "4", "--macro-rows", "8",
        "--healthy", "--progress-jsonl", str(target),
    ]) == 0
    events = [json.loads(line) for line in target.read_text().splitlines()]
    assert events[0]["event"] == "start"
    assert events[-1]["event"] == "finish"
    assert events[-1]["done"] == 32
    assert events[-1]["units"] == "cells"


def test_wafer_record(tmp_path, capsys):
    assert main([
        "wafer", "--diameter", "3", "--record", str(tmp_path / "runs"),
        "--label", "lot-7",
    ]) == 0
    assert "recorded as r0001" in capsys.readouterr().out
    from repro.obs import RunLedger

    runs = RunLedger(tmp_path / "runs").runs()
    assert [m.kind for m in runs] == ["wafer"]
    assert runs[0].label == "lot-7"


# ---------------------------------------------------------------------------
# Error paths: broken ledgers and artifacts must fail like tools
# ---------------------------------------------------------------------------


def test_runs_diff_unknown_id_exits_2(tmp_path, capsys):
    assert _record_scan(tmp_path, seed=1) == 0
    capsys.readouterr()
    assert main(["runs", "diff", "--dir", str(tmp_path / "runs"),
                 "r0001", "r0077"]) == 2
    err = capsys.readouterr().err
    assert "error:" in err and "no run 'r0077'" in err
    assert "Traceback" not in err


def test_runs_diff_corrupted_artifact_reports_reason(tmp_path, capsys):
    assert _record_scan(tmp_path, seed=1) == 0
    assert _record_scan(tmp_path, seed=2) == 0
    capsys.readouterr()
    # Truncate run 2's scan artifact mid-file: the bitmap delta must
    # degrade to a named reason, not a zipfile traceback.
    artifacts = sorted((tmp_path / "runs" / "artifacts").glob("*.npz"))
    artifacts[-1].write_bytes(artifacts[-1].read_bytes()[:64])
    assert main(["runs", "diff", "--dir", str(tmp_path / "runs"),
                 "r0001", "r0002"]) == 0
    out = capsys.readouterr().out
    assert "unreadable" in out
    assert "Traceback" not in out


def test_runs_diff_truncated_manifest_exits_2(tmp_path, capsys):
    assert _record_scan(tmp_path, seed=1) == 0
    capsys.readouterr()
    manifest = tmp_path / "runs" / "manifest.jsonl"
    manifest.write_text(manifest.read_text()[:40])
    assert main(["runs", "diff", "--dir", str(tmp_path / "runs"),
                 "r0001", "r0001"]) == 2
    err = capsys.readouterr().err
    assert "truncated write?" in err
    assert "Traceback" not in err


def test_runs_check_truncated_manifest_exits_2(tmp_path, capsys):
    assert _record_scan(tmp_path, seed=1) == 0
    capsys.readouterr()
    manifest = tmp_path / "runs" / "manifest.jsonl"
    manifest.write_text(manifest.read_text()[:40])
    assert main(["runs", "check", "--dir", str(tmp_path / "runs")]) == 2
    err = capsys.readouterr().err
    assert "error:" in err and "truncated write?" in err


# ---------------------------------------------------------------------------
# Checkpoint/resume verbs
# ---------------------------------------------------------------------------


def test_scan_resume_unknown_id_exits_2(tmp_path, capsys):
    assert main([
        "scan", "--rows", "8", "--cols", "4", "--macro-rows", "8",
        "--checkpoint", str(tmp_path / "runs"), "--resume", "r0042",
    ]) == 2
    err = capsys.readouterr().err
    assert "error:" in err and "r0042" in err
    assert "Traceback" not in err


def test_runs_checkpoints_empty(tmp_path, capsys):
    assert main(["runs", "checkpoints", "--dir", str(tmp_path / "runs")]) == 0
    assert "no unfinished runs" in capsys.readouterr().out


def test_checkpointed_scan_completes_and_cleans_up(tmp_path, capsys):
    ledger_dir = tmp_path / "runs"
    assert main([
        "scan", "--rows", "8", "--cols", "4", "--macro-rows", "8", "--healthy",
        "--record", str(ledger_dir), "--checkpoint", str(ledger_dir),
    ]) == 0
    out = capsys.readouterr().out
    assert "recorded as r0001" in out
    # A completed run leaves no checkpoint behind.
    assert main(["runs", "checkpoints", "--dir", str(ledger_dir)]) == 0
    assert "no unfinished runs" in capsys.readouterr().out


def test_tech_list_command(capsys):
    assert main(["tech", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("edram", "fecap", "1t"):
        assert name in out
    assert "corners" in out
    assert "tt=" in out


def test_tech_list_json(capsys):
    import json

    assert main(["tech", "list", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [entry["name"] for entry in payload] == ["edram", "fecap", "1t"]
    assert all("corners" in entry for entry in payload)


@pytest.mark.parametrize("tech", ["edram", "fecap", "1t"])
def test_scan_command_per_technology(tech, capsys):
    assert main([
        "scan", "--rows", "8", "--cols", "4", "--macro-rows", "8",
        "--tech", tech,
    ]) == 0
    assert "scanned 32 cells" in capsys.readouterr().out


def test_scan_rejects_unknown_tech():
    with pytest.raises(SystemExit):
        build_parser().parse_args([
            "scan", "--rows", "8", "--cols", "4", "--tech", "mram",
        ])


def test_scan_record_fecap_carries_disturb_scalars(tmp_path, capsys):
    ledger_dir = tmp_path / "runs"
    assert main([
        "scan", "--rows", "8", "--cols", "4", "--macro-rows", "8",
        "--tech", "fecap", "--record", str(ledger_dir),
    ]) == 0
    capsys.readouterr()
    from repro.obs import RunLedger

    manifest = RunLedger(ledger_dir).runs()[0]
    assert manifest.config["technology"] == "fecap"


def test_diagnose_command_per_technology(capsys):
    assert main([
        "diagnose", "--rows", "8", "--cols", "4", "--macro-rows", "8",
        "--tech", "fecap",
    ]) == 0
    assert "verdicts" in capsys.readouterr().out


def test_wafer_command_per_technology(capsys):
    assert main(["wafer", "--diameter", "3", "--tech", "1t"]) == 0
    assert "wafer mean" in capsys.readouterr().out


def _write_parallel_trace(tmp_path, name="trace-par.jsonl", jobs=2):
    trace_path = tmp_path / name
    assert main([
        "scan", "--rows", "8", "--cols", "4", "--macro-rows", "4",
        "--healthy", "--jobs", str(jobs), "--trace", str(trace_path),
    ]) == 0
    return trace_path


def test_trace_command_merges_multiple_paths(tmp_path, capsys):
    import json

    first = _write_parallel_trace(tmp_path, "a.jsonl")
    second = _write_parallel_trace(tmp_path, "b.jsonl")
    capsys.readouterr()
    assert main(["trace", str(first), str(second), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    names = {row["name"]: row["count"] for row in payload["spans"]}
    assert names["scan"] == 2  # one root per merged file


def test_trace_command_missing_path_names_file(tmp_path, capsys):
    from repro.errors import ObservabilityError

    present = _write_parallel_trace(tmp_path)
    capsys.readouterr()
    with pytest.raises(ObservabilityError, match="absent.jsonl"):
        main(["trace", str(present), str(tmp_path / "absent.jsonl")])


def test_trace_timeline_text(tmp_path, capsys):
    trace_path = _write_parallel_trace(tmp_path)
    capsys.readouterr()
    assert main(["trace", str(trace_path), "--timeline"]) == 0
    out = capsys.readouterr().out
    assert "parent" in out
    # Worker lanes appear because the parallel scan merged worker spans.
    assert "w0" in out or "w1" in out


def test_trace_timeline_json(tmp_path, capsys):
    import json

    trace_path = _write_parallel_trace(tmp_path)
    capsys.readouterr()
    assert main(["trace", str(trace_path), "--timeline", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    lanes = {lane["lane"] for lane in payload["lanes"]}
    assert "parent" in lanes
    assert any(lane.startswith("w") for lane in lanes)
    assert payload["duration_seconds"] > 0.0
