"""Analog bitmap wrapper."""

import numpy as np
import pytest

from repro.bitmap.analog import AnalogBitmap
from repro.calibration.window import SpecificationWindow
from repro.edram.array import EDRAMArray
from repro.edram.defects import CellDefect, DefectKind
from repro.edram.variation_map import compose_maps, mismatch_map, uniform_map
from repro.errors import DiagnosisError
from repro.measure.scan import ArrayScanner
from repro.units import fF


@pytest.fixture()
def bitmap(tech, structure_8x2, abacus_8x2):
    cap = compose_maps(
        uniform_map((8, 4), 30 * fF), mismatch_map((8, 4), 1 * fF, seed=2)
    )
    arr = EDRAMArray(8, 4, tech=tech, macro_cols=2, capacitance_map=cap)
    arr.cell(2, 1).apply_defect(CellDefect(DefectKind.SHORT))
    arr.cell(5, 3).apply_defect(CellDefect(DefectKind.LOW_CAP, factor=0.5))
    scan = ArrayScanner(arr, structure_8x2).scan()
    return AnalogBitmap(scan, abacus_8x2)


def test_shape(bitmap):
    assert bitmap.shape == (8, 4)


def test_masks_partition_cells(bitmap):
    total = bitmap.under_range | bitmap.over_range | bitmap.in_range
    assert total.all()
    assert not (bitmap.under_range & bitmap.in_range).any()


def test_short_is_under_range(bitmap):
    assert bitmap.under_range[2, 1]


def test_estimates_follow_codes(bitmap):
    assert np.isnan(bitmap.estimates[2, 1])
    healthy = bitmap.estimates[0, 0]
    assert 20 * fF < healthy < 40 * fF


def test_statistics(bitmap):
    assert bitmap.mean_capacitance() == pytest.approx(30 * fF, rel=0.1)
    assert bitmap.std_capacitance() < 5 * fF


def test_low_cap_cell_reads_low(bitmap):
    assert bitmap.estimates[5, 3] < 20 * fF


def test_outliers_flags_defects(bitmap):
    flags = bitmap.outliers(3.0)
    assert flags[2, 1]  # short (under range)
    assert flags[5, 3]  # low cap


def test_outliers_validation(bitmap):
    with pytest.raises(DiagnosisError):
        bitmap.outliers(0.0)


def test_classify_against_window(bitmap, abacus_8x2):
    window = SpecificationWindow.from_capacitance(abacus_8x2, 24 * fF, 36 * fF)
    verdicts = bitmap.classify(window)
    assert verdicts[2, 1] == "ambiguous_zero"
    assert verdicts[5, 3] == "fail_low"
    assert verdicts[0, 0] == "pass"
    out = bitmap.out_of_spec(window)
    assert out[2, 1] and out[5, 3] and not out[0, 0]


def test_profiles(bitmap):
    rows = bitmap.row_profile()
    cols = bitmap.column_profile()
    assert rows.shape == (8,)
    assert cols.shape == (4,)
    assert np.nanmean(rows) == pytest.approx(30 * fF, rel=0.1)


def test_code_histogram_counts_all(bitmap):
    assert sum(bitmap.code_histogram().values()) == 32


def test_depth_mismatch_rejected(bitmap, tech, structure_2x2, abacus_2x2):
    from repro.calibration.design import design_structure
    from repro.calibration.abacus import Abacus

    shallow = design_structure(tech, 2, 2, num_steps=8)
    ab8 = Abacus.analytic(shallow, 2, 2)
    with pytest.raises(DiagnosisError):
        AnalogBitmap(bitmap.scan, ab8)


def test_all_out_of_range_statistics_raise(tech, structure_2x2, abacus_2x2):
    arr = EDRAMArray(2, 2, tech=tech)
    for r in range(2):
        for c in range(2):
            arr.cell(r, c).capacitance = 1 * fF  # all under range
    scan = ArrayScanner(arr, structure_2x2).scan()
    bm = AnalogBitmap(scan, abacus_2x2)
    with pytest.raises(DiagnosisError):
        bm.mean_capacitance()
