"""Property-based tests of the tracing subsystem.

A tracer driven by ANY well-bracketed sequence of span opens/closes must
produce a proper forest: parents start before (and end after) their
children, ids are start-ordered, and the JSONL round trip is lossless.
"""

import io
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ObservabilityError
from repro.obs import Tracer, load_trace, summarize_trace

# A trace program: "(" opens a span, ")" closes the innermost open one.
# Unmatched closes are dropped; spans left open at the end are closed —
# so every program maps to a valid nesting.
programs = st.lists(st.sampled_from("()"), max_size=60)


def run_program(program):
    ticks = iter(range(100_000))
    tracer = Tracer(clock=lambda: float(next(ticks)))
    contexts = []
    names = iter(f"span-{i}" for i in range(len(program) + 1))
    for op in program:
        if op == "(":
            ctx = tracer.span(next(names), depth=len(contexts))
            ctx.__enter__()
            contexts.append(ctx)
        elif contexts:
            contexts.pop().__exit__(None, None, None)
    while contexts:
        contexts.pop().__exit__(None, None, None)
    return tracer


@given(programs)
@settings(max_examples=200, deadline=None)
def test_spans_form_a_proper_forest(program):
    tracer = run_program(program)
    by_id = {s.span_id: s for s in tracer.spans}
    assert [s.span_id for s in tracer.spans] == list(range(len(tracer.spans)))
    for span in tracer.spans:
        assert span.end is not None
        assert span.duration >= 0
        if span.parent_id is not None:
            parent = by_id[span.parent_id]
            # Children start after and finish before their parent.
            assert parent.span_id < span.span_id
            assert parent.start <= span.start
            assert span.end <= parent.end
            assert span.duration <= parent.duration


@given(programs)
@settings(max_examples=200, deadline=None)
def test_sibling_intervals_do_not_overlap(program):
    tracer = run_program(program)
    by_parent = {}
    for span in tracer.spans:
        by_parent.setdefault(span.parent_id, []).append(span)
    for siblings in by_parent.values():
        for earlier, later in zip(siblings, siblings[1:]):
            assert earlier.end <= later.start


@given(programs)
@settings(max_examples=100, deadline=None)
def test_jsonl_round_trip_is_lossless(program):
    tracer = run_program(program)
    buf = io.StringIO()
    tracer.write_jsonl(buf)
    if not tracer.spans:
        # A span-free file is a loader error, not an empty success.
        with pytest.raises(ObservabilityError, match="no spans"):
            load_trace(io.StringIO(buf.getvalue()))
    else:
        assert load_trace(io.StringIO(buf.getvalue())) == tracer.spans


@given(programs)
@settings(max_examples=100, deadline=None)
def test_summary_accounts_for_every_span(program):
    tracer = run_program(program)
    if not tracer.spans:
        with pytest.raises(ObservabilityError, match="empty trace"):
            summarize_trace(tracer.spans)
        return
    summary = summarize_trace(tracer.spans)
    assert summary.total_spans == len(tracer.spans)
    assert sum(a.count for a in summary.aggregates) == len(tracer.spans)
    walked_depth = max((d for _, d in tracer.walk()), default=0)
    assert summary.max_depth == walked_depth


# ---------------------------------------------------------------------------
# Metrics merge: shard order must not matter.
# ---------------------------------------------------------------------------

# Shards as shipped-wire records with a fixed kind per name (a kind
# conflict raises by design and is tested separately).  Integer values
# keep float sums exact so order-of-addition cannot produce spurious
# counterexamples.
_counter_records = st.tuples(
    st.just("c"), st.sampled_from(["c0", "c1"]),
    st.integers(0, 100).map(float),
)
_gauge_records = st.tuples(
    st.just("g"), st.sampled_from(["g0", "g1"]),
    st.integers(-50, 50).map(float), st.integers(0, 5).map(float),
)
_histogram_records = st.tuples(
    st.just("h"), st.sampled_from(["h0", "h1"]),
    st.lists(st.integers(0, 20).map(float), max_size=8).map(tuple),
)
_shards = st.lists(
    st.lists(
        st.one_of(_counter_records, _gauge_records, _histogram_records),
        max_size=6,
    ),
    min_size=1,
    max_size=5,
)


def _normalized(registry):
    # Empty histograms summarize to NaN, and NaN != NaN would fail the
    # comparison even though the registries agree — normalize to None.
    view = registry.to_dict()
    for record in view.values():
        for key, value in record.items():
            if isinstance(value, float) and math.isnan(value):
                record[key] = None
    return view


def _merged_view(shards):
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    for shard in shards:
        registry.merge_shipped(shard)
    return _normalized(registry)


@given(_shards, st.randoms(use_true_random=False))
@settings(max_examples=200, deadline=None)
def test_metrics_merge_is_associative_over_shard_orders(shards, rng):
    reference = _merged_view(shards)
    shuffled = list(shards)
    rng.shuffle(shuffled)
    assert _merged_view(shuffled) == reference
    # Associativity: pre-merging an arbitrary prefix into one registry
    # and merging the rest afterwards gives the same result.
    from repro.obs import MetricsRegistry

    split = rng.randrange(len(shards) + 1)
    prefix = MetricsRegistry()
    for shard in shards[:split]:
        prefix.merge_shipped(shard)
    combined = MetricsRegistry()
    combined.merge_shipped(prefix.to_shipped())
    for shard in shards[split:]:
        combined.merge_shipped(shard)
    assert _normalized(combined) == reference
