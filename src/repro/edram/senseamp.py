"""Sense amplifier model for the behavioural (digital) read path.

A latch-type sense amplifier resolving the bitline signal against the
precharge reference.  The only analog imperfection the digital baseline
needs is the input offset: signals smaller than the offset resolve to a
data-independent value, which is exactly how marginal (low-capacitance or
drooped) cells turn into flaky digital reads.

The model is deterministic: a per-instance offset is drawn once from the
configured distribution, mimicking one physical amplifier.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ArrayConfigError


class SenseAmplifier:
    """Latch sense amp with a fixed random input offset.

    Parameters
    ----------
    offset_sigma:
        1σ of the input-referred offset distribution, volts.
    seed:
        Seed for the offset draw (one draw per instance).
    fail_low:
        Which way a below-offset signal resolves: ``True`` reads 0
        (typical n-latch imbalance direction), ``False`` reads 1.
        Used only when the signal magnitude is below the offset.
    """

    def __init__(self, offset_sigma: float = 3e-3, seed: int = 0, fail_low: bool = True) -> None:
        if offset_sigma < 0:
            raise ArrayConfigError(f"offset_sigma must be >= 0, got {offset_sigma}")
        self.offset_sigma = offset_sigma
        self.offset = float(np.random.default_rng(seed).normal(0.0, offset_sigma))
        self.fail_low = fail_low

    def resolve(self, signal: float) -> bool:
        """Resolve a signed sense signal ΔV into a data bit.

        Signals beyond the offset magnitude resolve correctly by sign;
        weaker signals collapse to the amplifier's preferred state.
        """
        if abs(signal) <= abs(self.offset):
            return not self.fail_low
        return signal > 0.0

    def margin(self, signal: float) -> float:
        """Sensing margin |ΔV| − |offset| in volts (negative = unreliable)."""
        return abs(signal) - abs(self.offset)
