"""Modified nodal analysis (MNA) assembly.

The solvers in :mod:`repro.circuit.dc` and :mod:`repro.circuit.transient`
build an :class:`MnaSystem` for a circuit, then repeatedly ask every
element to *stamp* itself given a :class:`StampContext` (time, timestep,
previous solution, current Newton iterate).  Linear elements ignore the
iterate; nonlinear ones (the MOSFET) stamp their linearization around it.

Unknown vector layout::

    x = [ v_0 .. v_{N-1} | i_0 .. i_{M-1} ]

with ``N`` non-ground node voltages followed by ``M`` branch currents,
one per voltage source.  Sign convention: a branch current flows from the
source's positive node, through the source, out of the negative node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuit.netlist import Circuit
from repro.errors import SingularCircuitError


@dataclass
class StampContext:
    """Everything an element may need while stamping.

    Parameters
    ----------
    time:
        Simulation time in seconds (0.0 for DC).
    dt:
        Timestep in seconds, or ``None`` for DC analysis (capacitors then
        stamp nothing and rely on gmin to pin floating nodes).
    v_iter:
        Current Newton iterate of node voltages (length ``num_nodes``).
        Nonlinear elements linearize around this point.
    v_prev:
        Node voltages at the previous accepted timepoint (transient only).
    integrator:
        ``"be"`` (backward Euler) or ``"trap"`` (trapezoidal).
    cap_current_prev:
        For trapezoidal integration: capacitor branch currents at the
        previous timepoint, keyed by element name.
    gmin:
        Conductance to ground added on every node (set by the solver;
        elements may also consult it).
    source_scale:
        Multiplier applied by every independent source (voltage,
        current, mirror) to its programmed value.  1.0 for normal
        solves; the DC solver's source-stepping fallback ramps it from
        ~0 to 1.0 to walk a stubborn circuit up to its operating point.
    """

    time: float = 0.0
    dt: float | None = None
    v_iter: np.ndarray | None = None
    v_prev: np.ndarray | None = None
    integrator: str = "be"
    cap_current_prev: dict[str, float] = field(default_factory=dict)
    gmin: float = 1e-12
    source_scale: float = 1.0

    def voltage(self, index: int, which: str = "iter") -> float:
        """Voltage of node ``index`` (-1 = ground) in the chosen vector."""
        if index < 0:
            return 0.0
        vec = self.v_iter if which == "iter" else self.v_prev
        if vec is None:
            return 0.0
        return float(vec[index])


class MnaSystem:
    """Dense MNA matrix/RHS pair with stamping helpers.

    One instance is created per circuit and reused across Newton
    iterations and timesteps (:meth:`reset` zeroes it in place).
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self.num_nodes = circuit.num_nodes
        # Assign branch indices to elements that request them.
        self._branch_index: dict[str, int] = {}
        for element in circuit:
            for _ in range(element.num_branches):
                self._branch_index[element.name] = self.num_nodes + len(self._branch_index)
        self.size = self.num_nodes + len(self._branch_index)
        self.matrix = np.zeros((self.size, self.size))
        self.rhs = np.zeros(self.size)

    def reset(self) -> None:
        """Zero the matrix and RHS for a fresh stamping pass."""
        self.matrix[:, :] = 0.0
        self.rhs[:] = 0.0

    def branch_index(self, element_name: str) -> int:
        """Unknown-vector index of the branch current owned by an element."""
        return self._branch_index[element_name]

    # ------------------------------------------------------------------
    # Stamping primitives
    # ------------------------------------------------------------------

    def add_conductance(self, a: int, b: int, g: float) -> None:
        """Stamp a conductance ``g`` between node indices ``a`` and ``b``.

        Index -1 means ground.
        """
        if a >= 0:
            self.matrix[a, a] += g
        if b >= 0:
            self.matrix[b, b] += g
        if a >= 0 and b >= 0:
            self.matrix[a, b] -= g
            self.matrix[b, a] -= g

    def add_current(self, node: int, current: float) -> None:
        """Inject ``current`` amperes *into* node ``node`` (RHS stamp)."""
        if node >= 0:
            self.rhs[node] += current

    def add_transconductance(self, out_a: int, out_b: int, in_a: int, in_b: int, gm: float) -> None:
        """Stamp a VCCS: current ``gm·(v_in_a − v_in_b)`` from ``out_a`` to ``out_b``."""
        for out_node, out_sign in ((out_a, 1.0), (out_b, -1.0)):
            if out_node < 0:
                continue
            if in_a >= 0:
                self.matrix[out_node, in_a] += out_sign * gm
            if in_b >= 0:
                self.matrix[out_node, in_b] -= out_sign * gm

    def stamp_voltage_source(self, branch: int, pos: int, neg: int, voltage: float) -> None:
        """Stamp an ideal voltage source with its own branch current row."""
        if pos >= 0:
            self.matrix[pos, branch] += 1.0
            self.matrix[branch, pos] += 1.0
        if neg >= 0:
            self.matrix[neg, branch] -= 1.0
            self.matrix[branch, neg] -= 1.0
        self.rhs[branch] += voltage

    # ------------------------------------------------------------------
    # Assembly and solution
    # ------------------------------------------------------------------

    def assemble(self, ctx: StampContext) -> None:
        """Reset, then stamp every element plus gmin on all nodes."""
        self.reset()
        for element in self.circuit:
            element.stamp(self, ctx)
        for node in range(self.num_nodes):
            self.matrix[node, node] += ctx.gmin

    def solve(self) -> np.ndarray:
        """Solve the assembled system; raise on singular matrices.

        On a singular matrix the error runs the ERC circuit rules
        (:mod:`repro.lint`) to name the offending node(s) — a floating
        island or a voltage-source loop — instead of reporting only
        "matrix is singular".
        """
        try:
            return np.linalg.solve(self.matrix, self.rhs)
        except np.linalg.LinAlgError as exc:
            message = f"singular MNA matrix for circuit {self.circuit.title!r}: {exc}"
            nodes, diagnostics = self._erc_diagnosis()
            if diagnostics:
                causes = "; ".join(
                    f"{d.code} {d.slug}"
                    + (f" (nodes: {', '.join(d.nodes)})" if d.nodes else "")
                    for d in diagnostics
                )
                message += f" — ERC diagnosis: {causes}"
            raise SingularCircuitError(message, nodes=nodes, diagnostics=diagnostics) from exc

    def _erc_diagnosis(self) -> tuple[tuple[str, ...], tuple]:
        """Offending nodes + lint diagnostics for a singular system.

        Imported lazily (lint sits above the circuit layer) and guarded:
        a diagnosis failure must never mask the singularity itself.
        """
        try:
            from repro.lint import lint_circuit

            report = lint_circuit(self.circuit, only=("ERC001", "ERC002", "ERC005"))
            errors = report.errors
            nodes = tuple(dict.fromkeys(n for d in errors for n in d.nodes))
            return nodes, tuple(errors)
        except Exception:  # lint: allow-broad-except  # pragma: no cover - defensive
            return (), ()
