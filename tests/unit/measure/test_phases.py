"""Five-phase plan: timing and control levels (paper §2 flow)."""

import pytest

from repro.errors import MeasurementError
from repro.measure.phases import Phase, PhasePlan
from repro.measure.structure import MeasurementDesign
from repro.units import ns


@pytest.fixture()
def plan(tech):
    return PhasePlan(tech, MeasurementDesign(), target_row=1, target_col=0,
                     num_rows=4, num_cols=2)


class TestTiming:
    def test_five_windows_of_ten_ns(self, plan):
        windows = plan.windows
        assert len(windows) == 5
        for k, w in enumerate(windows):
            assert w.start == pytest.approx(k * 10 * ns)
            assert w.end == pytest.approx((k + 1) * 10 * ns)

    def test_total_duration(self, plan):
        assert plan.total_duration == pytest.approx(50 * ns)

    def test_convert_start(self, plan):
        assert plan.convert_start == pytest.approx(40 * ns)

    def test_phase_of(self, plan):
        assert plan.phase_of(5 * ns) is Phase.DISCHARGE
        assert plan.phase_of(15 * ns) is Phase.CHARGE
        assert plan.phase_of(25 * ns) is Phase.ISOLATE
        assert plan.phase_of(35 * ns) is Phase.SHARE
        assert plan.phase_of(45 * ns) is Phase.CONVERT
        assert plan.phase_of(99 * ns) is Phase.CONVERT  # clamped
        with pytest.raises(MeasurementError):
            plan.phase_of(-1.0)


class TestWordlines:
    def test_all_selected_in_discharge(self, plan, tech):
        for row in range(4):
            assert plan.wordline(row)(5 * ns) == pytest.approx(tech.vpp)

    def test_only_target_row_after_discharge(self, plan, tech):
        for t in (15 * ns, 25 * ns, 35 * ns, 45 * ns):
            assert plan.wordline(1)(t) == pytest.approx(tech.vpp)
            assert plan.wordline(0)(t) == 0.0
            assert plan.wordline(3)(t) == 0.0

    def test_bounds(self, plan):
        with pytest.raises(MeasurementError):
            plan.wordline(4)


class TestBitlineControls:
    def test_all_selects_on_through_charge(self, plan, tech):
        for col in range(2):
            assert plan.bitline_select(col)(5 * ns) == pytest.approx(tech.vpp)
            assert plan.bitline_select(col)(15 * ns) == pytest.approx(tech.vpp)

    def test_only_target_select_after_isolate(self, plan, tech):
        for t in (25 * ns, 35 * ns, 45 * ns):
            assert plan.bitline_select(0)(t) == pytest.approx(tech.vpp)
            assert plan.bitline_select(1)(t) == 0.0

    def test_target_bitline_input_stays_grounded(self, plan):
        for t in (5 * ns, 15 * ns, 45 * ns):
            assert plan.bitline_input(0)(t) == 0.0

    def test_neighbour_bitline_raised_from_charge(self, plan, tech):
        assert plan.bitline_input(1)(5 * ns) == 0.0
        assert plan.bitline_input(1)(15 * ns) == pytest.approx(tech.vdd)

    def test_bounds(self, plan):
        with pytest.raises(MeasurementError):
            plan.bitline_select(2)
        with pytest.raises(MeasurementError):
            plan.bitline_input(-1)


class TestStructureControls:
    def test_prg_opens_at_end_of_charge(self, plan, tech):
        prg = plan.prg()
        assert prg(5 * ns) == pytest.approx(tech.vpp)
        assert prg(15 * ns) == pytest.approx(tech.vpp)
        assert prg(25 * ns) == 0.0

    def test_lec_pattern(self, plan, tech):
        lec = plan.lec()
        assert lec(5 * ns) == pytest.approx(tech.vpp)   # discharge C_REF
        assert lec(15 * ns) == 0.0                       # unselect during charge
        assert lec(25 * ns) == 0.0
        assert lec(35 * ns) == pytest.approx(tech.vpp)  # share
        assert lec(45 * ns) == pytest.approx(tech.vpp)  # convert

    def test_in_drive_levels(self, plan, tech):
        stim = plan.input_in()
        assert stim(5 * ns) == 0.0
        assert stim(15 * ns) == pytest.approx(tech.vdd)

    def test_std_is_off_throughout(self, plan):
        std = plan.std()
        for t in (5 * ns, 15 * ns, 25 * ns, 35 * ns, 45 * ns):
            assert std(t) == 0.0


class TestValidation:
    def test_target_bounds(self, tech):
        with pytest.raises(MeasurementError):
            PhasePlan(tech, MeasurementDesign(), 4, 0, num_rows=4, num_cols=2)
        with pytest.raises(MeasurementError):
            PhasePlan(tech, MeasurementDesign(), 0, 2, num_rows=4, num_cols=2)
