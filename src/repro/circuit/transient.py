"""Fixed-step transient analysis.

The solver advances the circuit with backward-Euler (default) or
trapezoidal integration, running a damped Newton solve at every step.
Source breakpoints (phase edges, current-staircase steps) are folded into
the time grid so no control edge is ever stepped over — essential for the
five-phase measurement flow whose behaviour is defined by its edges.

Initial conditions come from one of:

- a DC operating point at ``t_start`` (default),
- user-supplied node voltages (``ic=...``, "UIC" style) — unlisted nodes
  start at 0 V, and capacitors with an ``ic`` attribute override node
  guesses across their terminals where consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuit.dc import dc_solve_vector, _newton
from repro.circuit.elements import Capacitor, CurrentSource, Switch, VoltageSource
from repro.circuit.mna import MnaSystem, StampContext
from repro.circuit.netlist import Circuit
from repro.circuit.waveform import Waveform
from repro.errors import ConvergenceError, ReproError


@dataclass
class TransientOptions:
    """Knobs for :func:`transient_analysis`.

    Parameters
    ----------
    dt:
        Base timestep, seconds.
    integrator:
        ``"be"`` (robust, slightly dissipative) or ``"trap"``
        (second-order; capacitor currents tracked explicitly).
    max_newton_iter:
        Newton iteration cap per timestep.
    gmin:
        Conductance to ground on every node.
    record:
        Node names to record; ``None`` records every node.
    use_ic:
        If True, skip the initial DC solve and start from ``ic`` /
        zeros ("UIC").
    ic:
        Initial node voltages for ``use_ic`` mode.
    """

    dt: float = 50e-12
    integrator: str = "be"
    max_newton_iter: int = 100
    gmin: float = 1e-12
    record: list[str] | None = None
    use_ic: bool = False
    ic: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ReproError(f"dt must be positive, got {self.dt}")
        if self.integrator not in ("be", "trap"):
            raise ReproError(f"integrator must be 'be' or 'trap', got {self.integrator!r}")


def _collect_breakpoints(circuit: Circuit, t_start: float, t_stop: float) -> list[float]:
    """Times in (t_start, t_stop) at which any stimulus has an edge."""
    points: set[float] = set()
    for element in circuit:
        stimuli = []
        if isinstance(element, (VoltageSource, CurrentSource)):
            stimuli.append(element.value)
        if isinstance(element, Switch):
            stimuli.append(element.control)
        for stim in stimuli:
            for bp in stim.breakpoints():
                if t_start < bp < t_stop:
                    points.add(float(bp))
    return sorted(points)


def _build_time_grid(t_start: float, t_stop: float, dt: float, breakpoints: list[float]) -> np.ndarray:
    """Uniform grid at ``dt`` with every breakpoint inserted exactly.

    A small epsilon sample just after each breakpoint is added too, so
    step edges are sharp in the recorded waveform.
    """
    base = np.arange(t_start, t_stop + dt * 0.5, dt)
    if base[-1] < t_stop:
        base = np.append(base, t_stop)
    extra: list[float] = []
    eps = dt * 1e-3
    for bp in breakpoints:
        extra.append(bp)
        if bp + eps < t_stop:
            extra.append(bp + eps)
    grid = np.unique(np.concatenate([base, np.asarray(extra)])) if extra else base
    # Drop pathologically tiny steps produced by coincident points.
    keep = np.concatenate([[True], np.diff(grid) > eps * 0.5])
    return grid[keep]


def _initial_state(circuit: Circuit, options: TransientOptions, t_start: float) -> np.ndarray:
    """Node-voltage vector at ``t_start``."""
    if not options.use_ic:
        x = dc_solve_vector(circuit, time=t_start, gmin=options.gmin)
        return x[: circuit.num_nodes]
    v = np.zeros(circuit.num_nodes)
    for node, voltage in options.ic.items():
        idx = circuit.node_index(node)
        if idx >= 0:
            v[idx] = voltage
    for cap in circuit.elements_of_type(Capacitor):
        if cap.ic is None:
            continue
        ia = circuit.node_index(cap.a)
        ib = circuit.node_index(cap.b)
        # Apply the capacitor IC across its terminals relative to node b.
        vb = v[ib] if ib >= 0 else 0.0
        if ia >= 0:
            v[ia] = vb + cap.ic
    return v


def transient_analysis(
    circuit: Circuit,
    t_stop: float,
    t_start: float = 0.0,
    options: TransientOptions | None = None,
) -> Waveform:
    """Integrate the circuit from ``t_start`` to ``t_stop``.

    Returns a :class:`~repro.circuit.waveform.Waveform` with one trace per
    recorded node.  Raises :class:`ConvergenceError` if any timestep's
    Newton solve fails even after a one-shot step halving.
    """
    if t_stop <= t_start:
        raise ReproError(f"t_stop ({t_stop}) must exceed t_start ({t_start})")
    opts = options or TransientOptions()
    grid = _build_time_grid(t_start, t_stop, opts.dt, _collect_breakpoints(circuit, t_start, t_stop))

    sys = MnaSystem(circuit)
    n = circuit.num_nodes
    v = _initial_state(circuit, opts, t_start)
    record = opts.record if opts.record is not None else circuit.node_names
    for node in record:
        circuit.node_index(node)  # validate early

    history = np.empty((len(grid), n))
    history[0] = v
    cap_currents: dict[str, float] = {}
    capacitors = circuit.elements_of_type(Capacitor) if opts.integrator == "trap" else []

    for step in range(1, len(grid)):
        t_now = float(grid[step])
        dt = t_now - float(grid[step - 1])
        ctx = StampContext(
            time=t_now,
            dt=dt,
            v_prev=v,
            integrator=opts.integrator,
            cap_current_prev=dict(cap_currents),
            gmin=opts.gmin,
        )
        try:
            x = _newton(sys, ctx, v.copy(), opts.max_newton_iter, vtol=1e-8)
        except ConvergenceError:
            # One retry with the step halved (two sub-steps).
            t_mid = t_now - dt / 2.0
            ctx_mid = StampContext(
                time=t_mid, dt=dt / 2.0, v_prev=v, integrator=opts.integrator,
                cap_current_prev=dict(cap_currents), gmin=opts.gmin,
            )
            x_mid = _newton(sys, ctx_mid, v.copy(), opts.max_newton_iter, vtol=1e-8)
            v_mid = x_mid[:n]
            if opts.integrator == "trap":
                for cap in capacitors:
                    cap_currents[cap.name] = cap.branch_current(sys, ctx_mid, v_mid)
            ctx = StampContext(
                time=t_now, dt=dt / 2.0, v_prev=v_mid, integrator=opts.integrator,
                cap_current_prev=dict(cap_currents), gmin=opts.gmin,
            )
            x = _newton(sys, ctx, v_mid.copy(), opts.max_newton_iter, vtol=1e-8)
        v = x[:n]
        if opts.integrator == "trap":
            for cap in capacitors:
                cap_currents[cap.name] = cap.branch_current(sys, ctx, v)
        history[step] = v

    traces = {
        node: history[:, circuit.node_index(node)].copy()
        for node in record
        if circuit.node_index(node) >= 0
    }
    return Waveform(grid, traces)
