"""The instrumented hot paths: scans, the sequencer, the pipeline.

Two invariants matter most:

- **bit-exactness** — attaching a tracer/metrics registry must not
  change a single code (the no-op default path is the production path);
- **coverage** — an engine-tier scan must produce the full
  scan → macro → cell → phase 1–5 span tree the docs promise.
"""

import numpy as np
import pytest

from repro.diagnosis.pipeline import DiagnosisPipeline
from repro.edram.array import EDRAMArray
from repro.edram.defects import CellDefect, DefectKind
from repro.measure.config import ScanConfig
from repro.measure.scan import ArrayScanner
from repro.obs import MetricsRegistry, Tracer, summarize_trace
from repro.units import fF

PHASES = (
    "phase:discharge", "phase:charge", "phase:isolate",
    "phase:share", "phase:convert",
)


@pytest.fixture()
def bridged_array(tech):
    """8×4 array, two 8×2 macros; the bridge forces macro 0 onto the engine."""
    arr = EDRAMArray(8, 4, tech=tech, macro_cols=2)
    arr.cell(2, 0).apply_defect(CellDefect(DefectKind.BRIDGE))
    return arr


class TestBitExactness:
    def test_traced_scan_codes_identical(self, bridged_array, structure_8x2):
        scanner = ArrayScanner(bridged_array, structure_8x2)
        plain = scanner.scan()
        observed = scanner.scan(
            ScanConfig(tracer=Tracer(), metrics=MetricsRegistry())
        )
        assert np.array_equal(plain.codes, observed.codes)
        assert np.array_equal(plain.vgs, observed.vgs)
        assert np.array_equal(plain.tiers, observed.tiers)

    def test_parallel_traced_scan_codes_identical(self, tech, structure_8x2):
        arr = EDRAMArray(16, 4, tech=tech, macro_cols=2, macro_rows=8)
        scanner = ArrayScanner(arr, structure_8x2)
        plain = scanner.scan()
        observed = scanner.scan(
            ScanConfig(jobs=2, tracer=Tracer(), metrics=MetricsRegistry())
        )
        assert np.array_equal(plain.codes, observed.codes)


class TestSpanCoverage:
    def test_engine_scan_emits_all_five_phases(self, bridged_array, structure_8x2):
        tracer = Tracer()
        ArrayScanner(bridged_array, structure_8x2).scan(ScanConfig(tracer=tracer))
        summary = summarize_trace(tracer.spans)
        assert summary.covers("scan", "macro", "cell", *PHASES)
        assert summary.max_depth == 3  # scan > macro > cell > phase

    def test_every_engine_cell_has_exactly_five_phase_children(
        self, bridged_array, structure_8x2
    ):
        tracer = Tracer()
        ArrayScanner(bridged_array, structure_8x2).scan(ScanConfig(tracer=tracer))
        cells = [s for s in tracer.spans if s.name == "cell"]
        assert len(cells) == 16  # one engine macro of 8x2
        for cell in cells:
            names = [c.name for c in tracer.children(cell)]
            assert names == list(PHASES)

    def test_macro_spans_one_per_macro_with_tier(
        self, bridged_array, structure_8x2
    ):
        tracer = Tracer()
        ArrayScanner(bridged_array, structure_8x2).scan(ScanConfig(tracer=tracer))
        macros = [s for s in tracer.spans if s.name == "macro"]
        assert len(macros) == bridged_array.num_macros
        assert sorted(m.attributes["tier"] for m in macros) == ["closed-form", "engine"]

    def test_cell_spans_carry_code_and_address(self, bridged_array, structure_8x2):
        tracer = Tracer()
        result = ArrayScanner(bridged_array, structure_8x2).scan(
            ScanConfig(tracer=tracer)
        )
        for cell in (s for s in tracer.spans if s.name == "cell"):
            row, col = cell.attributes["row"], cell.attributes["col"]
            assert cell.attributes["code"] == int(result.codes[row, col])

    def test_parallel_scan_records_macro_spans(self, tech, structure_8x2):
        arr = EDRAMArray(16, 4, tech=tech, macro_cols=2, macro_rows=8)
        tracer = Tracer()
        ArrayScanner(arr, structure_8x2).scan(ScanConfig(jobs=2, tracer=tracer))
        macros = [s for s in tracer.spans if s.name == "macro"]
        assert len(macros) == arr.num_macros
        # Worker wall time crosses the process boundary as an attribute.
        assert all(m.attributes["worker_seconds"] >= 0 for m in macros)

    def test_child_intervals_inside_parent(self, bridged_array, structure_8x2):
        tracer = Tracer()
        ArrayScanner(bridged_array, structure_8x2).scan(ScanConfig(tracer=tracer))
        by_id = {s.span_id: s for s in tracer.spans}
        for span in tracer.spans:
            if span.parent_id is not None:
                parent = by_id[span.parent_id]
                assert parent.start <= span.start
                assert span.end <= parent.end


class TestScanMetrics:
    def test_tier_routing_counters(self, bridged_array, structure_8x2):
        metrics = MetricsRegistry()
        ArrayScanner(bridged_array, structure_8x2).scan(ScanConfig(metrics=metrics))
        assert metrics.counter("scan.runs").value == 1
        assert metrics.counter("scan.cells").value == 32
        assert metrics.counter("scan.cells_engine").value == 16
        assert metrics.counter("scan.cells_closed_form").value == 16
        assert (
            metrics.counter("scan.cells_engine").value
            + metrics.counter("scan.cells_closed_form").value
            == metrics.counter("scan.cells").value
        )

    def test_codes_histogram_matches_result(self, bridged_array, structure_8x2):
        metrics = MetricsRegistry()
        result = ArrayScanner(bridged_array, structure_8x2).scan(
            ScanConfig(metrics=metrics)
        )
        hist = metrics.histogram("scan.codes")
        assert hist.count == result.codes.size
        assert hist.sum == int(result.codes.sum())

    def test_engine_layers_report_ambiently(self, bridged_array, structure_8x2):
        metrics = MetricsRegistry()
        ArrayScanner(bridged_array, structure_8x2).scan(ScanConfig(metrics=metrics))
        # One netlist build per engine macro, one restore per further cell.
        assert metrics.counter("sequencer.netlist_cache_misses").value == 1
        assert metrics.counter("sequencer.netlist_cache_hits").value == 15
        # The charge engine settles at least once per engine phase.
        assert metrics.counter("charge.settles").value >= 16

    def test_scan_stats_folded_into_registry(self, tech, structure_8x2):
        arr = EDRAMArray(16, 4, tech=tech, macro_cols=2, macro_rows=8)
        metrics = MetricsRegistry()
        result = ArrayScanner(arr, structure_8x2).scan(ScanConfig(metrics=metrics))
        assert metrics.gauge("scan.wall_seconds").value == pytest.approx(
            result.stats.wall_seconds
        )
        assert metrics.histogram("scan.macro_seconds").count == arr.num_macros

    def test_counters_accumulate_across_scans(self, tech, structure_2x2):
        metrics = MetricsRegistry()
        scanner = ArrayScanner(EDRAMArray(2, 2, tech=tech), structure_2x2)
        scanner.scan(ScanConfig(metrics=metrics))
        scanner.scan(ScanConfig(metrics=metrics))
        assert metrics.counter("scan.runs").value == 2
        assert metrics.counter("scan.cells").value == 8


class TestPipelineInstrumentation:
    def test_diagnosis_span_tree(self, tech):
        arr = EDRAMArray(8, 4, tech=tech, macro_cols=2)
        arr.cell(1, 1).apply_defect(CellDefect(DefectKind.LOW_CAP, factor=0.5))
        tracer = Tracer()
        pipeline = DiagnosisPipeline(spec_lo=24 * fF, spec_hi=36 * fF)
        pipeline.run(arr, ScanConfig(tracer=tracer))
        summary = summarize_trace(tracer.spans)
        assert summary.covers(
            "diagnosis", "stage:functional", "stage:scan", "stage:classify",
            "stage:root_cause", "stage:process", "stage:repair",
        )
        roots = tracer.roots()
        assert [r.name for r in roots] == ["diagnosis"]
        # The scan's own tree nests inside the scan stage.
        stage_scan = next(s for s in tracer.spans if s.name == "stage:scan")
        scan_spans = [s for s in tracer.spans if s.name == "scan"]
        assert len(scan_spans) == 1
        assert scan_spans[0].parent_id == stage_scan.span_id


class TestSequencerTracing:
    def test_measure_charge_span(self, tech, structure_2x2):
        from repro.measure.sequencer import MeasurementSequencer

        arr = EDRAMArray(2, 2, tech=tech)
        tracer = Tracer()
        seq = MeasurementSequencer(arr.macro(0), structure_2x2)
        plain = seq.measure_charge(1, 0)
        traced = seq.measure_charge(1, 0, tracer=tracer)
        assert traced.code == plain.code
        cell = tracer.roots()[0]
        assert cell.name == "cell"
        assert cell.attributes["tier"] == "charge"
        assert cell.attributes["code"] == traced.code

    @pytest.mark.slow
    def test_measure_transient_span(self, tech, structure_2x2):
        from repro.measure.sequencer import MeasurementSequencer

        arr = EDRAMArray(2, 2, tech=tech)
        tracer = Tracer()
        seq = MeasurementSequencer(arr.macro(0), structure_2x2)
        result = seq.measure_transient(0, 0, tracer=tracer)
        cell = tracer.roots()[0]
        assert cell.attributes["tier"] == "transient"
        assert cell.attributes["code"] == result.code
        names = {c.name for c in tracer.children(cell)}
        assert "integrate" in names
        assert "phase:convert" in names
