"""FIG3 — the abacus: current step versus capacitor value.

Reproduces Figure 3: the calibration staircase mapping each converter
code (equivalently, the DAC current at the OUT flip) to a capacitance
interval over the 10–55 fF range.  Generated both analytically and by
the paper's own procedure (boundary bisection with simulated
measurements) — the two must coincide.  The timed kernel is the
simulation-based abacus generation ("a set of simulation").
"""

import numpy as np
from conftest import report

from repro.calibration.abacus import Abacus
from repro.units import fF, to_fF, to_uA


def bench_fig3_abacus(benchmark, structure_2x2, abacus_2x2):
    simulated = benchmark.pedantic(
        Abacus.from_simulation,
        args=(structure_2x2, 2, 2),
        kwargs={"tolerance": 0.01 * fF},
        rounds=2,
        iterations=1,
    )

    lines = ["abacus (analytic == simulated to 0.02 fF):", ""]
    lines.append(abacus_2x2.table())
    lines.append("")
    # The Figure-3 series: current step for a sweep of capacitor values.
    sweep = np.arange(8, 60, 2) * fF
    series = ", ".join(
        f"{to_fF(c):.0f}:{abacus_2x2.code_for_capacitance(float(c))}" for c in sweep
    )
    lines.append("capacitance (fF) : current step series")
    lines.append(series)
    lines.append("")
    lines.append(
        f"range floor {to_fF(abacus_2x2.range_floor):.2f} fF, "
        f"ceiling {to_fF(abacus_2x2.range_ceiling):.2f} fF, "
        f"DAC step {to_uA(structure_2x2.design.delta_i):.2f} uA "
        f"(paper: 10 fF, 55 fF, 20 steps)"
    )
    report("FIG3: current step vs capacitor value", "\n".join(lines))

    assert np.allclose(simulated.edges, abacus_2x2.edges, atol=0.02 * fF)
    assert abacus_2x2.code_for_capacitance(9 * fF) == 0
    assert abacus_2x2.code_for_capacitance(56 * fF) == 20
