"""RetryPolicy: bounded attempts, exponential backoff, seeded jitter."""

import pytest

from repro.errors import ResilienceError
from repro.resilience.retry import DEFAULT_RETRY_POLICY, NO_RETRY, RetryPolicy


def test_should_retry_counts_total_attempts():
    policy = RetryPolicy(max_attempts=3)
    assert policy.should_retry(0)
    assert policy.should_retry(1)
    assert not policy.should_retry(2)


def test_no_retry_never_retries():
    assert not NO_RETRY.should_retry(0)


def test_validation():
    with pytest.raises(ResilienceError, match="max_attempts"):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ResilienceError, match="non-negative"):
        RetryPolicy(base_delay=-1.0)
    with pytest.raises(ResilienceError, match="jitter"):
        RetryPolicy(jitter=2.0)


def test_backoff_doubles_and_caps():
    policy = RetryPolicy(base_delay=0.1, max_delay=0.5, jitter=0.0)
    assert policy.delay(0) == pytest.approx(0.1)
    assert policy.delay(1) == pytest.approx(0.2)
    assert policy.delay(2) == pytest.approx(0.4)
    assert policy.delay(3) == pytest.approx(0.5)  # capped
    assert policy.delay(10) == pytest.approx(0.5)


def test_jitter_bounded_and_deterministic():
    policy = RetryPolicy(base_delay=0.1, jitter=0.25, seed=1)
    d = policy.delay(0, key=7)
    assert 0.1 <= d < 0.1 * 1.25
    assert d == policy.delay(0, key=7)  # same seed+key -> same delay
    assert d != RetryPolicy(base_delay=0.1, jitter=0.25, seed=2).delay(0, key=7)


def test_jitter_desynchronises_tasks():
    # Tasks failing in the same round (e.g. one dead worker's whole
    # assignment) must not retry in lock-step.
    policy = RetryPolicy(base_delay=0.1, jitter=0.25, seed=0)
    delays = {policy.delay(0, key=k) for k in range(8)}
    assert len(delays) == 8


def test_zero_base_delay_is_immediate():
    assert RetryPolicy(base_delay=0.0).delay(0, key=1) == 0.0


def test_default_policy_retries():
    assert DEFAULT_RETRY_POLICY.max_attempts == 3
