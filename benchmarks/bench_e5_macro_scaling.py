"""E5 — isolation-limit ablation: converter depth vs macro geometry.

A design law the paper does not state but its structure obeys: every
cell sharing the plate contributes a pre-charged parasitic branch, so
the achievable converter depth over 10–55 fF collapses as the macro
grows.  This bench sweeps tile geometry and reports the deepest feasible
converter, the designed C_REF, and the resulting accuracy at 30 fF —
quantifying why the plate must be segmented into small tiles (and why
the paper's Figure 1 shows a *small* macro-cell).
"""

import math

from conftest import report

from repro.calibration.abacus import Abacus
from repro.calibration.accuracy import accuracy_sweep
from repro.calibration.design import (
    design_structure,
    max_feasible_depth,
    nominal_background,
)
from repro.errors import CalibrationError
from repro.units import fF, to_fF

GEOMETRIES = [(2, 2), (4, 2), (8, 2), (16, 2), (32, 2), (64, 2), (16, 4), (32, 4)]


def bench_e5_macro_scaling(benchmark, tech):
    benchmark.pedantic(
        max_feasible_depth, args=(tech, 16, 2), rounds=3, iterations=1
    )

    lines = [
        f"{'tile':>8}  {'background':>11}  {'max depth':>10}  {'C_REF':>9}  "
        f"{'err @30fF':>10}",
        f"{'(RxC)':>8}  {'(fF)':>11}  {'(steps)':>10}  {'(fF)':>9}  {'':>10}",
    ]
    for rows, cols in GEOMETRIES:
        background = nominal_background(tech, rows, cols)
        depth = max_feasible_depth(tech, rows, cols)
        try:
            structure = design_structure(tech, rows, cols)
            abacus = Abacus.analytic(structure, rows, cols)
            err = accuracy_sweep(abacus).error_at(30 * fF)
            cref = f"{to_fF(structure.c_ref):.1f}"
            err_s = f"{100 * err:.1f} %"
        except CalibrationError:
            cref, err_s = "-", "infeasible"
        depth_s = f"{depth:.1f}" if math.isfinite(depth) else "inf"
        lines.append(
            f"{rows:>4}x{cols:<3}  {to_fF(background):>11.1f}  {depth_s:>10}  "
            f"{cref:>9}  {err_s:>10}"
        )
    lines.append("")
    lines.append("design law: depth falls with plate background; the paper's")
    lines.append("20-step converter needs tiles of at most ~32x2 on this card.")
    report("E5: isolation limit vs macro geometry", "\n".join(lines))

    assert max_feasible_depth(tech, 2, 2) > max_feasible_depth(tech, 64, 2)
    assert max_feasible_depth(tech, 32, 2) > 20 > max_feasible_depth(tech, 64, 2)
