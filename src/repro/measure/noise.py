"""Noise and repeatability analysis of the measurement (extension).

The paper treats the measurement as deterministic; real silicon adds
three stochastic/bias terms that bound the achievable resolution:

1. **kT/C sampling noise.**  Opening PRG at the end of the CHARGE phase
   freezes thermal noise of variance ``kT/C_plate`` onto the plate, and
   closing LEC adds a second ``kT/C_total`` sample.  This is *the*
   fundamental limit of any charge-sharing measurement.
2. **Ramp/comparator jitter.**  The OUT flip instant wanders by the
   sense chain's input-referred noise divided by the drain slew rate —
   modelled as an equivalent current uncertainty ``sigma_i``.
3. **Hold droop (bias).**  Between the SHARE phase and the flip, the
   gate island leaks through the junction/subthreshold paths; with the
   paper's 10 ns phases this is negligible at room temperature, but a
   slew-stretched clock at 125 °C starts to matter — the analysis makes
   that quantitative instead of hand-waved.

:class:`NoiseAnalysis` propagates all three into code-domain and
capacitance-domain sigmas and computes the converter's effective number
of bits (ENOB).  A seeded :meth:`sample_codes` Monte-Carlo provides the
repeatability distribution the benches and tests check against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.calibration.design import nominal_background
from repro.errors import MeasurementError
from repro.measure.structure import MeasurementStructure
from repro.units import BOLTZMANN, fA


@dataclass(frozen=True)
class NoiseBudget:
    """One operating point's noise terms, all referred to capacitance.

    Attributes (farads unless noted):

    - ``sigma_ktc``: kT/C sampling noise,
    - ``sigma_ramp``: comparator/ramp jitter,
    - ``droop_bias``: deterministic hold-droop error (signed),
    - ``sigma_total``: RSS of the random terms,
    - ``sigma_codes``: total random noise in code LSBs (dimensionless).
    """

    sigma_ktc: float
    sigma_ramp: float
    droop_bias: float
    sigma_total: float
    sigma_codes: float


class NoiseAnalysis:
    """Noise propagation for one structure + macro geometry.

    Parameters
    ----------
    structure:
        The measurement structure.
    rows, macro_cols, bitline_rows:
        Macro geometry (sets the plate background and transfer slope).
    sigma_comparator:
        Input-referred RMS noise of the sense chain, volts.
    gate_leak:
        Hold leakage off the plate–gate island during conversion,
        amperes (junction + LEC subthreshold; scale with temperature via
        the technology card).
    """

    def __init__(
        self,
        structure: MeasurementStructure,
        rows: int,
        macro_cols: int,
        bitline_rows: int | None = None,
        sigma_comparator: float = 1.0e-3,
        gate_leak: float = 50.0 * fA,
    ) -> None:
        if sigma_comparator < 0 or gate_leak < 0:
            raise MeasurementError("noise terms must be >= 0")
        self.structure = structure
        self.background = nominal_background(
            structure.tech, rows, macro_cols, bitline_rows
        )
        self.sigma_comparator = sigma_comparator
        self.gate_leak = gate_leak

    # ------------------------------------------------------------------
    # Transfer-chain helpers
    # ------------------------------------------------------------------

    def _vgs(self, cm: float) -> float:
        x = cm + self.background
        return self.structure.tech.vdd * x / (x + self.structure.c_ref_total)

    def _dvgs_dc(self, cm: float) -> float:
        """Transfer slope dV_GS/dC at ``cm``, volts per farad."""
        x = cm + self.background
        creft = self.structure.c_ref_total
        return self.structure.tech.vdd * creft / (x + creft) ** 2

    def _di_dv(self, vgs: float) -> float:
        """REF transconductance at the conversion bias, A/V."""
        h = 1e-4
        return (
            self.structure.ref_sink_current(vgs + h)
            - self.structure.ref_sink_current(vgs - h)
        ) / (2 * h)

    # ------------------------------------------------------------------
    # Budget
    # ------------------------------------------------------------------

    def budget(self, cm: float, temperature_k: float | None = None) -> NoiseBudget:
        """Noise budget for a cell of capacitance ``cm``."""
        tech = self.structure.tech
        t = tech.temperature_k if temperature_k is None else temperature_k
        x = cm + self.background
        c_total = x + self.structure.c_ref_total

        # Two kT/C samples: plate isolation (onto x) and LEC closure
        # (onto the full island); RSS them onto the island voltage, then
        # refer to capacitance through the transfer slope.
        v_ktc = math.sqrt(BOLTZMANN * t / x) if x > 0 else 0.0
        v_ktc2 = math.sqrt(BOLTZMANN * t / c_total)
        # Isolation noise is attenuated by the share ratio x/c_total.
        v_sample = math.hypot(v_ktc * x / c_total, v_ktc2)
        slope = self._dvgs_dc(cm)
        sigma_ktc = v_sample / slope

        # Comparator noise -> equivalent V_GS error via the current path:
        # the flip condition compares I_step with I_sink(V_GS); an input
        # noise v_n on the drain threshold maps through the REF output
        # conductance, conservatively bounded by gm·v_n on the current.
        vgs = self._vgs(cm)
        gm = self._di_dv(vgs)
        sigma_i = gm * self.sigma_comparator
        di_dc = gm * slope
        sigma_ramp = sigma_i / di_dc if di_dc > 0 else float("inf")
        # (gm cancels: ramp jitter referred to C is sigma_comparator/slope;
        # kept explicit for readability.)

        # Hold droop: the island loses gate_leak * t_hold of charge; the
        # worst-case hold is the full conversion phase.
        t_hold = self.structure.design.phase_duration
        droop_v = self.gate_leak * t_hold / c_total
        droop_bias = -droop_v / slope

        sigma_total = math.hypot(sigma_ktc, sigma_ramp)
        # One code spans delta_i of current; refer the noise to codes.
        delta_i = self.structure.design.delta_i
        sigma_codes = sigma_total * di_dc / delta_i
        return NoiseBudget(
            sigma_ktc=sigma_ktc,
            sigma_ramp=sigma_ramp,
            droop_bias=droop_bias,
            sigma_total=sigma_total,
            sigma_codes=sigma_codes,
        )

    def enob(self, cm: float) -> float:
        """Effective number of bits of the converter at ``cm``.

        Combines quantization (one code LSB) with the random noise, over
        the designed range, in the standard ADC sense.
        """
        budget = self.budget(cm)
        lsb_codes = 1.0
        sigma_eff = math.sqrt(lsb_codes**2 / 12.0 + budget.sigma_codes**2)
        full_scale = self.structure.design.num_steps
        if sigma_eff <= 0:
            return float("inf")
        return math.log2(full_scale / (sigma_eff * math.sqrt(12.0)))

    # ------------------------------------------------------------------
    # Monte-Carlo repeatability
    # ------------------------------------------------------------------

    def sample_codes(self, cm: float, draws: int = 200, seed: int = 0) -> np.ndarray:
        """Simulated repeated measurements of one cell (codes)."""
        if draws < 1:
            raise MeasurementError("draws must be >= 1")
        budget = self.budget(cm)
        rng = np.random.default_rng(seed)
        noisy_cm = cm + budget.droop_bias + rng.normal(
            0.0, budget.sigma_total, size=draws
        )
        codes = np.empty(draws, dtype=int)
        for k, value in enumerate(noisy_cm):
            codes[k] = self.structure.code_for_vgs(self._vgs(max(value, 0.0)))
        return codes

    def repeatability_sigma(self, cm: float, draws: int = 300, seed: int = 0) -> float:
        """Observed code sigma across repeated measurements."""
        return float(self.sample_codes(cm, draws, seed).std())
