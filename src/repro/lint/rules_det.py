"""Determinism (DET) rules: nondeterminism that can reach measurement data.

The project's reproducibility contract is bit-exactness: serial, kernel,
parallel and resumed scans of the same array must produce identical
planes, and the run ledger's drift gate assumes two runs with equal
config fingerprints are replays.  Four bug classes silently break that
contract; each gets a rule:

``DET001 wallclock-in-measurement-path``
    ``time.time()`` / ``time.time_ns()`` / ``datetime.now()`` /
    ``datetime.utcnow()`` / ``date.today()`` called inside a measurement
    module.  Wall-clock values differ per run; any one feeding a result
    makes replays diverge.  ``perf_counter`` / ``process_time`` /
    ``monotonic`` are fine — they time runs, they never *are* data.
    Only files under measurement path parts (``measure``, ``circuit``,
    ``edram``, ``kernel``, ``calibration``, ``bitmap``, ``diagnosis``,
    ``wafer``) are checked.  (``# lint: allow-wallclock``)

``DET002 unseeded-rng``
    ``np.random.default_rng()`` / ``np.random.RandomState()`` with no
    seed, any legacy global-state ``np.random.<fn>(...)`` draw, or a
    ``random.<fn>(...)`` module-level draw.  The project idiom is an
    explicitly seeded ``np.random.default_rng(seed)`` Generator —
    anything else produces different values per process and per run,
    and fork-inherited global RNG state is *shared* across workers.
    (``# lint: allow-unseeded-rng``)

``DET003 unordered-reduction``
    A numeric reduction over a ``set`` / ``frozenset`` — ``sum()`` /
    ``math.fsum()`` / ``np.sum()`` over a set expression, or a ``for``
    loop over one accumulating via augmented assignment.  Set iteration
    order depends on insertion history and hash randomization; float
    addition is not associative, so the reduced value changes run to
    run.  Sort first (``sorted(...)``) or reduce over an ordered
    container.  (``# lint: allow-unordered-reduction``)

``DET004 completion-order-accumulation``
    A float accumulation (augmented assignment with a non-integer
    operand) inside a completion-order callback — a function or lambda
    passed as ``on_result=``, or the body of a ``for`` loop over
    ``as_completed(...)`` / ``.imap_unordered(...)``.  Tasks complete in
    scheduler order; accumulating floats in that order makes the total
    depend on pool timing.  Collect then sort (the scan engine's
    ``timings.sort()`` idiom), or accumulate integers (associative).
    (``# lint: allow-order-dependent``)
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.pylint_rules import (
    _is_test_file,
    _line_has_pragma,
    _subject_triple,
)
from repro.lint.registry import rule

#: Path parts marking a module as part of the measurement data path.
MEASUREMENT_PATH_PARTS = frozenset(
    {"measure", "circuit", "edram", "kernel", "calibration", "bitmap",
     "diagnosis", "wafer"}
)

#: ``module.attr`` call chains that read the wall clock.
_WALLCLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("date", "today"),
}

#: Legacy numpy global-state draw functions (``np.random.<fn>``).
_NP_GLOBAL_DRAWS = frozenset(
    {"rand", "randn", "randint", "random", "random_sample", "normal",
     "uniform", "choice", "shuffle", "permutation", "poisson", "binomial",
     "standard_normal", "exponential", "seed"}
)

#: stdlib ``random.<fn>`` module-level draw functions.
_STDLIB_DRAWS = frozenset(
    {"random", "randint", "randrange", "uniform", "choice", "choices",
     "shuffle", "sample", "gauss", "normalvariate", "betavariate",
     "expovariate", "seed"}
)

#: Reduction callables whose set-typed operand is order-dependent.
_REDUCERS = frozenset({"sum", "fsum"})


def _in_measurement_path(path) -> bool:
    parts = set(path.parts) | {path.stem}
    return bool(parts & MEASUREMENT_PATH_PARTS)


def _attr_chain(node: ast.AST) -> tuple[str, ...]:
    """``a.b.c`` -> ("a", "b", "c"); empty tuple if not a pure chain."""
    names: list[str] = []
    while isinstance(node, ast.Attribute):
        names.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        names.append(node.id)
        return tuple(reversed(names))
    return ()


@rule(
    "DET001",
    "wallclock-in-measurement-path",
    target="source",
    summary="wall-clock read inside a measurement module",
)
def check_wallclock_in_measurement_path(
    subject: object, context: dict[str, object]
) -> Iterator[Diagnostic]:
    """Flag wall-clock calls in modules on the measurement data path."""
    tree, path, lines = _subject_triple(subject, context)
    if _is_test_file(path) or not _in_measurement_path(path):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if len(chain) < 2 or chain[-2:] not in {
            (mod, fn) for mod, fn in _WALLCLOCK_CALLS
        }:
            continue
        if _line_has_pragma(lines, node.lineno, "lint: allow-wallclock"):
            continue
        yield check_wallclock_in_measurement_path.diagnostic(
            f"{'.'.join(chain)}() reads the wall clock in a measurement "
            "module; replays diverge if it feeds a result (time runs with "
            "perf_counter/process_time instead)",
            subject=str(path),
            location=f"{path}:{node.lineno}",
        )


def _is_unseeded_rng_call(node: ast.Call) -> str | None:
    """A human name for the offending call, or None when compliant."""
    chain = _attr_chain(node.func)
    if not chain:
        return None
    dotted = ".".join(chain)
    # np.random.default_rng() / RandomState() with no (or None) seed.
    if len(chain) >= 2 and chain[-2] == "random" and chain[-1] in (
        "default_rng", "RandomState", "Generator",
    ):
        if chain[-1] == "Generator":
            return None  # Generator(bit_gen) wraps an explicit bit generator
        seeded = bool(node.args) and not (
            isinstance(node.args[0], ast.Constant) and node.args[0].value is None
        )
        seeded = seeded or any(kw.arg == "seed" for kw in node.keywords)
        return None if seeded else f"{dotted}()"
    # Legacy numpy global draws: np.random.rand(...), numpy.random.seed(...)
    if (
        len(chain) >= 3
        and chain[-2] == "random"
        and chain[0] in ("np", "numpy")
        and chain[-1] in _NP_GLOBAL_DRAWS
    ):
        return f"{dotted}(...)"
    # stdlib module-level draws: random.random(), random.shuffle(...)
    if len(chain) == 2 and chain[0] == "random" and chain[1] in _STDLIB_DRAWS:
        return f"{dotted}(...)"
    return None


@rule(
    "DET002",
    "unseeded-rng",
    target="source",
    summary="RNG use without an explicitly seeded Generator",
)
def check_unseeded_rng(
    subject: object, context: dict[str, object]
) -> Iterator[Diagnostic]:
    """Flag unseeded or global-state randomness in library code."""
    tree, path, lines = _subject_triple(subject, context)
    if _is_test_file(path):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        offender = _is_unseeded_rng_call(node)
        if offender is None:
            continue
        if _line_has_pragma(lines, node.lineno, "lint: allow-unseeded-rng"):
            continue
        yield check_unseeded_rng.diagnostic(
            f"{offender} draws from an unseeded or process-global RNG; use "
            "an explicitly seeded np.random.default_rng(seed) Generator so "
            "runs (and forked workers) replay bit-exact",
            subject=str(path),
            location=f"{path}:{node.lineno}",
        )


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        callee = node.func
        name = (
            callee.id if isinstance(callee, ast.Name)
            else callee.attr if isinstance(callee, ast.Attribute)
            else None
        )
        return name in ("set", "frozenset")
    return False


@rule(
    "DET003",
    "unordered-reduction",
    target="source",
    summary="numeric reduction over unordered set iteration",
)
def check_unordered_reduction(
    subject: object, context: dict[str, object]
) -> Iterator[Diagnostic]:
    """Flag float reductions whose operand order is set-iteration order."""
    tree, path, lines = _subject_triple(subject, context)
    if _is_test_file(path):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            callee = node.func
            name = (
                callee.id if isinstance(callee, ast.Name)
                else callee.attr if isinstance(callee, ast.Attribute)
                else None
            )
            if (
                name in _REDUCERS
                and node.args
                and _is_set_expr(node.args[0])
                and not _line_has_pragma(
                    lines, node.lineno, "lint: allow-unordered-reduction"
                )
            ):
                yield check_unordered_reduction.diagnostic(
                    f"{name}() over a set expression reduces in hash order; "
                    "float addition is not associative — sort first "
                    "(sum(sorted(...)))",
                    subject=str(path),
                    location=f"{path}:{node.lineno}",
                )
        elif isinstance(node, ast.For) and _is_set_expr(node.iter):
            accumulates = any(
                isinstance(child, ast.AugAssign)
                for stmt in node.body
                for child in ast.walk(stmt)
            )
            if accumulates and not _line_has_pragma(
                lines, node.lineno, "lint: allow-unordered-reduction"
            ):
                yield check_unordered_reduction.diagnostic(
                    "for-loop over a set accumulates via augmented "
                    "assignment; iteration order is unordered — iterate "
                    "sorted(...) instead",
                    subject=str(path),
                    location=f"{path}:{node.lineno}",
                )


def _is_integer_step(value: ast.expr) -> bool:
    """True when the accumulated operand is an integer literal (associative)."""
    if isinstance(value, ast.Constant):
        return isinstance(value.value, int) and not isinstance(value.value, bool)
    if isinstance(value, ast.UnaryOp) and isinstance(value.operand, ast.Constant):
        return isinstance(value.operand.value, int)
    return False


def _float_accumulations(body: list[ast.stmt] | ast.AST) -> Iterator[ast.AugAssign]:
    nodes = body if isinstance(body, list) else [body]
    for stmt in nodes:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.AugAssign)
                and isinstance(node.op, (ast.Add, ast.Sub))
                and not _is_integer_step(node.value)
            ):
                yield node


def _is_unordered_completion_iter(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    callee = node.func
    name = (
        callee.id if isinstance(callee, ast.Name)
        else callee.attr if isinstance(callee, ast.Attribute)
        else None
    )
    return name in ("as_completed", "imap_unordered")


@rule(
    "DET004",
    "completion-order-accumulation",
    target="source",
    summary="float accumulation ordered by task completion order",
)
def check_completion_order_accumulation(
    subject: object, context: dict[str, object]
) -> Iterator[Diagnostic]:
    """Flag float ``+=`` inside completion-order callbacks and loops.

    Covers functions passed as ``on_result=`` (the supervised pool's
    completion hook) and loop bodies over ``as_completed(...)`` /
    ``.imap_unordered(...)``.  Integer counters are associative and
    stay legal; collect-then-sort is the deterministic alternative.
    """
    tree, path, lines = _subject_triple(subject, context)
    if _is_test_file(path):
        return
    functions = {
        node.name: node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    callback_bodies: list[tuple[str, ast.AST]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            for kw in node.keywords:
                if kw.arg != "on_result":
                    continue
                if isinstance(kw.value, ast.Lambda):
                    callback_bodies.append(("on_result lambda", kw.value.body))
                elif isinstance(kw.value, ast.Name) and kw.value.id in functions:
                    callback_bodies.append(
                        (f"on_result callback {kw.value.id}()",
                         functions[kw.value.id]),
                    )
        elif isinstance(node, ast.For) and _is_unordered_completion_iter(node.iter):
            callback_bodies.append(("loop over unordered completions", node))
    seen: set[int] = set()
    for label, body in callback_bodies:
        for aug in _float_accumulations(
            body.body if isinstance(body, (ast.FunctionDef, ast.AsyncFunctionDef, ast.For)) else body
        ):
            if aug.lineno in seen:
                continue
            seen.add(aug.lineno)
            if _line_has_pragma(lines, aug.lineno, "lint: allow-order-dependent"):
                continue
            yield check_completion_order_accumulation.diagnostic(
                f"float accumulation inside {label} runs in task completion "
                "order; the total depends on pool timing — collect results "
                "and reduce in index order instead",
                subject=str(path),
                location=f"{path}:{aug.lineno}",
            )
