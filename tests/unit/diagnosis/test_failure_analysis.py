"""Signature -> root cause mapping."""

import numpy as np
import pytest

from repro.diagnosis.classifier import CellVerdict
from repro.diagnosis.failure_analysis import FailureAnalyzer, RootCause
from repro.errors import DiagnosisError


def _verdicts(shape=(8, 8), **cells):
    """Build a verdict matrix: kwargs like v_3_4=CellVerdict.SHORT."""
    m = np.full(shape, CellVerdict.IN_SPEC, dtype=object)
    for key, verdict in cells.items():
        _, r, c = key.split("_")
        m[int(r), int(c)] = verdict
    return m


def test_no_anomalies():
    analyzer = FailureAnalyzer()
    assert analyzer.analyze(_verdicts()) == []
    assert analyzer.report([]) == "no anomalies found"


def test_single_short_root_caused():
    findings = FailureAnalyzer().analyze(_verdicts(v_2_2=CellVerdict.SHORT))
    assert len(findings) == 1
    assert findings[0].cause is RootCause.CAPACITOR_SHORT


def test_single_open_root_caused():
    findings = FailureAnalyzer().analyze(_verdicts(v_2_2=CellVerdict.OPEN_OR_UNDER))
    assert findings[0].cause is RootCause.CAPACITOR_OPEN


def test_thin_spot():
    findings = FailureAnalyzer().analyze(_verdicts(v_2_2=CellVerdict.LOW_CAP))
    assert findings[0].cause is RootCause.THIN_DIELECTRIC_SPOT


def test_bridge_pair():
    findings = FailureAnalyzer().analyze(
        _verdicts(v_2_2=CellVerdict.OVER_RANGE, v_2_3=CellVerdict.OVER_RANGE)
    )
    assert findings[0].cause is RootCause.STORAGE_BRIDGE


def test_row_defect():
    cells = {f"v_5_{c}": CellVerdict.OPEN_OR_UNDER for c in range(8)}
    findings = FailureAnalyzer().analyze(_verdicts(**cells))
    assert findings[0].cause is RootCause.WORDLINE_DEFECT


def test_column_defect():
    cells = {f"v_{r}_3": CellVerdict.LOW_CAP for r in range(8)}
    findings = FailureAnalyzer().analyze(_verdicts(**cells))
    assert findings[0].cause is RootCause.BITLINE_DEFECT


def test_cluster_of_low_cells():
    cells = {
        f"v_{r}_{c}": CellVerdict.LOW_CAP for r in range(2, 5) for c in range(2, 5)
    }
    findings = FailureAnalyzer().analyze(_verdicts(**cells))
    assert findings[0].cause is RootCause.PARTICLE_CLUSTER


def test_unmapped_combination_is_unknown():
    # An over-range full row has no rule.
    cells = {f"v_5_{c}": CellVerdict.OVER_RANGE for c in range(8)}
    findings = FailureAnalyzer().analyze(_verdicts(**cells))
    assert findings[0].cause is RootCause.UNKNOWN


def test_dominant_verdict_wins():
    cells = {f"v_{r}_{c}": CellVerdict.LOW_CAP for r in range(2, 5) for c in range(2, 5)}
    cells["v_3_3"] = CellVerdict.OPEN_OR_UNDER  # minority inside the blob
    findings = FailureAnalyzer().analyze(_verdicts(**cells))
    assert findings[0].dominant_verdict is CellVerdict.LOW_CAP


def test_describe_and_report():
    findings = FailureAnalyzer().analyze(_verdicts(v_1_1=CellVerdict.SHORT))
    text = FailureAnalyzer().report(findings)
    assert "single_cell" in text
    assert "capacitor_dielectric_short" in text


def test_validation():
    with pytest.raises(DiagnosisError):
        FailureAnalyzer().analyze(np.array([CellVerdict.IN_SPEC]))
