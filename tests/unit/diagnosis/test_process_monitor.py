"""Process monitoring statistics."""

import pytest

from repro.bitmap.analog import AnalogBitmap
from repro.diagnosis.process_monitor import ProcessMonitor
from repro.edram.array import EDRAMArray
from repro.edram.variation_map import (
    compose_maps,
    linear_tilt_map,
    mismatch_map,
    uniform_map,
)
from repro.errors import DiagnosisError
from repro.measure.scan import ArrayScanner
from repro.units import fF


@pytest.fixture(scope="module")
def monitor():
    return ProcessMonitor(spec_lo=24 * fF, spec_hi=36 * fF)


def _bitmap(tech, structure, abacus, mean=30 * fF, sigma=1 * fF, tilt=0.0, seed=0):
    shape = (8, 4)
    cap = compose_maps(
        uniform_map(shape, mean),
        mismatch_map(shape, sigma, seed=seed),
        linear_tilt_map(shape, col_slope=tilt),
    )
    arr = EDRAMArray(8, 4, tech=None, macro_cols=2, capacitance_map=cap)
    return AnalogBitmap(ArrayScanner(arr, structure).scan(), abacus)


def test_validation():
    with pytest.raises(DiagnosisError):
        ProcessMonitor(spec_lo=36 * fF, spec_hi=24 * fF)


def test_healthy_report(monitor, tech, structure_8x2, abacus_8x2):
    report = monitor.report(_bitmap(tech, structure_8x2, abacus_8x2))
    assert report.mean == pytest.approx(30 * fF, rel=0.05)
    assert report.cpk > 0.5
    assert report.in_range_fraction == 1.0
    assert "Cpk" in report.summary()


def test_cpk_penalizes_off_centre_process(monitor, tech, structure_8x2, abacus_8x2):
    centred = monitor.report(_bitmap(tech, structure_8x2, abacus_8x2, mean=30 * fF))
    skewed = monitor.report(_bitmap(tech, structure_8x2, abacus_8x2, mean=26 * fF))
    assert skewed.cpk < centred.cpk


def test_drift_detection(monitor, tech, structure_8x2, abacus_8x2):
    stable = [
        _bitmap(tech, structure_8x2, abacus_8x2, mean=30 * fF, seed=s)
        for s in range(3)
    ]
    assert not monitor.detect_drift(stable)
    drifting = stable + [
        _bitmap(tech, structure_8x2, abacus_8x2, mean=24 * fF, seed=9)
    ]
    assert monitor.detect_drift(drifting)


def test_drift_series_shape(monitor, tech, structure_8x2, abacus_8x2):
    bitmaps = [_bitmap(tech, structure_8x2, abacus_8x2, seed=s) for s in range(3)]
    series = monitor.drift_series(bitmaps)
    assert series.shape == (3,)


def test_drift_validation(monitor, tech, structure_8x2, abacus_8x2):
    with pytest.raises(DiagnosisError):
        monitor.drift_series([])
    with pytest.raises(DiagnosisError):
        monitor.detect_drift([_bitmap(tech, structure_8x2, abacus_8x2)])


def test_failing_fraction(monitor, tech, structure_8x2, abacus_8x2):
    healthy = monitor.failing_fraction(_bitmap(tech, structure_8x2, abacus_8x2))
    assert healthy < 0.2
    shifted = monitor.failing_fraction(
        _bitmap(tech, structure_8x2, abacus_8x2, mean=22 * fF)
    )
    assert shifted > 0.8


class TestSampleSizePlanning:
    def test_formula(self, monitor):
        from repro.units import fF

        n = monitor.samples_needed(drift_to_detect=1 * fF, cell_sigma=2 * fF,
                                   confidence_sigma=3.0)
        assert n == 36  # (3*2/1)^2

    def test_smaller_drift_needs_more_samples(self, monitor):
        from repro.units import fF

        big = monitor.samples_needed(2 * fF, 2 * fF)
        small = monitor.samples_needed(0.5 * fF, 2 * fF)
        assert small > big

    def test_validation(self, monitor):
        import pytest as _pytest
        from repro.errors import DiagnosisError

        with _pytest.raises(DiagnosisError):
            monitor.samples_needed(0.0, 1.0)
        with _pytest.raises(DiagnosisError):
            monitor.samples_needed(1.0, 1.0, confidence_sigma=0.0)
