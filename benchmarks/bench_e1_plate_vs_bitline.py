"""E1 — plate-node vs bitline-node measurement (the paper's motivation).

The paper connects its structure to the plate "to delete capacitance
noise measurement due to the parasitic bit-line capacitance".  This
ablation quantifies the comparison on arrays of increasing height, where
bitlines (which must span the full column) grow but plate tiles (freely
segmentable) do not:

- **achievable converter depth** over 10–55 fF under the drain-slew
  constraint,
- **capacitance extraction error from ±10 % C_BL mis-knowledge** — the
  paper's "capacitance noise",
- **extraction error from 10 mV REF threshold mismatch**.
"""

from conftest import report

from repro.baselines.bitline_measure import BitlineMeasurement
from repro.calibration.design import design_structure, max_feasible_depth
from repro.calibration.sensitivity import plate_error_from_cbl, plate_error_from_vth
from repro.edram.array import EDRAMArray
from repro.units import fF, to_fF

TILE_ROWS = 16
MACRO_COLS = 2


def _compare_at_height(tech, rows):
    array = EDRAMArray(rows, 4, tech=tech, macro_cols=MACRO_COLS,
                       macro_rows=min(TILE_ROWS, rows))
    tile_rows = min(TILE_ROWS, rows)
    structure = design_structure(tech, tile_rows, MACRO_COLS, bitline_rows=rows)
    bitline = BitlineMeasurement(array)
    plate_depth = max_feasible_depth(tech, tile_rows, MACRO_COLS, bitline_rows=rows)
    return {
        "rows": rows,
        "plate_depth": plate_depth,
        "bl_depth": bitline.achievable_depth,
        "plate_cbl_err": plate_error_from_cbl(
            structure, tile_rows, MACRO_COLS, bitline_rows=rows
        ),
        "bl_cbl_err": bitline.capacitance_error_from_cbl(30 * fF),
        "plate_vth_err": plate_error_from_vth(
            structure, tile_rows, MACRO_COLS, bitline_rows=rows
        ),
        "bl_vth_err": bitline.capacitance_error_from_vth(30 * fF),
    }


def bench_e1_plate_vs_bitline(benchmark, tech):
    heights = (32, 128, 256, 512)
    rows_data = [_compare_at_height(tech, rows) for rows in heights]
    benchmark.pedantic(_compare_at_height, args=(tech, 128), rounds=2, iterations=1)

    lines = [
        "plate tiles of 16x2; bitlines span the full column height.",
        "",
        f"{'height':>7} | {'depth (steps)':>20} | {'CBL+-10% err (fF)':>20} | "
        f"{'VTH 10mV err (fF)':>20}",
        f"{'(rows)':>7} | {'plate':>9} {'bitline':>10} | {'plate':>9} "
        f"{'bitline':>10} | {'plate':>9} {'bitline':>10}",
    ]
    for d in rows_data:
        lines.append(
            f"{d['rows']:>7} | {min(d['plate_depth'], 999):>9.0f} "
            f"{min(d['bl_depth'], 999):>10.1f} | "
            f"{to_fF(d['plate_cbl_err']):>9.2f} {to_fF(d['bl_cbl_err']):>10.2f} | "
            f"{to_fF(d['plate_vth_err']):>9.2f} {to_fF(d['bl_vth_err']):>10.2f}"
        )
    lines.append("")
    lines.append("shape check: the bitline method's C_BL-noise error (the paper's")
    lines.append("stated problem) is several times the plate method's at every")
    lines.append("height, and grows with the column; the plate method's depth")
    lines.append("stays at the designed 20 steps because the plate is segmentable.")
    report("E1: plate-node vs bitline-node measurement", "\n".join(lines))

    for d in rows_data:
        # The plate method is always more robust to C_BL noise; the gap
        # widens with column height (shortest columns: ~2x, tall: >4x).
        assert d["bl_cbl_err"] > 1.5 * d["plate_cbl_err"]
        assert d["plate_depth"] > 20
    assert rows_data[-1]["bl_cbl_err"] > 4 * rows_data[-1]["plate_cbl_err"]
    # The bitline's CBL-noise error grows with the column height.
    assert rows_data[-1]["bl_cbl_err"] > rows_data[0]["bl_cbl_err"]
