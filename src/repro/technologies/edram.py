"""The default backend: the paper's 1T1C eDRAM stack.

This is a thin re-registration of the existing :mod:`repro.edram` /
:mod:`repro.tech` machinery behind the :class:`CellTechnology` seam.
Its construction recipes are **bit-exact** with the historical direct
paths (the CLI's array synthesis, the wafer model's die fabrication,
the scanner's default structure) — pinned by property tests — so moving
callers onto the registry changes no data.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.technologies.base import CellTechnology
from repro.units import fF

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.edram.array import EDRAMArray
    from repro.tech.parameters import TechnologyCard


class EDRAMTechnology(CellTechnology):
    """1T1C eDRAM per the source paper (DATE 2005)."""

    name = "edram"
    display = "1T1C eDRAM, 0.18 um (the paper's technology)"
    headline = "capacitance"
    reference = "DATE 2005 (source paper)"
    uses_kernel = True
    mismatch_sigma = 0.8 * fF

    def __init__(self, card: "TechnologyCard | None" = None) -> None:
        self._card = card

    def base_card(self) -> "TechnologyCard":
        from repro.tech.parameters import default_technology

        return self._card if self._card is not None else default_technology()

    def with_card(self, card: "TechnologyCard") -> "EDRAMTechnology":
        """A variant backend pinned to a specific technology card.

        The :func:`~repro.wafer.WaferModel` deprecation shim forwards
        legacy ``tech=TechnologyCard`` arguments through here.
        """
        return EDRAMTechnology(card)

    def build_array(
        self,
        rows: int,
        cols: int,
        *,
        macro_rows: int | None = None,
        macro_cols: int = 2,
        seed: int = 0,
        nominal: float | None = None,
        with_defects: bool = False,
        tech: "TechnologyCard | None" = None,
    ) -> "EDRAMArray":
        from repro.edram.array import EDRAMArray
        from repro.edram.variation_map import (
            compose_maps,
            mismatch_map,
            uniform_map,
        )

        card = tech if tech is not None else self.base_card()
        if nominal is None:
            nominal = card.cell_capacitance
        shape = (rows, cols)
        capacitance = compose_maps(
            uniform_map(shape, nominal),
            mismatch_map(shape, self.mismatch_sigma, seed=seed),
        )
        array = EDRAMArray(
            rows, cols, tech=card, macro_cols=macro_cols,
            macro_rows=macro_rows, capacitance_map=capacitance,
        )
        if with_defects:
            self.inject_defects(array, seed)
        return array

    def measurement_range(self) -> tuple[float, float, int]:
        # The paper's sentence: "scaled in a range of eDRAM capacitor of
        # 10 fF – 55 fF", 20 converter steps.
        return (10.0 * fF, 55.0 * fF, 20)

    def spec_window(self) -> tuple[float, float]:
        # The historical diagnose CLI window: 24–36 fF around the 30 fF
        # nominal.
        return (24.0 * fF, 36.0 * fF)
