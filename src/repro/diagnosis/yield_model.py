"""Yield modelling with redundancy repair (extension).

Connects the diagnosis/repair machinery to the number a fab actually
optimizes: die yield.  Defects are drawn from the classical Poisson
model (``Y₀ = exp(−A·D₀)`` without repair); the simulator then scores
how much yield the spare rows/columns buy, and how much *more* they buy
when the analog bitmap lets BISR retire marginal (parametrically
failing) cells before they become field returns.

This is Monte-Carlo over synthesized dies using the real pipeline
components (defect injector, scanner, repair planner), not a closed-form
shortcut — so interactions like two defects sharing a row are captured
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitmap.analog import AnalogBitmap
from repro.calibration.abacus import Abacus
from repro.calibration.design import design_structure
from repro.calibration.window import SpecificationWindow
from repro.diagnosis.repair import RepairPlanner
from repro.edram.array import EDRAMArray
from repro.edram.defects import DefectInjector, DefectKind
from repro.edram.variation_map import compose_maps, mismatch_map, uniform_map
from repro.errors import DiagnosisError
from repro.measure.scan import ArrayScanner
from repro.tech.parameters import TechnologyCard, default_technology
from repro.units import fF


@dataclass(frozen=True)
class YieldResult:
    """Monte-Carlo yield estimates over one defect density."""

    defects_per_die: float
    dies: int
    yield_no_repair: float
    yield_hard_repair: float
    yield_analog_repair: float
    field_risks_left: float  # marginal cells/die surviving hard-only repair

    def summary(self) -> str:
        """One-line rendering."""
        return (
            f"lambda={self.defects_per_die:4.1f}: "
            f"no repair {100 * self.yield_no_repair:5.1f} %, "
            f"hard-fail repair {100 * self.yield_hard_repair:5.1f} %, "
            f"analog-aware repair {100 * self.yield_analog_repair:5.1f} % "
            f"(marginal cells left behind by hard-only: "
            f"{self.field_risks_left:.2f}/die)"
        )


class YieldSimulator:
    """Monte-Carlo die yield with and without analog-aware repair.

    Parameters
    ----------
    rows, cols, macro_rows, macro_cols:
        Die array geometry.
    spare_rows, spare_cols:
        Redundancy budget.
    hard_fraction:
        Fraction of defects that are hard faults (short/open); the rest
        are marginal LOW_CAP cells that pass functional test.
    spec_lo, spec_hi:
        Capacitance specification for the analog screen, farads.
    """

    def __init__(
        self,
        rows: int = 32,
        cols: int = 16,
        macro_rows: int = 8,
        macro_cols: int = 2,
        spare_rows: int = 2,
        spare_cols: int = 2,
        hard_fraction: float = 0.5,
        spec_lo: float = 24 * fF,
        spec_hi: float = 36 * fF,
        tech: TechnologyCard | None = None,
    ) -> None:
        if not 0.0 <= hard_fraction <= 1.0:
            raise DiagnosisError("hard_fraction must be in [0, 1]")
        self.rows, self.cols = rows, cols
        self.macro_rows, self.macro_cols = macro_rows, macro_cols
        self.spare_rows, self.spare_cols = spare_rows, spare_cols
        self.hard_fraction = hard_fraction
        self.spec_lo, self.spec_hi = spec_lo, spec_hi
        self.tech = tech if tech is not None else default_technology()
        self.structure = design_structure(
            self.tech, macro_rows, macro_cols, bitline_rows=rows
        )
        self.abacus = Abacus.analytic(
            self.structure, macro_rows, macro_cols, bitline_rows=rows
        )
        self.window = SpecificationWindow.from_capacitance(
            self.abacus, spec_lo, spec_hi
        )

    # ------------------------------------------------------------------
    # One die
    # ------------------------------------------------------------------

    def _synthesize_die(self, lam: float, rng: np.random.Generator) -> tuple[EDRAMArray, int]:
        capacitance = compose_maps(
            uniform_map((self.rows, self.cols), 30 * fF),
            mismatch_map((self.rows, self.cols), 0.6 * fF,
                         seed=int(rng.integers(1 << 31))),
        )
        array = EDRAMArray(
            self.rows, self.cols, tech=self.tech,
            macro_cols=self.macro_cols, macro_rows=self.macro_rows,
            capacitance_map=capacitance,
        )
        injector = DefectInjector(array, seed=int(rng.integers(1 << 31)))
        count = int(rng.poisson(lam))
        count = min(count, array.num_cells // 4)
        hard = int(round(count * self.hard_fraction))
        if hard:
            split = hard // 2
            injector.scatter(DefectKind.SHORT, split)
            injector.scatter(DefectKind.OPEN, hard - split)
        if count - hard:
            injector.scatter(DefectKind.LOW_CAP, count - hard, factor=0.6)
        return array, count

    def _score_die(self, array: EDRAMArray) -> tuple[bool, bool, bool, int]:
        """(good_unrepaired, good_hard_repair, good_analog_repair, leftovers)."""
        bitmap = AnalogBitmap(
            ArrayScanner(array, self.structure).scan(), self.abacus
        )
        analog_flags = bitmap.out_of_spec(self.window)
        # Hard fails: shorts/opens (what functional test catches).
        hard_flags = np.zeros_like(analog_flags)
        for row, col in array.defect_locations():
            cell = array.cell(row, col)
            if cell.has_defect(DefectKind.SHORT) or cell.has_defect(DefectKind.OPEN):
                hard_flags[row, col] = True

        planner = RepairPlanner(self.spare_rows, self.spare_cols)
        good_unrepaired = not hard_flags.any() and not analog_flags.any()
        hard_plan = planner.plan(hard_flags)
        analog_plan = planner.plan(hard_flags | analog_flags)
        # Marginal cells left unretired by the hard-only plan.
        leftovers = int(
            (analog_flags & ~hard_flags
             & ~np.array([[hard_plan.covers(r, c) for c in range(self.cols)]
                          for r in range(self.rows)])).sum()
        )
        return good_unrepaired, hard_plan.success, analog_plan.success, leftovers

    # ------------------------------------------------------------------
    # Campaign
    # ------------------------------------------------------------------

    def run(self, defects_per_die: float, dies: int = 40, seed: int = 0) -> YieldResult:
        """Simulate ``dies`` dies at one Poisson defect density."""
        if defects_per_die < 0:
            raise DiagnosisError("defects_per_die must be >= 0")
        if dies < 1:
            raise DiagnosisError("dies must be >= 1")
        rng = np.random.default_rng(seed)
        ok_plain = ok_hard = ok_analog = 0
        leftovers_total = 0
        for _ in range(dies):
            array, _count = self._synthesize_die(defects_per_die, rng)
            plain, hard, analog, leftovers = self._score_die(array)
            ok_plain += plain
            ok_hard += hard
            ok_analog += analog
            leftovers_total += leftovers
        return YieldResult(
            defects_per_die=defects_per_die,
            dies=dies,
            yield_no_repair=ok_plain / dies,
            yield_hard_repair=ok_hard / dies,
            yield_analog_repair=ok_analog / dies,
            field_risks_left=leftovers_total / dies,
        )

    def sweep(self, densities: list[float], dies: int = 40, seed: int = 0) -> list[YieldResult]:
        """Yield curve across defect densities."""
        return [
            self.run(lam, dies=dies, seed=seed + k)
            for k, lam in enumerate(densities)
        ]
