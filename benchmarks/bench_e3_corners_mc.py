"""E3 — robustness across process corners and Monte-Carlo mismatch.

Industrial context the paper implies but does not evaluate: the
structure itself is fabricated in the same drifting process it
monitors.  This bench regenerates the abacus at every device corner and
draws Monte-Carlo samples of the technology card, reporting the code a
nominal 30 fF cell produces in each case — i.e. how much of the code
spread budget the *instrument* consumes.  A per-corner abacus (the
paper's "set of simulations" redone per lot) recovers the accuracy.
"""

import numpy as np
from conftest import report

from repro.calibration.abacus import Abacus
from repro.calibration.design import design_structure
from repro.edram.array import EDRAMArray
from repro.measure.scan import ArrayScanner
from repro.measure.structure import MeasurementStructure
from repro.tech.corners import Corner, corner_technology
from repro.tech.variation import MonteCarloSampler, VariationModel
from repro.units import fF, to_fF


def _code_at_30ff(tech, structure):
    array = EDRAMArray(2, 2, tech=tech)
    scanner = ArrayScanner(array, structure)
    return int(scanner.scan().codes[0, 0])


def bench_e3_corners_and_mc(benchmark, tech, structure_2x2):
    nominal_design = structure_2x2.design

    lines = ["corner sweep (30 fF cell, fixed TT-designed structure vs re-calibrated):", "",
             f"{'corner':>7}  {'code (TT abacus)':>17}  {'estimate err (fF)':>18}  "
             f"{'code (corner abacus)':>21}"]
    tt_abacus = Abacus.analytic(structure_2x2, 2, 2)
    for corner in Corner:
        card = corner_technology(corner, tech)
        structure = MeasurementStructure(card, nominal_design)
        code = _code_at_30ff(card, structure)
        est = tt_abacus.estimate(code) if 0 < code < 20 else None
        err = to_fF(abs(est - card.cell_capacitance)) if est else float("nan")
        corner_abacus = Abacus.analytic(structure, 2, 2)
        c_code = corner_abacus.code_for_capacitance(card.cell_capacitance)
        lines.append(
            f"{str(corner):>7}  {code:>17}  {err:>18.2f}  {c_code:>21}"
        )

    def mc_codes(n):
        sampler = MonteCarloSampler(tech, VariationModel(sigma_cell_cap=0.0), seed=3)
        codes = []
        for card in sampler.samples(n):
            structure = MeasurementStructure(card, nominal_design)
            codes.append(_code_at_30ff(card, structure))
        return np.array(codes)

    codes = benchmark.pedantic(mc_codes, args=(60,), rounds=1, iterations=1)
    lines.append("")
    lines.append(
        "Monte-Carlo (60 dies, device mismatch only, cell fixed at 30 fF):"
    )
    lines.append(
        f"  code at 30 fF: mean {codes.mean():.2f}, sigma {codes.std():.2f}, "
        f"range {codes.min()}..{codes.max()}"
    )
    lines.append("")
    lines.append("takeaway: instrument-induced spread is a ~1-2 code effect; a")
    lines.append("per-corner abacus recentres the estimate (re-simulating the")
    lines.append("abacus per process split, as the paper's methodology implies).")
    report("E3: corner and mismatch robustness", "\n".join(lines))

    assert codes.std() < 3.0
    assert 1 <= codes.mean() <= 19
