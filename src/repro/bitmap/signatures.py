"""Signature categorization of bitmap anomalies.

"This signatures categorization might be very useful to characterize
process and defect impact on the array" (paper §2).  Given a boolean
anomaly mask (from either bitmap flavour), :func:`categorize` groups it
into spatial signatures whose shapes point at physical causes:

=============  ==========================================================
signature      typical physical cause
=============  ==========================================================
SINGLE_CELL    point defect (capacitor short/open, particle at one cell)
PAIRED_CELLS   two adjacent cells — storage-node bridge
ROW            wordline-level flaw (poly defect, driver fail)
COLUMN         bitline-level flaw (contact chain, sense-amp input)
CLUSTER        localized process flaw (particle cluster, scratch)
=============  ==========================================================

Gradients are not visible in a boolean mask at all; they are extracted
from the analog *values* by :func:`fit_gradient` — one of the paper's
arguments for the analog bitmap.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.bitmap.cluster import ClusterStats, cluster_stats, connected_components
from repro.errors import DiagnosisError


class SignatureKind(enum.Enum):
    """Spatial classes of bitmap anomalies."""

    SINGLE_CELL = "single_cell"
    PAIRED_CELLS = "paired_cells"
    ROW = "row"
    COLUMN = "column"
    CLUSTER = "cluster"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Signature:
    """One categorized anomaly group."""

    kind: SignatureKind
    cells: frozenset[tuple[int, int]]
    stats: ClusterStats

    @property
    def size(self) -> int:
        """Number of cells in the signature."""
        return len(self.cells)


def _classify_component(
    component: set[tuple[int, int]],
    shape: tuple[int, int],
    line_fraction: float,
) -> Signature:
    stats = cluster_stats(component)
    rows, cols = shape
    kind = SignatureKind.CLUSTER
    if stats.size == 1:
        kind = SignatureKind.SINGLE_CELL
    elif stats.size == 2 and stats.height == 1 and stats.width == 2:
        kind = SignatureKind.PAIRED_CELLS
    elif stats.height == 1 and stats.size >= line_fraction * cols:
        kind = SignatureKind.ROW
    elif stats.width == 1 and stats.size >= line_fraction * rows:
        kind = SignatureKind.COLUMN
    return Signature(kind=kind, cells=frozenset(component), stats=stats)


def categorize(
    mask: np.ndarray, line_fraction: float = 0.6
) -> list[Signature]:
    """Categorize every connected anomaly group in ``mask``.

    ``line_fraction`` is the fraction of a full row/column a straight
    component must cover to count as a ROW/COLUMN signature.
    Returns signatures largest-first.
    """
    mask = np.asarray(mask)
    if mask.ndim != 2 or mask.dtype != bool:
        raise DiagnosisError("mask must be a 2-D boolean array")
    if not 0 < line_fraction <= 1:
        raise DiagnosisError(f"line_fraction must be in (0, 1], got {line_fraction}")
    return [
        _classify_component(comp, mask.shape, line_fraction)
        for comp in connected_components(mask)
    ]


def signature_counts(signatures: list[Signature]) -> dict[SignatureKind, int]:
    """Histogram of signature kinds."""
    counts: dict[SignatureKind, int] = {}
    for sig in signatures:
        counts[sig.kind] = counts.get(sig.kind, 0) + 1
    return counts


# ---------------------------------------------------------------------------
# Gradient extraction (analog-only capability)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GradientReport:
    """Least-squares plane fit through the analog estimates.

    ``row_slope``/``col_slope`` are in farads per cell; ``extent`` is the
    total planar variation corner-to-corner; ``residual_sigma`` is the
    RMS deviation from the plane; ``significant`` compares the extent
    against the residual noise.
    """

    mean: float
    row_slope: float
    col_slope: float
    residual_sigma: float
    shape: tuple[int, int]

    @property
    def extent(self) -> float:
        """Corner-to-corner planar variation, farads."""
        rows, cols = self.shape
        return abs(self.row_slope) * (rows - 1) + abs(self.col_slope) * (cols - 1)

    @property
    def significant(self) -> bool:
        """True when the tilt rises clearly above residual noise."""
        return self.extent > 3.0 * self.residual_sigma


def fit_gradient(estimates: np.ndarray) -> GradientReport:
    """Fit ``c(r, q) = mean + a·r + b·q`` to an estimate matrix.

    NaN entries (out-of-range cells) are excluded from the fit.  Raises
    when fewer than three finite cells remain.
    """
    estimates = np.asarray(estimates, dtype=float)
    if estimates.ndim != 2:
        raise DiagnosisError("estimates must be a 2-D array")
    rows, cols = estimates.shape
    rr, cc = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    finite = np.isfinite(estimates)
    if int(finite.sum()) < 3:
        raise DiagnosisError("need at least 3 finite cells to fit a gradient")
    r = rr[finite] - (rows - 1) / 2.0
    c = cc[finite] - (cols - 1) / 2.0
    z = estimates[finite]
    design = np.column_stack([np.ones_like(r), r, c])
    coeffs, *_ = np.linalg.lstsq(design, z, rcond=None)
    residual = z - design @ coeffs
    return GradientReport(
        mean=float(coeffs[0]),
        row_slope=float(coeffs[1]),
        col_slope=float(coeffs[2]),
        residual_sigma=float(residual.std()),
        shape=(rows, cols),
    )
