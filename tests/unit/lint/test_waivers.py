"""Waiver files: matching, expiry, and the WVR001 expired-waiver warning."""

import json
from datetime import date

import pytest

from repro.errors import LintError
from repro.lint import LintReport, Waiver, apply_waivers, load_waivers
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.waivers import EXPIRED_WAIVER_CODE

TODAY = date(2026, 6, 1)


def _finding(code="PY002", location="src/mod.py:7", subject="src/mod.py"):
    return Diagnostic(
        code=code, slug="bare-assert", severity=Severity.ERROR,
        message="assert used as runtime validation",
        subject=subject, location=location,
    )


def test_waiver_requires_code():
    with pytest.raises(LintError, match="code"):
        Waiver(code="")


def test_waiver_rejects_malformed_expiry():
    with pytest.raises(LintError, match="YYYY-MM-DD"):
        Waiver(code="PY002", expires="June 2026")


def test_waiver_matches_code_and_location_substring():
    waiver = Waiver(code="PY002", location="mod.py")
    assert waiver.matches(_finding())
    assert not waiver.matches(_finding(code="PY001"))
    assert not waiver.matches(_finding(location="src/other.py:3",
                                       subject="src/other.py"))


def test_live_waiver_marks_finding_waived():
    report = LintReport([_finding()])
    apply_waivers(report, [Waiver(code="PY002", expires="2026-12-31")],
                  today=TODAY)
    assert report.ok
    assert report.exit_code == 0
    d = next(iter(report))
    assert d.waived
    # Waived findings stay in the report for audit.
    assert len(report) == 1


def test_expired_waiver_stops_suppressing_and_warns():
    report = LintReport([_finding()])
    apply_waivers(report, [Waiver(code="PY002", expires="2026-01-01",
                                  reason="migration window")],
                  today=TODAY)
    # The finding is back to being a live error...
    assert not report.ok
    assert report.exit_code == 1
    # ...and the expired waiver surfaces as a WVR001 warning.
    warnings = report.warnings
    assert len(warnings) == 1
    w = warnings[0]
    assert w.code == EXPIRED_WAIVER_CODE
    assert "expired 2026-01-01" in w.message
    assert "still matching 1 finding(s)" in w.message
    assert "migration window" in w.message


def test_stale_expired_waiver_matching_nothing_still_warns():
    report = LintReport()
    apply_waivers(report, [Waiver(code="CCY003", expires="2025-01-01")],
                  today=TODAY)
    assert len(report.warnings) == 1
    assert "matching nothing (stale entry)" in report.warnings[0].message


def test_waiver_without_expiry_never_expires():
    waiver = Waiver(code="PY002")
    assert not waiver.expired(date(2999, 1, 1))


def test_load_waivers_roundtrip(tmp_path):
    path = tmp_path / "waivers.json"
    path.write_text(json.dumps([
        {"code": "PY002", "location": "mod.py", "reason": "legacy",
         "expires": "2026-12-31"},
        {"code": "CCY001"},
    ]), encoding="utf-8")
    waivers = load_waivers(path)
    assert [w.code for w in waivers] == ["PY002", "CCY001"]
    assert waivers[0].expires == "2026-12-31"


def test_load_waivers_rejects_unknown_keys(tmp_path):
    path = tmp_path / "waivers.json"
    path.write_text(json.dumps([{"code": "PY002", "until": "2026-01-01"}]),
                    encoding="utf-8")
    with pytest.raises(LintError, match="unknown keys"):
        load_waivers(path)


def test_load_waivers_rejects_non_list(tmp_path):
    path = tmp_path / "waivers.json"
    path.write_text(json.dumps({"code": "PY002"}), encoding="utf-8")
    with pytest.raises(LintError, match="JSON list"):
        load_waivers(path)


def test_load_waivers_missing_file(tmp_path):
    with pytest.raises(LintError, match="cannot read"):
        load_waivers(tmp_path / "absent.json")
