"""Abacus construction, inversion and the Figure-3 data."""

import numpy as np
import pytest

from repro.calibration.abacus import Abacus
from repro.errors import CalibrationError
from repro.units import fF, to_fF


class TestAnalyticAbacus:
    def test_edges_are_monotone(self, abacus_2x2):
        assert np.all(np.diff(abacus_2x2.edges) >= 0)

    def test_code_lookup_matches_edges(self, abacus_2x2):
        for code in (1, 7, 19):
            edge = abacus_2x2.edges[code - 1]
            assert abacus_2x2.code_for_capacitance(edge - 0.001 * fF) == code - 1
            assert abacus_2x2.code_for_capacitance(edge + 0.001 * fF) == code

    def test_code_for_negative_capacitance_rejected(self, abacus_2x2):
        with pytest.raises(CalibrationError):
            abacus_2x2.code_for_capacitance(-1.0)

    def test_rows_partition_the_axis(self, abacus_2x2):
        rows = abacus_2x2.rows()
        assert len(rows) == 21
        assert rows[0].c_min == 0.0
        assert np.isinf(rows[-1].c_max)
        for a, b in zip(rows, rows[1:]):
            assert a.c_max == pytest.approx(b.c_min)

    def test_row_current_column(self, abacus_2x2, structure_2x2):
        assert abacus_2x2.row(5).current == pytest.approx(
            5 * structure_2x2.design.delta_i
        )

    def test_estimate_midpoints(self, abacus_2x2):
        row = abacus_2x2.row(10)
        assert abacus_2x2.estimate(10) == pytest.approx((row.c_min + row.c_max) / 2)

    def test_out_of_range_estimates_are_none(self, abacus_2x2):
        assert abacus_2x2.estimate(0) is None
        assert abacus_2x2.estimate(20) is None

    def test_estimate_matrix_nans_out_of_range(self, abacus_2x2):
        codes = np.array([[0, 5], [20, 10]])
        est = abacus_2x2.estimate_matrix(codes)
        assert np.isnan(est[0, 0]) and np.isnan(est[1, 0])
        assert est[0, 1] == pytest.approx(abacus_2x2.estimate(5))

    def test_quantization_error_profile(self, abacus_2x2):
        # Mid-range error should be comfortably below the paper's 6 %.
        assert abacus_2x2.quantization_error(30 * fF) < 0.06
        assert abacus_2x2.quantization_error(5 * fF) == float("inf")
        assert abacus_2x2.quantization_error(70 * fF) == float("inf")

    def test_roundtrip_code_estimate_code(self, abacus_2x2):
        for code in range(1, 20):
            estimate = abacus_2x2.estimate(code)
            assert abacus_2x2.code_for_capacitance(estimate) == code

    def test_table_renders_all_rows(self, abacus_2x2):
        table = abacus_2x2.table()
        assert len(table.splitlines()) == 22  # header + 21 codes
        assert "ambiguous" in table
        assert "over range" in table


class TestSimulatedAbacus:
    def test_matches_analytic(self, structure_2x2, abacus_2x2):
        simulated = Abacus.from_simulation(
            structure_2x2, 2, 2, tolerance=0.01 * fF
        )
        assert np.allclose(simulated.edges, abacus_2x2.edges, atol=0.02 * fF)

    def test_for_array_convenience(self, tech, structure_8x2):
        from repro.edram.array import EDRAMArray

        arr = EDRAMArray(64, 2, tech=tech, macro_rows=8)
        ab = Abacus.for_array(structure_8x2, arr)
        assert ab.num_steps == structure_8x2.design.num_steps


class TestValidation:
    def test_edge_count_checked(self, structure_2x2):
        with pytest.raises(CalibrationError):
            Abacus(structure_2x2, np.zeros(5))

    def test_decreasing_edges_rejected(self, structure_2x2):
        edges = np.linspace(10 * fF, 55 * fF, 20)
        edges[5] = edges[4] - 1 * fF
        with pytest.raises(CalibrationError):
            Abacus(structure_2x2, edges)

    def test_row_bounds(self, abacus_2x2):
        with pytest.raises(CalibrationError):
            abacus_2x2.row(21)
