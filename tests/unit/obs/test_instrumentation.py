"""The instrumented hot paths: scans, the sequencer, the pipeline.

Two invariants matter most:

- **bit-exactness** — attaching a tracer/metrics registry must not
  change a single code (the no-op default path is the production path);
- **coverage** — an engine-tier scan must produce the full
  scan → macro → cell → phase 1–5 span tree the docs promise.
"""

import numpy as np
import pytest

from repro.diagnosis.pipeline import DiagnosisPipeline
from repro.edram.array import EDRAMArray
from repro.edram.defects import CellDefect, DefectKind
from repro.measure.config import ScanConfig
from repro.measure.scan import ArrayScanner
from repro.obs import MetricsRegistry, Tracer, summarize_trace
from repro.units import fF

PHASES = (
    "phase:discharge", "phase:charge", "phase:isolate",
    "phase:share", "phase:convert",
)


@pytest.fixture()
def bridged_array(tech):
    """8×4 array, two 8×2 macros; the bridge forces macro 0 onto the engine."""
    arr = EDRAMArray(8, 4, tech=tech, macro_cols=2)
    arr.cell(2, 0).apply_defect(CellDefect(DefectKind.BRIDGE))
    return arr


class TestBitExactness:
    def test_traced_scan_codes_identical(self, bridged_array, structure_8x2):
        scanner = ArrayScanner(bridged_array, structure_8x2)
        plain = scanner.scan()
        observed = scanner.scan(
            ScanConfig(tracer=Tracer(), metrics=MetricsRegistry())
        )
        assert np.array_equal(plain.codes, observed.codes)
        assert np.array_equal(plain.vgs, observed.vgs)
        assert np.array_equal(plain.tiers, observed.tiers)

    def test_parallel_traced_scan_codes_identical(self, tech, structure_8x2):
        arr = EDRAMArray(16, 4, tech=tech, macro_cols=2, macro_rows=8)
        scanner = ArrayScanner(arr, structure_8x2)
        plain = scanner.scan()
        observed = scanner.scan(
            ScanConfig(jobs=2, tracer=Tracer(), metrics=MetricsRegistry())
        )
        assert np.array_equal(plain.codes, observed.codes)


class TestSpanCoverage:
    def test_engine_scan_emits_all_five_phases(self, bridged_array, structure_8x2):
        tracer = Tracer()
        ArrayScanner(bridged_array, structure_8x2).scan(ScanConfig(tracer=tracer))
        summary = summarize_trace(tracer.spans)
        assert summary.covers("scan", "macro", "cell", *PHASES)
        assert summary.max_depth == 3  # scan > macro > cell > phase

    def test_every_engine_cell_has_exactly_five_phase_children(
        self, bridged_array, structure_8x2
    ):
        tracer = Tracer()
        ArrayScanner(bridged_array, structure_8x2).scan(ScanConfig(tracer=tracer))
        cells = [s for s in tracer.spans if s.name == "cell"]
        assert len(cells) == 16  # one engine macro of 8x2
        for cell in cells:
            names = [c.name for c in tracer.children(cell)]
            assert names == list(PHASES)

    def test_macro_spans_for_engine_macros_kernel_span_for_the_rest(
        self, bridged_array, structure_8x2
    ):
        # Tracing no longer forces the per-macro fallback: closed-form
        # macros ride the batched kernel (one "kernel" span), and only
        # engine macros get their own macro → cell → phase subtree.
        tracer = Tracer()
        ArrayScanner(bridged_array, structure_8x2).scan(ScanConfig(tracer=tracer))
        macros = [s for s in tracer.spans if s.name == "macro"]
        assert [m.attributes["tier"] for m in macros] == ["engine"]
        kernels = [s for s in tracer.spans if s.name == "kernel"]
        assert len(kernels) == 1
        assert kernels[0].attributes["seconds"] >= 0

    def test_cell_spans_carry_code_and_address(self, bridged_array, structure_8x2):
        tracer = Tracer()
        result = ArrayScanner(bridged_array, structure_8x2).scan(
            ScanConfig(tracer=tracer)
        )
        for cell in (s for s in tracer.spans if s.name == "cell"):
            row, col = cell.attributes["row"], cell.attributes["col"]
            assert cell.attributes["code"] == int(result.codes[row, col])

    def test_parallel_scan_merges_worker_slab_spans(self, tech, structure_8x2):
        # A clean parallel scan stays on the kernel fast path; workers
        # ship their "slab" spans back and the merge stamps each with
        # the producing worker's identity under the open scan span.
        arr = EDRAMArray(16, 4, tech=tech, macro_cols=2, macro_rows=8)
        tracer = Tracer()
        ArrayScanner(arr, structure_8x2).scan(ScanConfig(jobs=2, tracer=tracer))
        scan_span = next(s for s in tracer.spans if s.name == "scan")
        slabs = [s for s in tracer.spans if s.name == "slab"]
        assert slabs, "worker slab spans must cross the process boundary"
        for slab in slabs:
            assert slab.parent_id == scan_span.span_id
            assert slab.attributes["worker_id"] >= 0
            assert slab.attributes["pid"] > 0
        covered = sum(s.attributes["cells"] for s in slabs)
        assert covered == arr.rows * arr.cols

    def test_parallel_engine_scan_merges_worker_macro_trees(
        self, tech, structure_8x2
    ):
        # force_engine routes through the per-macro fan-out; each
        # worker's full macro → cell → phase subtree must arrive intact.
        arr = EDRAMArray(16, 4, tech=tech, macro_cols=2, macro_rows=8)
        tracer = Tracer()
        ArrayScanner(arr, structure_8x2).scan(
            ScanConfig(jobs=2, force_engine=True, tracer=tracer)
        )
        macros = [s for s in tracer.spans if s.name == "macro"]
        assert len(macros) == arr.num_macros
        scan_span = next(s for s in tracer.spans if s.name == "scan")
        for macro in macros:
            assert macro.parent_id == scan_span.span_id
            assert macro.attributes["worker_id"] >= 0
            children = [c.name for c in tracer.children(macro)]
            assert children.count("cell") == 16

    def test_child_intervals_inside_parent(self, bridged_array, structure_8x2):
        tracer = Tracer()
        ArrayScanner(bridged_array, structure_8x2).scan(ScanConfig(tracer=tracer))
        by_id = {s.span_id: s for s in tracer.spans}
        for span in tracer.spans:
            if span.parent_id is not None:
                parent = by_id[span.parent_id]
                assert parent.start <= span.start
                assert span.end <= parent.end


class TestScanMetrics:
    def test_tier_routing_counters(self, bridged_array, structure_8x2):
        metrics = MetricsRegistry()
        ArrayScanner(bridged_array, structure_8x2).scan(ScanConfig(metrics=metrics))
        assert metrics.counter("scan.runs").value == 1
        assert metrics.counter("scan.cells").value == 32
        assert metrics.counter("scan.cells_engine").value == 16
        assert metrics.counter("scan.cells_closed_form").value == 16
        assert (
            metrics.counter("scan.cells_engine").value
            + metrics.counter("scan.cells_closed_form").value
            == metrics.counter("scan.cells").value
        )

    def test_codes_histogram_matches_result(self, bridged_array, structure_8x2):
        metrics = MetricsRegistry()
        result = ArrayScanner(bridged_array, structure_8x2).scan(
            ScanConfig(metrics=metrics)
        )
        hist = metrics.histogram("scan.codes")
        assert hist.count == result.codes.size
        assert hist.sum == int(result.codes.sum())

    def test_engine_layers_report_ambiently(self, bridged_array, structure_8x2):
        metrics = MetricsRegistry()
        ArrayScanner(bridged_array, structure_8x2).scan(ScanConfig(metrics=metrics))
        # One netlist build per engine macro, one restore per further cell.
        assert metrics.counter("sequencer.netlist_cache_misses").value == 1
        assert metrics.counter("sequencer.netlist_cache_hits").value == 15
        # The charge engine settles at least once per engine phase.
        assert metrics.counter("charge.settles").value >= 16

    def test_scan_stats_folded_into_registry(self, tech, structure_8x2):
        arr = EDRAMArray(16, 4, tech=tech, macro_cols=2, macro_rows=8)
        metrics = MetricsRegistry()
        result = ArrayScanner(arr, structure_8x2).scan(ScanConfig(metrics=metrics))
        assert metrics.gauge("scan.wall_seconds").value == pytest.approx(
            result.stats.wall_seconds
        )
        assert metrics.histogram("scan.macro_seconds").count == arr.num_macros

    def test_counters_accumulate_across_scans(self, tech, structure_2x2):
        metrics = MetricsRegistry()
        scanner = ArrayScanner(EDRAMArray(2, 2, tech=tech), structure_2x2)
        scanner.scan(ScanConfig(metrics=metrics))
        scanner.scan(ScanConfig(metrics=metrics))
        assert metrics.counter("scan.runs").value == 2
        assert metrics.counter("scan.cells").value == 8


class TestPipelineInstrumentation:
    def test_diagnosis_span_tree(self, tech):
        arr = EDRAMArray(8, 4, tech=tech, macro_cols=2)
        arr.cell(1, 1).apply_defect(CellDefect(DefectKind.LOW_CAP, factor=0.5))
        tracer = Tracer()
        pipeline = DiagnosisPipeline(spec_lo=24 * fF, spec_hi=36 * fF)
        pipeline.run(arr, ScanConfig(tracer=tracer))
        summary = summarize_trace(tracer.spans)
        assert summary.covers(
            "diagnosis", "stage:functional", "stage:scan", "stage:classify",
            "stage:root_cause", "stage:process", "stage:repair",
        )
        roots = tracer.roots()
        assert [r.name for r in roots] == ["diagnosis"]
        # The scan's own tree nests inside the scan stage.
        stage_scan = next(s for s in tracer.spans if s.name == "stage:scan")
        scan_spans = [s for s in tracer.spans if s.name == "scan"]
        assert len(scan_spans) == 1
        assert scan_spans[0].parent_id == stage_scan.span_id


class TestSequencerTracing:
    def test_measure_charge_span(self, tech, structure_2x2):
        from repro.measure.sequencer import MeasurementSequencer

        arr = EDRAMArray(2, 2, tech=tech)
        tracer = Tracer()
        seq = MeasurementSequencer(arr.macro(0), structure_2x2)
        plain = seq.measure_charge(1, 0)
        traced = seq.measure_charge(1, 0, tracer=tracer)
        assert traced.code == plain.code
        cell = tracer.roots()[0]
        assert cell.name == "cell"
        assert cell.attributes["tier"] == "charge"
        assert cell.attributes["code"] == traced.code

    @pytest.mark.slow
    def test_measure_transient_span(self, tech, structure_2x2):
        from repro.measure.sequencer import MeasurementSequencer

        arr = EDRAMArray(2, 2, tech=tech)
        tracer = Tracer()
        seq = MeasurementSequencer(arr.macro(0), structure_2x2)
        result = seq.measure_transient(0, 0, tracer=tracer)
        cell = tracer.roots()[0]
        assert cell.attributes["tier"] == "transient"
        assert cell.attributes["code"] == result.code
        names = {c.name for c in tracer.children(cell)}
        assert "integrate" in names
        assert "phase:convert" in names
