"""Behavioural + structural model of an embedded DRAM (eDRAM) array.

This package is the substrate the measurement structure operates on: a
grid of 1T1C cells organised into *macro-cells* (column groups sharing a
plate node, per Figure 1 of the paper), with bitline/wordline parasitics,
a sense amplifier, retention/leakage behaviour, defect injection and
spatially correlated capacitance variation.

Two views of the same array coexist:

- a **structural** view (per-cell capacitance, defect state, parasitic
  geometry) consumed by the measurement netlist builders, and
- a **behavioural** view (write/read/refresh with charge-sharing sensing)
  consumed by the march-test digital baseline.
"""

from repro.edram.defects import DefectKind, CellDefect, DefectInjector
from repro.edram.cell import DRAMCell
from repro.edram.array import EDRAMArray, MacroCell, CellAddress
from repro.edram.senseamp import SenseAmplifier
from repro.edram.operations import ArrayOperations
from repro.edram.leakage import RetentionModel
from repro.edram.variation_map import (
    uniform_map,
    mismatch_map,
    linear_tilt_map,
    radial_map,
    edge_rolloff_map,
    cluster_defect_map,
    compose_maps,
)

__all__ = [
    "DefectKind",
    "CellDefect",
    "DefectInjector",
    "DRAMCell",
    "EDRAMArray",
    "MacroCell",
    "CellAddress",
    "SenseAmplifier",
    "ArrayOperations",
    "RetentionModel",
    "uniform_map",
    "mismatch_map",
    "linear_tilt_map",
    "radial_map",
    "edge_rolloff_map",
    "cluster_defect_map",
    "compose_maps",
]
