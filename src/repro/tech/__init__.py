"""Technology cards for the simulated 0.18 µm eDRAM process.

The paper validated its structure on ST-Microelectronics' proprietary
0.18 µm eDRAM design kit.  That kit is not available, so this package
provides a synthetic technology card with public-domain-typical 0.18 µm
parameters (V_DD = 1.8 V, n-MOS V_TH ≈ 0.45 V, t_ox ≈ 4 nm) plus the
eDRAM-specific quantities the measurement structure depends on: nominal
cell capacitance (~30 fF), bitline/wordline parasitics, boosted wordline
voltage, and junction leakage.

Public API
----------
- :class:`MosfetParams` — level-1 + subthreshold device parameter set
- :class:`TechnologyCard` — everything the simulator and array model need
- :func:`default_technology` — the nominal TT 0.18 µm eDRAM card
- :class:`Corner` / :func:`corner_technology` — TT/FF/SS/FS/SF corners
- :class:`VariationModel` / :class:`MonteCarloSampler` — parametric
  mismatch sampling for Monte-Carlo experiments
"""

from repro.tech.parameters import MosfetParams, TechnologyCard, default_technology, technology_013um
from repro.tech.corners import Corner, corner_technology, all_corners, CORNER_SHIFTS
from repro.tech.variation import VariationModel, MonteCarloSampler

__all__ = [
    "MosfetParams",
    "TechnologyCard",
    "default_technology",
    "technology_013um",
    "all_corners",
    "Corner",
    "corner_technology",
    "CORNER_SHIFTS",
    "VariationModel",
    "MonteCarloSampler",
]
