"""Per-cell classifier, including the code-0 disambiguation."""

import numpy as np
import pytest

from repro.bitmap.analog import AnalogBitmap
from repro.calibration.abacus import Abacus
from repro.calibration.design import design_structure
from repro.calibration.window import SpecificationWindow
from repro.diagnosis.classifier import CellClassifier, CellVerdict
from repro.edram.array import EDRAMArray
from repro.edram.defects import CellDefect, DefectKind
from repro.errors import DiagnosisError
from repro.measure.scan import ArrayScanner
from repro.units import fF


@pytest.fixture(scope="module")
def tall_setup(tech):
    """64-row array tiled 8x2 so short fingerprints are visible."""
    structure = design_structure(tech, 8, 2, bitline_rows=64)
    abacus = Abacus.analytic(structure, 8, 2, bitline_rows=64)
    window = SpecificationWindow.from_capacitance(abacus, 24 * fF, 36 * fF)
    return structure, abacus, window


def _classify(tech, tall_setup, defects, digital=None):
    structure, abacus, window = tall_setup
    arr = EDRAMArray(64, 4, tech=tech, macro_cols=2, macro_rows=8)
    for (r, c), d in defects.items():
        arr.cell(r, c).apply_defect(d)
    bitmap = AnalogBitmap(ArrayScanner(arr, structure).scan(), abacus)
    classifier = CellClassifier(bitmap, window, macro_cols=2)
    return classifier.classify_all(digital), classifier


def test_healthy_array_is_all_in_spec(tech, tall_setup):
    verdicts, _ = _classify(tech, tall_setup, {})
    assert all(v is CellVerdict.IN_SPEC for v in verdicts.ravel())


def test_short_detected_via_neighbour_fingerprint(tech, tall_setup):
    verdicts, _ = _classify(
        tech, tall_setup, {(3, 1): CellDefect(DefectKind.SHORT)}
    )
    assert verdicts[3, 1] is CellVerdict.SHORT


def test_open_lacks_fingerprint(tech, tall_setup):
    verdicts, _ = _classify(
        tech, tall_setup, {(3, 1): CellDefect(DefectKind.OPEN)}
    )
    assert verdicts[3, 1] is CellVerdict.OPEN_OR_UNDER


def test_digital_pass_refines_code_zero(tech, tall_setup):
    # A code-0 cell that reads/writes fine digitally is an under-floor
    # capacitor, not an open.
    defects = {(3, 1): CellDefect(DefectKind.LOW_CAP, factor=0.2)}  # 6 fF
    digital = np.zeros((64, 4), dtype=bool)  # everything passes digitally
    verdicts, _ = _classify(tech, tall_setup, defects, digital)
    assert verdicts[3, 1] is CellVerdict.UNDER_FLOOR


def test_moderate_low_cap_is_fail_low(tech, tall_setup):
    verdicts, _ = _classify(
        tech, tall_setup, {(3, 1): CellDefect(DefectKind.LOW_CAP, factor=0.6)}
    )
    assert verdicts[3, 1] is CellVerdict.LOW_CAP


def test_high_cap_is_fail_high(tech, tall_setup):
    verdicts, _ = _classify(
        tech, tall_setup, {(3, 1): CellDefect(DefectKind.HIGH_CAP, factor=1.4)}
    )
    assert verdicts[3, 1] is CellVerdict.HIGH_CAP


def test_over_range(tech, tall_setup):
    verdicts, _ = _classify(
        tech, tall_setup, {(3, 1): CellDefect(DefectKind.HIGH_CAP, factor=2.5)}
    )
    assert verdicts[3, 1] is CellVerdict.OVER_RANGE


def test_verdict_counts_and_open_crosstalk(tech, tall_setup):
    verdicts, classifier = _classify(
        tech, tall_setup, {(3, 1): CellDefect(DefectKind.OPEN)}
    )
    counts = classifier.verdict_counts(verdicts)
    assert counts[CellVerdict.OPEN_OR_UNDER] == 1
    # Real crosstalk of the structure: the open cell's plate-sharing
    # row-mate loses its series coupling branch and reads visibly low.
    assert verdicts[3, 0] is CellVerdict.LOW_CAP
    assert counts[CellVerdict.IN_SPEC] == 64 * 4 - 2


def test_macro_cols_must_divide(tech, tall_setup):
    structure, abacus, window = tall_setup
    arr = EDRAMArray(8, 4, tech=tech, macro_cols=2)
    bitmap = AnalogBitmap(ArrayScanner(arr, structure).scan(), abacus)
    with pytest.raises(DiagnosisError):
        CellClassifier(bitmap, window, macro_cols=3)


def test_digital_shape_mismatch_rejected(tech, tall_setup):
    structure, abacus, window = tall_setup
    arr = EDRAMArray(8, 4, tech=tech, macro_cols=2)
    bitmap = AnalogBitmap(ArrayScanner(arr, structure).scan(), abacus)
    classifier = CellClassifier(bitmap, window, macro_cols=2)
    with pytest.raises(DiagnosisError):
        classifier.classify_all(np.zeros((2, 2), dtype=bool))
