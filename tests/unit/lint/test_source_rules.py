"""AST source rules (PY001 raw-si-literal, PY002 bare-assert)."""

import pytest

from repro.errors import LintError
from repro.lint import lint_source
from tests.unit.lint import fixtures


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return path


def test_bad_source_triggers_both_rules(tmp_path):
    path = _write(tmp_path, "module.py", fixtures.BAD_SOURCE)
    report = lint_source([path])
    assert report.codes() == {"PY001", "PY002"}
    assert not report.ok
    # Findings anchor to file:line so editors can jump to them.
    locations = [d.location for d in report]
    assert all(loc and str(path) in loc for loc in locations)


def test_good_source_is_clean(tmp_path):
    path = _write(tmp_path, "module.py", fixtures.GOOD_SOURCE)
    report = lint_source([path])
    assert len(report) == 0


def test_py001_ignores_zero_and_coarse_literals(tmp_path):
    path = _write(tmp_path, "module.py", "A = 0.0\nB = 1e-12\nC = 2.5\n")
    assert len(lint_source([path], only=("PY001",))) == 0


def test_py001_pragma_suppresses(tmp_path):
    path = _write(
        tmp_path, "module.py", "EPS = 1e-15  # lint: allow-raw-si\n"
    )
    assert len(lint_source([path], only=("PY001",))) == 0


def test_py001_units_module_is_exempt(tmp_path):
    path = _write(tmp_path, "units.py", "fF = 1e-15\naF = 1e-18\n")
    assert len(lint_source([path], only=("PY001",))) == 0


def test_py002_pragma_suppresses(tmp_path):
    path = _write(
        tmp_path, "module.py", "def f(x):\n    assert x  # lint: allow-assert\n"
    )
    assert len(lint_source([path], only=("PY002",))) == 0


def test_py002_test_files_are_exempt(tmp_path):
    body = "def test_f():\n    assert 1 + 1 == 2\n"
    assert len(lint_source([_write(tmp_path, "test_module.py", body)])) == 0
    assert len(lint_source([_write(tmp_path, "conftest.py", body)])) == 0


def test_erc006_flags_swallowing_handler(tmp_path):
    body = (
        "def f():\n"
        "    try:\n"
        "        work()\n"
        "    except Exception:\n"
        "        return None\n"
    )
    report = lint_source([_write(tmp_path, "module.py", body)], only=("ERC006",))
    assert report.codes() == {"ERC006"}
    assert "swallows ReproError" in next(iter(report)).message


def test_erc006_flags_bare_except_and_base_exception(tmp_path):
    body = (
        "def f():\n"
        "    try:\n"
        "        work()\n"
        "    except:\n"
        "        pass\n"
        "    try:\n"
        "        work()\n"
        "    except BaseException:\n"
        "        pass\n"
    )
    report = lint_source([_write(tmp_path, "module.py", body)], only=("ERC006",))
    assert len(report) == 2


def test_erc006_reraise_is_compliant(tmp_path):
    body = (
        "def f():\n"
        "    try:\n"
        "        work()\n"
        "    except Exception as exc:\n"
        "        raise WrapperError(str(exc)) from exc\n"
    )
    assert len(lint_source([_write(tmp_path, "m.py", body)], only=("ERC006",))) == 0


def test_erc006_quality_flagging_is_compliant(tmp_path):
    body = (
        "def f(quality, r, c):\n"
        "    try:\n"
        "        work()\n"
        "    except Exception:\n"
        "        quality[r, c] = CellQuality.FAILED\n"
    )
    assert len(lint_source([_write(tmp_path, "m.py", body)], only=("ERC006",))) == 0


def test_erc006_pragma_suppresses(tmp_path):
    body = (
        "def f():\n"
        "    try:\n"
        "        work()\n"
        "    except Exception:  # lint: allow-broad-except - logged upstream\n"
        "        pass\n"
    )
    assert len(lint_source([_write(tmp_path, "m.py", body)], only=("ERC006",))) == 0


def test_erc006_narrow_handlers_and_test_files_exempt(tmp_path):
    narrow = (
        "def f():\n"
        "    try:\n"
        "        work()\n"
        "    except ValueError:\n"
        "        pass\n"
    )
    assert len(lint_source([_write(tmp_path, "m.py", narrow)], only=("ERC006",))) == 0
    swallow = (
        "def test_f():\n"
        "    try:\n"
        "        work()\n"
        "    except Exception:\n"
        "        pass\n"
    )
    path = _write(tmp_path, "test_m.py", swallow)
    assert len(lint_source([path], only=("ERC006",))) == 0


def test_lint_source_expands_directories(tmp_path):
    _write(tmp_path, "a.py", fixtures.BAD_SOURCE)
    sub = tmp_path / "pkg"
    sub.mkdir()
    _write(sub, "b.py", "def f(x):\n    assert x\n")
    report = lint_source([tmp_path])
    assert len(report.by_code("PY002")) == 2


def test_lint_source_rejects_non_python_paths(tmp_path):
    path = _write(tmp_path, "notes.txt", "hello")
    with pytest.raises(LintError, match="not a Python file"):
        lint_source([path])


def test_lint_source_raises_on_syntax_errors(tmp_path):
    path = _write(tmp_path, "broken.py", "def f(:\n")
    with pytest.raises(LintError, match="cannot parse"):
        lint_source([path])


def test_shipped_source_tree_is_clean():
    """The library's own code must pass its own source rules."""
    from pathlib import Path

    import repro

    report = lint_source([Path(repro.__file__).parent])
    assert report.ok, report.format_text()
    assert len(report) == 0, report.format_text()
