"""DC operating-point solver."""

import pytest

from repro.circuit.dc import dc_operating_point
from repro.circuit.elements import Capacitor, CurrentSource, Resistor, VoltageSource
from repro.circuit.mosfet import Mosfet
from repro.circuit.netlist import Circuit
from repro.circuit.stimulus import Step
from repro.units import fF, um


def test_resistor_ladder():
    ckt = Circuit()
    ckt.add(VoltageSource("V", "n0", "0", 4.0))
    for i in range(4):
        ckt.add(Resistor(f"R{i}", f"n{i}", f"n{i + 1}", 1e3))
    ckt.add(Resistor("RL", "n4", "0", 1e12))  # pin the last node
    op = dc_operating_point(ckt)
    assert op["n4"] == pytest.approx(4.0, rel=1e-3)  # no current flows


def test_floating_node_pinned_by_gmin():
    ckt = Circuit()
    ckt.add(VoltageSource("V", "a", "0", 1.0))
    ckt.add(Capacitor("C", "a", "float", 10 * fF))
    op = dc_operating_point(ckt)
    assert abs(op["float"]) < 1e-6  # gmin ties it to ground in DC


def test_time_dependent_source_frozen_at_requested_time():
    ckt = Circuit()
    ckt.add(VoltageSource("V", "a", "0", Step(1e-9, 0.2, 1.4)))
    ckt.add(Resistor("R", "a", "0", 1e3))
    assert dc_operating_point(ckt, time=0.0)["a"] == pytest.approx(0.2)
    assert dc_operating_point(ckt, time=2e-9)["a"] == pytest.approx(1.4)


def test_nmos_inverter_transfer_points(tech):
    def out_for(vin):
        ckt = Circuit()
        ckt.add(VoltageSource("VDD", "vdd", "0", 1.8))
        ckt.add(VoltageSource("VIN", "in", "0", vin))
        ckt.add(
            Mosfet("MP", "out", "in", "vdd", tech.pmos, w=1.68 * um, l=0.18 * um,
                   bulk_voltage=1.8)
        )
        ckt.add(Mosfet("MN", "out", "in", "0", tech.nmos, w=0.42 * um, l=0.18 * um))
        return dc_operating_point(ckt)["out"]

    assert out_for(0.0) > 1.75
    assert out_for(1.8) < 0.05
    mid = out_for(0.9)
    assert 0.2 < mid < 1.6  # transition region


def test_diode_connected_nmos_settles_above_threshold(tech):
    ckt = Circuit()
    ckt.add(VoltageSource("VDD", "vdd", "0", 1.8))
    ckt.add(Resistor("R", "vdd", "d", 50e3))
    ckt.add(Mosfet("M", "d", "d", "0", tech.nmos, w=1 * um, l=0.18 * um))
    op = dc_operating_point(ckt)
    assert tech.nmos.vth0 < op["d"] < 1.2


def test_initial_guess_is_honoured():
    ckt = Circuit()
    ckt.add(CurrentSource("I", "0", "x", 1e-6))
    ckt.add(Resistor("R", "x", "0", 1e6))
    op = dc_operating_point(ckt, initial_guess={"x": 0.9})
    assert op["x"] == pytest.approx(1.0, rel=1e-6)


def test_cmos_nand_gate_truth_table(tech):
    """Two-input NAND: out is low only when both inputs are high."""

    def nand(a, b):
        ckt = Circuit()
        ckt.add(VoltageSource("VDD", "vdd", "0", 1.8))
        ckt.add(VoltageSource("VA", "a", "0", a))
        ckt.add(VoltageSource("VB", "b", "0", b))
        ckt.add(Mosfet("MPA", "out", "a", "vdd", tech.pmos, w=1.68 * um, l=0.18 * um, bulk_voltage=1.8))
        ckt.add(Mosfet("MPB", "out", "b", "vdd", tech.pmos, w=1.68 * um, l=0.18 * um, bulk_voltage=1.8))
        ckt.add(Mosfet("MNA", "out", "a", "mid", tech.nmos, w=0.84 * um, l=0.18 * um))
        ckt.add(Mosfet("MNB", "mid", "b", "0", tech.nmos, w=0.84 * um, l=0.18 * um))
        return dc_operating_point(ckt)["out"]

    assert nand(0.0, 0.0) > 1.7
    assert nand(1.8, 0.0) > 1.7
    assert nand(0.0, 1.8) > 1.7
    assert nand(1.8, 1.8) < 0.1
