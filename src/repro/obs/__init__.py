"""Observability: tracing and metrics for the measurement hot paths.

The paper's flow is a pipeline — scan → macro → cell → phase 1–5 — and
this package makes the pipeline visible without changing it:

- :mod:`repro.obs.trace` — :class:`Tracer` records nested, timed,
  attributed spans; :data:`NULL_TRACER` is the zero-cost default.
- :mod:`repro.obs.metrics` — :class:`MetricsRegistry` owns counters,
  gauges and histograms; deep layers report through the **ambient**
  registry (:func:`use_metrics` / :func:`active_metrics`) so the
  numeric APIs stay clean.
- :mod:`repro.obs.summarize` — reads exported traces back, merges
  multi-process traces, aggregates them and renders per-worker
  timelines (the ``repro trace`` subcommand).
- :mod:`repro.obs.progress` — live completion/throughput/ETA reporting
  for long scans (TTY status line or JSONL event stream);
  :data:`NULL_PROGRESS` is the zero-cost default.
- :mod:`repro.obs.ledger` — :class:`RunLedger` records append-only run
  manifests (config hash, seed, stats, metrics, bitmap scalars) into a
  ``.repro-runs/`` directory; ``repro runs list/show/diff`` read it.
- :mod:`repro.obs.drift` — EWMA/CUSUM control charts over recorded
  runs; :func:`check_ledger` backs the ``repro runs check`` CI gate.

Everything is opt-in: the instrumented code paths are pinned bit-exact
against their un-instrumented behaviour, and the disabled path costs a
no-op method call.  Sits with the foundations layer — the hot-path
modules import only :mod:`repro.errors`; the cross-run modules (ledger,
drift) may additionally use :mod:`repro.lint.diagnostics` for their
finding shape and :mod:`repro.io` for artifacts.  Every layer above may
use this package.
"""

from repro.obs.drift import (
    DEFAULT_SCALARS,
    LOT_SCALARS,
    DriftEngine,
    ScalarSpec,
    SeriesCheck,
    check_bench_history,
    check_ledger,
)
from repro.obs.ledger import (
    DEFAULT_LEDGER_DIR,
    RunDiff,
    RunLedger,
    RunManifest,
    bitmap_scalars,
    config_fingerprint,
    config_hash,
    scan_scalars,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    active_metrics,
    use_metrics,
)
from repro.obs.progress import (
    NULL_PROGRESS,
    JsonlProgress,
    NullProgress,
    ProgressReporter,
)
from repro.obs.summarize import (
    SpanAggregate,
    TraceSummary,
    load_trace,
    merge_traces,
    render_timeline,
    summarize_trace,
    timeline_dict,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "RunLedger",
    "RunManifest",
    "RunDiff",
    "DEFAULT_LEDGER_DIR",
    "config_fingerprint",
    "config_hash",
    "scan_scalars",
    "bitmap_scalars",
    "DriftEngine",
    "ScalarSpec",
    "SeriesCheck",
    "DEFAULT_SCALARS",
    "LOT_SCALARS",
    "check_ledger",
    "check_bench_history",
    "ProgressReporter",
    "JsonlProgress",
    "NullProgress",
    "NULL_PROGRESS",
    "Tracer",
    "NullTracer",
    "Span",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "active_metrics",
    "use_metrics",
    "load_trace",
    "merge_traces",
    "render_timeline",
    "timeline_dict",
    "summarize_trace",
    "TraceSummary",
    "SpanAggregate",
]
