"""Parameter-plausibility rules (PRM) over technology cards.

``PRM001 parameter-out-of-corner-range`` checks a
:class:`~repro.tech.parameters.TechnologyCard` against the envelope the
five standard process corners span around the nominal card of its family
(0.18 µm or 0.13 µm, picked by supply voltage).  A card outside that
envelope is not *invalid* — Monte-Carlo tails and deliberately skewed
experiments live there — but a structure designed for it will produce an
abacus no production corner can reach, which usually means a unit slip
or a corner applied twice.  Hence warning severity.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import rule
from repro.tech.corners import CORNER_SHIFTS
from repro.tech.parameters import TechnologyCard, default_technology, technology_013um

#: Slack applied on top of the corner envelope before flagging (the
#: corner set is a 3-sigma-ish box; give Monte-Carlo samples headroom).
ENVELOPE_MARGIN = 1.5


def _reference_card(tech: TechnologyCard) -> TechnologyCard:
    """Nominal family card for ``tech``, picked by supply closeness."""
    nominal_018 = default_technology()
    nominal_013 = technology_013um()
    if abs(tech.vdd - nominal_013.vdd) < abs(tech.vdd - nominal_018.vdd):
        return nominal_013
    return nominal_018


def _corner_envelope(reference: TechnologyCard) -> dict[str, tuple[float, float]]:
    """Per-parameter (lo, hi) bounds spanned by the corner set + margin."""
    dvths = [shift[0] for shift in CORNER_SHIFTS.values()] + [
        shift[2] for shift in CORNER_SHIFTS.values()
    ]
    kp_scales = [shift[1] for shift in CORNER_SHIFTS.values()] + [
        shift[3] for shift in CORNER_SHIFTS.values()
    ]
    c_scales = [shift[4] for shift in CORNER_SHIFTS.values()]

    dvth_span = max(abs(d) for d in dvths) * ENVELOPE_MARGIN
    kp_lo = 1.0 - (1.0 - min(kp_scales)) * ENVELOPE_MARGIN
    kp_hi = 1.0 + (max(kp_scales) - 1.0) * ENVELOPE_MARGIN
    c_lo = 1.0 - (1.0 - min(c_scales)) * ENVELOPE_MARGIN
    c_hi = 1.0 + (max(c_scales) - 1.0) * ENVELOPE_MARGIN

    n_vth = abs(reference.nmos.vth0)
    p_vth = abs(reference.pmos.vth0)
    return {
        "nmos.vth0": (n_vth - dvth_span, n_vth + dvth_span),
        "pmos.vth0": (p_vth - dvth_span, p_vth + dvth_span),
        "nmos.kp": (reference.nmos.kp * kp_lo, reference.nmos.kp * kp_hi),
        "pmos.kp": (reference.pmos.kp * kp_lo, reference.pmos.kp * kp_hi),
        "cell_capacitance": (
            reference.cell_capacitance * c_lo,
            reference.cell_capacitance * c_hi,
        ),
    }


def _card_values(tech: TechnologyCard) -> dict[str, float]:
    """The card's parameters in envelope keys (thresholds as magnitudes)."""
    return {
        "nmos.vth0": abs(tech.nmos.vth0),
        "pmos.vth0": abs(tech.pmos.vth0),
        "nmos.kp": tech.nmos.kp,
        "pmos.kp": tech.pmos.kp,
        "cell_capacitance": tech.cell_capacitance,
    }


@rule(
    "PRM001",
    "parameter-out-of-corner-range",
    target="technology",
    severity=Severity.WARNING,
    summary="technology parameter outside the process-corner envelope",
)
def check_corner_range(tech: TechnologyCard, context: dict[str, object]) -> Iterator[Diagnostic]:
    """Flag card parameters outside the corner envelope of their family.

    The envelope is the FF/SS/FS/SF span around the matching nominal
    card, widened by :data:`ENVELOPE_MARGIN`.  Each violated parameter
    produces one diagnostic naming the value and the allowed range.
    """
    reference = _reference_card(tech)
    envelope = _corner_envelope(reference)
    values = _card_values(tech)
    for key, value in values.items():
        lo, hi = envelope[key]
        if not lo <= value <= hi:
            yield check_corner_range.diagnostic(
                f"{key} = {value:.4g} is outside the corner envelope "
                f"[{lo:.4g}, {hi:.4g}] of {reference.name!r}",
                subject=tech.name,
            )
