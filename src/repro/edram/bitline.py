"""Bitline charge-sharing arithmetic for the behavioural read path.

A DRAM read is itself a charge-sharing event: the bitline is precharged
to V_DD/2, the wordline opens the access transistor, and the cell and
bitline capacitances redistribute charge, producing a small signal
voltage that the sense amplifier resolves.  This module implements that
arithmetic for the behavioural array operations and for the naive
bitline-side measurement baseline (the thing the paper's plate-node
connection is designed to avoid).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ArrayConfigError


@dataclass(frozen=True)
class Bitline:
    """One bitline's electrical summary.

    Parameters
    ----------
    capacitance:
        Total parasitic bitline capacitance in farads.
    precharge_voltage:
        Equalisation level before sensing, volts (V_DD/2 scheme).
    """

    capacitance: float
    precharge_voltage: float

    def __post_init__(self) -> None:
        if self.capacitance <= 0:
            raise ArrayConfigError(
                f"bitline capacitance must be positive, got {self.capacitance}"
            )

    def share_with_cell(self, cell_capacitance: float, cell_voltage: float) -> float:
        """Bitline voltage after charge-sharing with one cell.

        Standard DRAM read signal:
        ``V_BL' = (C_BL·V_pre + C_cell·V_cell) / (C_BL + C_cell)``.
        A zero cell capacitance (open cell) leaves the precharge level
        untouched.
        """
        if cell_capacitance < 0:
            raise ArrayConfigError(
                f"cell capacitance must be >= 0, got {cell_capacitance}"
            )
        total = self.capacitance + cell_capacitance
        return (
            self.capacitance * self.precharge_voltage
            + cell_capacitance * cell_voltage
        ) / total

    def read_signal(self, cell_capacitance: float, cell_voltage: float) -> float:
        """Signed sense signal ΔV = V_BL' − V_precharge, volts.

        Positive for a stored '1' (cell above the precharge level).
        """
        return (
            self.share_with_cell(cell_capacitance, cell_voltage)
            - self.precharge_voltage
        )

    def transfer_ratio(self, cell_capacitance: float) -> float:
        """The attenuation C_cell/(C_cell + C_BL) a stored level suffers.

        This is the figure of merit the paper's intro worries about: with
        C_BL ≈ 10–20× the cell capacitance, only a few percent of the
        stored swing reaches the bitline, which is why measuring the
        capacitor *through the bitline* is hopeless.
        """
        if cell_capacitance < 0:
            raise ArrayConfigError(
                f"cell capacitance must be >= 0, got {cell_capacitance}"
            )
        return cell_capacitance / (cell_capacitance + self.capacitance)
