"""Time-domain stimulus waveforms for sources and switch controls.

A :class:`Stimulus` is simply "a value as a function of time".  Concrete
shapes cover everything the five-phase measurement flow needs: constants,
steps, pulses, piecewise-linear control sequences, clocks, and the
staircase that drives the programmable current reference I_REFP.

All stimuli are immutable and cheap to evaluate; the transient solver
calls them once per timestep per source.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from typing import Sequence

from repro.errors import NetlistError


class Stimulus(ABC):
    """A scalar waveform ``value(t)``; callable."""

    @abstractmethod
    def __call__(self, time: float) -> float:
        """Value at ``time`` seconds."""

    def breakpoints(self) -> tuple[float, ...]:
        """Times at which the waveform changes non-smoothly.

        The transient solver aligns timesteps to these so that edges are
        never stepped over.
        """
        return ()


class Constant(Stimulus):
    """A constant value for all time."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def __call__(self, time: float) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Constant({self.value})"


class Step(Stimulus):
    """Jump from ``before`` to ``after`` at ``at`` seconds."""

    def __init__(self, at: float, before: float = 0.0, after: float = 1.0) -> None:
        self.at = at
        self.before = before
        self.after = after

    def __call__(self, time: float) -> float:
        return self.after if time >= self.at else self.before

    def breakpoints(self) -> tuple[float, ...]:
        return (self.at,)


class Pulse(Stimulus):
    """Single rectangular pulse of ``high`` between ``start`` and ``stop``."""

    def __init__(self, start: float, stop: float, low: float = 0.0, high: float = 1.0) -> None:
        if stop <= start:
            raise NetlistError(f"pulse needs stop > start, got [{start}, {stop}]")
        self.start = start
        self.stop = stop
        self.low = low
        self.high = high

    def __call__(self, time: float) -> float:
        return self.high if self.start <= time < self.stop else self.low

    def breakpoints(self) -> tuple[float, ...]:
        return (self.start, self.stop)


class PiecewiseLinear(Stimulus):
    """SPICE-style PWL waveform through ``(time, value)`` points.

    Values before the first point hold the first value; after the last
    point, the last value.  Points must be strictly increasing in time.
    """

    def __init__(self, points: Sequence[tuple[float, float]]) -> None:
        if not points:
            raise NetlistError("PWL stimulus needs at least one point")
        times = [t for t, _ in points]
        if any(t1 >= t2 for t1, t2 in zip(times, times[1:])):
            raise NetlistError(f"PWL times must be strictly increasing, got {times}")
        self.times = tuple(times)
        self.values = tuple(float(v) for _, v in points)

    def __call__(self, time: float) -> float:
        times = self.times
        if time <= times[0]:
            return self.values[0]
        if time >= times[-1]:
            return self.values[-1]
        i = bisect.bisect_right(times, time)
        t0, t1 = times[i - 1], times[i]
        v0, v1 = self.values[i - 1], self.values[i]
        return v0 + (v1 - v0) * (time - t0) / (t1 - t0)

    def breakpoints(self) -> tuple[float, ...]:
        return self.times


class Clock(Stimulus):
    """Ideal square clock: ``high`` for the first half of each period.

    ``phase`` shifts the pattern right in seconds.
    """

    def __init__(self, period: float, low: float = 0.0, high: float = 1.8, phase: float = 0.0) -> None:
        if period <= 0:
            raise NetlistError(f"clock period must be positive, got {period}")
        self.period = period
        self.low = low
        self.high = high
        self.phase = phase

    def __call__(self, time: float) -> float:
        frac = ((time - self.phase) / self.period) % 1.0
        return self.high if frac < 0.5 else self.low


class Staircase(Stimulus):
    """Stepped ramp: value ``start + k·step_value`` during step ``k``.

    This models the shift-register-controlled programmable current
    reference I_REFP of the paper: ``num_steps`` equal increments, each
    held for ``step_duration`` seconds, beginning at ``t0``.  Before
    ``t0`` the value is ``start``; after the last step it holds the final
    value.

    Step numbering: during ``[t0 + (k-1)·dur, t0 + k·dur)`` the value is
    ``start + k·step_value`` for ``k = 1..num_steps`` — i.e. the first
    increment appears immediately at ``t0``, matching a shift register
    that loads its first bit on the first test clock.
    """

    def __init__(
        self,
        t0: float,
        step_duration: float,
        step_value: float,
        num_steps: int,
        start: float = 0.0,
    ) -> None:
        if step_duration <= 0:
            raise NetlistError(f"step_duration must be positive, got {step_duration}")
        if num_steps < 1:
            raise NetlistError(f"num_steps must be >= 1, got {num_steps}")
        self.t0 = t0
        self.step_duration = step_duration
        self.step_value = step_value
        self.num_steps = num_steps
        self.start = start

    def step_at(self, time: float) -> int:
        """The active step index ``k`` (0 before t0, clamped to num_steps)."""
        if time < self.t0:
            return 0
        k = int((time - self.t0) / self.step_duration) + 1
        return min(k, self.num_steps)

    def step_start_time(self, k: int) -> float:
        """Time at which step ``k`` (1-based) begins."""
        if not 1 <= k <= self.num_steps:
            raise NetlistError(f"step index {k} out of range 1..{self.num_steps}")
        return self.t0 + (k - 1) * self.step_duration

    def __call__(self, time: float) -> float:
        return self.start + self.step_at(time) * self.step_value

    def breakpoints(self) -> tuple[float, ...]:
        return tuple(self.t0 + k * self.step_duration for k in range(self.num_steps))


class PiecewiseConstant(Stimulus):
    """Piecewise-constant waveform: ``levels[k]`` holds on ``[edges[k-1], edges[k])``.

    With ``n`` levels there are ``n - 1`` edges.  Used for digital control
    signals (wordlines, switch gates) whose value is defined per phase.
    """

    def __init__(self, edges: Sequence[float], levels: Sequence[float]) -> None:
        if len(levels) != len(edges) + 1:
            raise NetlistError(
                f"need len(levels) == len(edges) + 1, got {len(levels)} levels "
                f"and {len(edges)} edges"
            )
        if any(e1 >= e2 for e1, e2 in zip(edges, list(edges)[1:])):
            raise NetlistError(f"edges must be strictly increasing, got {list(edges)}")
        self.edges = tuple(float(e) for e in edges)
        self.levels = tuple(float(v) for v in levels)

    def __call__(self, time: float) -> float:
        return self.levels[bisect.bisect_right(self.edges, time)]

    def breakpoints(self) -> tuple[float, ...]:
        return self.edges


def as_stimulus(value: float | Stimulus) -> Stimulus:
    """Coerce a plain number to a :class:`Constant`; pass stimuli through."""
    if isinstance(value, Stimulus):
        return value
    if isinstance(value, (int, float)):
        return Constant(float(value))
    raise NetlistError(f"cannot use {value!r} as a stimulus")
