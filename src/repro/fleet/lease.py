"""Shard leases: tiny JSON heartbeat files the orchestrator watches.

A shard worker owns exactly one lease file for its lifetime.  It writes
the lease when it starts (claiming the die range), refreshes the
``heartbeat`` timestamp as dies complete, and flips ``state`` to
``done``/``failed`` on the way out.  The orchestrator never talks to
workers over a socket — it polls leases (and the OS exit codes), so a
SIGKILLed worker is indistinguishable from a powered-off machine: its
lease simply goes stale and supervision takes over.

Writes are atomic (tmp + rename) and reads are tolerant: a half-written
or corrupt lease reads as ``None``, which the orchestrator treats the
same as "no heartbeat yet" — a crashed writer must never be able to
wedge its own recovery by leaving garbage behind.

Wall-clock time (``time.time``) is deliberate here: leases are compared
across processes and survive restarts, so a monotonic clock (whose
epoch is per-boot, per-process on some platforms) would be wrong.  The
fleet layer is outside the measurement path, so the DET determinism
lint rules do not apply.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path

__all__ = ["ShardLease", "write_lease", "read_lease", "heartbeat_age"]


@dataclass
class ShardLease:
    """One worker's claim on a die range, refreshed as it progresses."""

    shard_id: int
    start: int
    stop: int
    pid: int
    generation: int
    state: str = "running"  #: ``running`` / ``done`` / ``failed``
    heartbeat: float = 0.0  #: ``time.time()`` of the last refresh
    dies_done: int = 0
    run_id: str | None = None

    def touch(self, dies_done: int | None = None) -> "ShardLease":
        """Refresh the heartbeat (and optionally the progress count)."""
        self.heartbeat = time.time()
        if dies_done is not None:
            self.dies_done = dies_done
        return self


def write_lease(path: str | Path, lease: ShardLease) -> None:
    """Persist ``lease`` atomically (tmp + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(asdict(lease)) + "\n", encoding="utf-8")
    os.replace(tmp, path)


def read_lease(path: str | Path) -> ShardLease | None:
    """Load a lease, or ``None`` when missing/corrupt/half-written."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        return ShardLease(
            shard_id=int(data["shard_id"]),
            start=int(data["start"]),
            stop=int(data["stop"]),
            pid=int(data["pid"]),
            generation=int(data["generation"]),
            state=str(data["state"]),
            heartbeat=float(data["heartbeat"]),
            dies_done=int(data["dies_done"]),
            run_id=data.get("run_id"),
        )
    except (OSError, ValueError, TypeError, KeyError):
        return None


def heartbeat_age(lease: ShardLease, now: float | None = None) -> float:
    """Seconds since the lease's last heartbeat (``inf`` if never set)."""
    if lease.heartbeat <= 0.0:
        return float("inf")
    reference = time.time() if now is None else now
    return max(0.0, reference - lease.heartbeat)
