"""Analog-vs-digital diagnosis scoring."""

import numpy as np
import pytest

from repro.bitmap.compare import DiagnosisComparison
from repro.edram.defects import CellDefect, DefectKind
from repro.errors import DiagnosisError


def _masks(shape=(4, 4)):
    analog = np.zeros(shape, dtype=bool)
    digital = np.zeros(shape, dtype=bool)
    return analog, digital


def test_scoring_per_kind():
    analog, digital = _masks()
    analog[0, 0] = True  # low cap caught by analog only
    digital[1, 1] = True  # retention caught by digital only
    analog[2, 2] = digital[2, 2] = True  # short caught by both
    injected = [
        (0, 0, CellDefect(DefectKind.LOW_CAP, 0.5)),
        (1, 1, CellDefect(DefectKind.RETENTION, 10.0)),
        (2, 2, CellDefect(DefectKind.SHORT)),
    ]
    comp = DiagnosisComparison.score(injected, analog, digital)
    assert comp.scores[DefectKind.LOW_CAP].analog_rate == 1.0
    assert comp.scores[DefectKind.LOW_CAP].digital_rate == 0.0
    assert comp.scores[DefectKind.RETENTION].analog_rate == 0.0
    assert comp.scores[DefectKind.RETENTION].digital_rate == 1.0
    assert comp.analog_overall_rate == pytest.approx(2 / 3)
    assert comp.digital_overall_rate == pytest.approx(2 / 3)


def test_false_positives_counted():
    analog, digital = _masks()
    analog[3, 3] = True  # nothing injected there
    comp = DiagnosisComparison.score([], analog, digital)
    assert comp.analog_false_positives == 1
    assert comp.digital_false_positives == 0


def test_shape_mismatch_rejected():
    analog, _ = _masks((4, 4))
    _, digital = _masks((2, 2))
    with pytest.raises(DiagnosisError):
        DiagnosisComparison.score([], analog, digital)


def test_non_boolean_rejected():
    with pytest.raises(DiagnosisError):
        DiagnosisComparison.score([], np.zeros((2, 2)), np.zeros((2, 2), dtype=bool))


def test_out_of_bounds_injection_rejected():
    analog, digital = _masks()
    with pytest.raises(DiagnosisError):
        DiagnosisComparison.score(
            [(9, 9, CellDefect(DefectKind.SHORT))], analog, digital
        )


def test_table_renders():
    analog, digital = _masks()
    analog[0, 0] = True
    comp = DiagnosisComparison.score(
        [(0, 0, CellDefect(DefectKind.OPEN))], analog, digital
    )
    table = comp.table()
    assert "open" in table
    assert "overall" in table
    assert "false positives" in table


def test_empty_injection_rates_are_nan():
    analog, digital = _masks()
    comp = DiagnosisComparison.score([], analog, digital)
    assert comp.analog_overall_rate != comp.analog_overall_rate  # NaN
