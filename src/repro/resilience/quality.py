"""Per-cell measurement quality: the graceful-degradation vocabulary.

The paper's flow earns its keep on *defective* silicon — a short, an
open or a stuck plate must yield a per-cell code in the analog bitmap,
not abort the scan.  When a solver rung fails and a fallback produces
the value instead, the result is still a number, but a number the
downstream consumer (calibration, drift charts, repair allocation)
should weigh differently.  :class:`CellQuality` is that weight:

==========  =====  ====================================================
quality     code   meaning
==========  =====  ====================================================
GOOD        0      produced by the primary tier, no fallback involved
DEGRADED    1      a fallback rung produced the value (gmin/source
                   stepping in the DC ladder, closed-form substitution
                   for a failed engine cell) — usable, flagged
FAILED      2      every rung failed; the value is a placeholder
                   (code 0, V_GS 0.0) and must not enter statistics
==========  =====  ====================================================

Quality planes ride along the scan planes as a ``(rows, cols)`` uint8
array — zero for clean scans, so the plane compresses to nothing in
``.npz`` artifacts and checkpoint files.
"""

from __future__ import annotations

import enum

import numpy as np


class CellQuality(enum.IntEnum):
    """Quality of one measured cell value (ordered worst-last)."""

    GOOD = 0
    DEGRADED = 1
    FAILED = 2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()


#: dtype of quality planes (one byte per cell; zeros compress away).
QUALITY_DTYPE = np.uint8


def quality_plane(shape: tuple[int, int]) -> np.ndarray:
    """A fresh all-GOOD quality plane of the given shape."""
    return np.zeros(shape, dtype=QUALITY_DTYPE)


def quality_counts(plane: np.ndarray) -> dict[str, int]:
    """``{"good": n, "degraded": n, "failed": n}`` for a quality plane."""
    plane = np.asarray(plane)
    return {
        quality.name.lower(): int((plane == int(quality)).sum())
        for quality in CellQuality
    }


def worst_quality(plane: np.ndarray) -> CellQuality:
    """The worst quality present in ``plane`` (GOOD for empty planes)."""
    plane = np.asarray(plane)
    if plane.size == 0:
        return CellQuality.GOOD
    return CellQuality(int(plane.max()))
