"""Shard worker: spec handling, fault-plan hydration, one real shard."""

import json

import numpy as np
import pytest

from repro.errors import FleetError, ResilienceError
from repro.fleet import read_lease
from repro.fleet.worker import fault_plan_from_spec, load_spec, main, run_shard
from repro.resilience import faults as faults_module


@pytest.fixture(autouse=True)
def _reset_worker_marking():
    """run_shard marks this very process as a fault-eligible worker;
    unmark it afterwards or a later test's kill fault would take pytest
    down (monkeypatch can't do this — its teardown would restore the
    True the test itself set)."""
    yield
    faults_module._IN_WORKER = False
    faults_module.install_plan(None)


class TestFaultPlanFromSpec:
    def test_none_is_disarmed(self):
        assert fault_plan_from_spec(None) is None

    def test_kill_fault_round_trip(self):
        plan = fault_plan_from_spec({
            "seed": 3,
            "faults": [{
                "site": "wafer.die_done",
                "kind": "kill",
                "match": {"die": 2},
                "times": 1,
            }],
        })
        (fault,) = plan.faults
        assert fault.site == "wafer.die_done"
        assert fault.kind == "kill"
        assert fault.match == {"die": 2}
        assert plan.seed == 3

    def test_raise_fault_builds_builtin_error(self):
        plan = fault_plan_from_spec({
            "faults": [{
                "site": "wafer.die_done",
                "kind": "raise",
                "error": "RuntimeError",
                "message": "boom",
            }],
        })
        (fault,) = plan.faults
        assert isinstance(fault.error, RuntimeError)
        assert str(fault.error) == "boom"

    def test_unknown_error_name_rejected(self):
        with pytest.raises(ResilienceError, match="not a builtin"):
            fault_plan_from_spec({
                "faults": [{"site": "x", "kind": "raise", "error": "Nope"}],
            })


class TestLoadSpec:
    def test_missing_key_rejected(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"shard_id": 0}), encoding="utf-8")
        with pytest.raises(FleetError, match="missing"):
            load_spec(path)

    def test_unreadable_spec_rejected(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(FleetError, match="unreadable"):
            load_spec(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(FleetError, match="unreadable"):
            load_spec(tmp_path / "absent.json")


def _spec(tmp_path, lo, hi, **extra):
    spec = {
        "shard_id": 0,
        "die_range": [lo, hi],
        "wafer": {"diameter_dies": 3, "seed": 5},
        "ledger_root": str(tmp_path / "ledger"),
        "lease_path": str(tmp_path / "lease.json"),
        "result_path": str(tmp_path / "result.npz"),
        "progress_path": str(tmp_path / "progress.jsonl"),
    }
    spec.update(extra)
    return spec


class TestRunShard:
    def test_one_shard_end_to_end(self, tmp_path):
        assert run_shard(_spec(tmp_path, 2, 6)) == 0

        lease = read_lease(tmp_path / "lease.json")
        assert lease.state == "done"
        assert lease.dies_done == 4
        assert lease.run_id == "r0001"

        with np.load(tmp_path / "result.npz", allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            means = np.array(data["die_means"])
            quality = np.array(data["die_quality"])
        assert meta["die_range"] == [2, 6]
        assert meta["run_id"] == "r0001"
        assert means.shape == (9,)
        assert np.isfinite(means[2:6]).all()
        assert np.isnan(means[:2]).all() and np.isnan(means[6:]).all()
        assert (quality[2:6] == 1).all()

        manifest = [
            json.loads(line)
            for line in (tmp_path / "ledger" / "manifest.jsonl")
            .read_text(encoding="utf-8").splitlines()
        ]
        assert [m["kind"] for m in manifest] == ["shard"]
        assert manifest[0]["run_id"] == "r0001"
        assert manifest[0]["scalars"]["dies"] == 4.0

        # Completion deletes the checkpoint (the run is finished).
        checkpoints = tmp_path / "ledger" / "checkpoints"
        assert not checkpoints.exists() or not list(checkpoints.iterdir())

        # Progress stream exists with start/finish brackets.
        events = [
            json.loads(line)["event"]
            for line in (tmp_path / "progress.jsonl")
            .read_text(encoding="utf-8").splitlines()
        ]
        assert events[0] == "start"
        assert events[-1] == "finish"

    def test_failed_shard_flips_lease(self, tmp_path):
        spec = _spec(tmp_path, 0, 9, faults={
            "faults": [{
                "site": "wafer.die_done",
                "kind": "raise",
                "error": "RuntimeError",
                "match": {"die": 1},
            }],
        })
        with pytest.raises(RuntimeError):
            run_shard(spec)
        lease = read_lease(tmp_path / "lease.json")
        assert lease.state == "failed"
        assert not (tmp_path / "result.npz").exists()


class TestMain:
    def test_usage_exit(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().err

    def test_bad_spec_exit(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text("{}", encoding="utf-8")
        assert main([str(path)]) == 2
        assert "error" in capsys.readouterr().err
