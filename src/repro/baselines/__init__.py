"""Baselines the paper's structure is compared against.

- :mod:`repro.baselines.march` — classical march functional tests
  (MATS++, March C−, plus a retention-pause variant) producing the
  digital pass/fail bitmaps the paper calls "the classical digital
  bitmapping";
- :mod:`repro.baselines.bitline_measure` — the naive alternative the
  paper's plate-node connection exists to avoid: measuring the cell
  capacitor *through the bitline*, where the parasitic bitline
  capacitance swamps the signal (experiment E1);
- :mod:`repro.baselines.direct_probe` — an idealized external probe
  (ground truth with configurable instrument noise) used for scoring.
"""

from repro.baselines.march import (
    MarchElement,
    MarchTest,
    Order,
    Op,
    march_b,
    march_c_minus,
    march_catalog,
    mats,
    mats_pp,
    retention_test,
)
from repro.baselines.bitline_measure import BitlineMeasurement
from repro.baselines.direct_probe import DirectProbe

__all__ = [
    "MarchElement",
    "MarchTest",
    "Order",
    "Op",
    "mats",
    "mats_pp",
    "march_b",
    "march_c_minus",
    "march_catalog",
    "retention_test",
    "BitlineMeasurement",
    "DirectProbe",
]
