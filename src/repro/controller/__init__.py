"""On-chip test controller: scheduling, addressing, streaming.

The paper embeds its structure so capacitor extraction happens "during
the functional test".  This package models the machinery around the
structure that a production deployment needs:

- :class:`AddressGenerator` — cell visit orders (full raster, per-macro,
  sparse sampling for fast process monitoring),
- :class:`TestScheduler` — silicon test-time accounting for a measurement
  campaign (flow time per cell, per-macro setup, dither repeats),
- :class:`CodeStream` — bit-packed, run-length-aware serialization of
  the code map for off-chip transfer through a narrow test port,
- :class:`BISTController` — the end-to-end orchestration: schedule →
  measure → stream → reconstruct.
"""

from repro.controller.address import AddressGenerator, ScanOrder
from repro.controller.scheduler import TestPlan, TestScheduler
from repro.controller.stream import CodeStream, StreamStats
from repro.controller.bist import BISTController, BISTReport

__all__ = [
    "AddressGenerator",
    "ScanOrder",
    "TestPlan",
    "TestScheduler",
    "CodeStream",
    "StreamStats",
    "BISTController",
    "BISTReport",
]
