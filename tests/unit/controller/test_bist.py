"""End-to-end BIST orchestration."""

import numpy as np
import pytest

from repro.controller.address import ScanOrder
from repro.controller.bist import BISTController
from repro.edram.array import EDRAMArray
from repro.edram.variation_map import compose_maps, mismatch_map, uniform_map
from repro.units import fF


@pytest.fixture()
def controller(tech, structure_8x2):
    capacitance = compose_maps(
        uniform_map((16, 8), 30 * fF), mismatch_map((16, 8), 1 * fF, seed=9)
    )
    array = EDRAMArray(16, 8, tech=tech, macro_cols=2, macro_rows=8,
                       capacitance_map=capacitance)
    return BISTController(array, structure_8x2)


def test_full_campaign(controller):
    report = controller.run(ScanOrder.MACRO_MAJOR)
    assert report.coverage == 1.0
    assert report.codes.min() >= 0
    assert report.plan.cells == 128
    assert report.stream.cells == 128


def test_full_campaign_matches_scanner(controller):
    from repro.measure.scan import ArrayScanner

    report = controller.run(ScanOrder.FULL_RASTER)
    direct = ArrayScanner(controller.array, controller.structure).scan()
    assert np.array_equal(report.codes, direct.codes)


def test_sparse_campaign_marks_unvisited(controller):
    report = controller.monitor(fraction=0.1, seed=2)
    assert 0.05 < report.coverage < 0.2
    assert (report.codes[~report.visited] == -1).all()
    assert (report.codes[report.visited] >= 0).all()


def test_sparse_mean_tracks_full_mean(controller):
    full = controller.run(ScanOrder.FULL_RASTER)
    sparse = controller.monitor(fraction=0.25, seed=3)
    assert sparse.mean_code() == pytest.approx(full.mean_code(), abs=1.0)
    assert sparse.sampling_sigma() > 0


def test_checkerboard_covers_half(controller):
    report = controller.run(ScanOrder.CHECKERBOARD)
    assert report.coverage == pytest.approx(0.5)


def test_plan_is_attached(controller):
    report = controller.monitor(fraction=0.1)
    assert report.plan.order is ScanOrder.SPARSE
    assert report.plan.total_time > 0
