"""Benchmark-suite fixtures and reproduced-figure reporting.

Each bench regenerates one of the paper's figures/tables (see DESIGN.md
§4) and registers the reproduced rows via :func:`report`.  Because
pytest captures stdout, the tables are re-emitted in the terminal
summary, so ``pytest benchmarks/ --benchmark-only`` shows both the
timing table and the reproduced data.
"""

from __future__ import annotations

import pytest

from repro.calibration.abacus import Abacus
from repro.calibration.design import design_structure
from repro.tech.parameters import default_technology

_REPORTS: list[tuple[str, str]] = []


def report(title: str, body: str) -> None:
    """Register a reproduced figure/table for the terminal summary."""
    _REPORTS.append((title, body))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("reproduced paper artefacts", sep="=")
    for title, body in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {title} ---")
        for line in body.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def tech():
    """Nominal technology card."""
    return default_technology()


@pytest.fixture(scope="session")
def structure_2x2(tech):
    """Paper-configuration structure (Figure-1-like 2×2 macro)."""
    return design_structure(tech, 2, 2)


@pytest.fixture(scope="session")
def abacus_2x2(structure_2x2):
    """Paper-configuration abacus."""
    return Abacus.analytic(structure_2x2, 2, 2)


@pytest.fixture(scope="session")
def structure_8x2(tech):
    """Structure for 8×2 macros (mid-size benches)."""
    return design_structure(tech, 8, 2)
