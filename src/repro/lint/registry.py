"""Pluggable rule registry.

Every lint rule registers itself under a stable code (``ERC001``,
``PRM001``, ...) with a target kind declaring what it analyzes:

==============  ====================================================
``circuit``     a :class:`~repro.circuit.netlist.Circuit` netlist
``charge``      a :class:`~repro.circuit.charge.CapacitorNetwork`
``flow``        a macro + structure five-phase measurement flow
``technology``  a :class:`~repro.tech.parameters.TechnologyCard`
``source``      a Python source file (AST rules)
``project``     the project's own invariants (no per-file subject)
``footprint``   a recorded :class:`~repro.sanitize.FootprintLog`
==============  ====================================================

Rules are plain functions decorated with :func:`rule`; the decorator
wraps them in a :class:`RuleSpec` and adds them to the module-level
registry.  The analyzer (:mod:`repro.lint.analyzer`) looks rules up by
target; the CLI can restrict execution to explicit codes.  Third-party
extensions register the same way — import order is the only plugin
mechanism needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.errors import LintError
from repro.lint.diagnostics import Diagnostic, Severity

#: Signature of a rule body: (subject, context) -> iterable of findings.
RuleCheck = Callable[[object, dict[str, object]], Iterable[Diagnostic]]


@dataclass(frozen=True)
class RuleSpec:
    """Metadata plus the check callable for one registered rule."""

    code: str
    slug: str
    target: str
    severity: Severity
    summary: str
    check: RuleCheck

    def run(self, subject: object, context: dict[str, object] | None = None) -> list[Diagnostic]:
        """Execute the rule against ``subject``; returns its findings."""
        return list(self.check(subject, context or {}))

    def diagnostic(
        self,
        message: str,
        subject: str = "",
        nodes: tuple[str, ...] = (),
        location: str | None = None,
        severity: Severity | None = None,
    ) -> Diagnostic:
        """Build a finding stamped with this rule's code/slug/severity."""
        return Diagnostic(
            code=self.code,
            slug=self.slug,
            severity=severity or self.severity,
            message=message,
            subject=subject,
            nodes=nodes,
            location=location,
        )


VALID_TARGETS = (
    "circuit", "charge", "flow", "technology", "source", "project", "footprint"
)


class RuleRegistry:
    """Ordered mapping of rule code -> :class:`RuleSpec`."""

    def __init__(self) -> None:
        self._rules: dict[str, RuleSpec] = {}

    def register(self, spec: RuleSpec) -> RuleSpec:
        """Add ``spec``; raises :class:`~repro.errors.LintError` on a
        duplicate code or unknown target kind."""
        if spec.code in self._rules:
            raise LintError(f"duplicate lint rule code {spec.code!r}")
        if spec.target not in VALID_TARGETS:
            raise LintError(
                f"rule {spec.code}: unknown target {spec.target!r} "
                f"(expected one of {VALID_TARGETS})"
            )
        self._rules[spec.code] = spec
        return spec

    def get(self, code: str) -> RuleSpec:
        """Rule registered under ``code``; raises on unknown codes."""
        try:
            return self._rules[code]
        except KeyError:
            known = ", ".join(sorted(self._rules))
            raise LintError(f"unknown lint rule code {code!r} (known: {known})") from None

    def __contains__(self, code: str) -> bool:
        return code in self._rules

    def __iter__(self) -> Iterator[RuleSpec]:
        return iter(self._rules.values())

    def __len__(self) -> int:
        return len(self._rules)

    def codes(self) -> list[str]:
        """All registered codes in registration order."""
        return list(self._rules)

    def for_target(self, target: str, only: Iterable[str] | None = None) -> list[RuleSpec]:
        """Rules of one target kind, optionally restricted to codes in ``only``."""
        if target not in VALID_TARGETS:
            raise LintError(f"unknown lint target {target!r}")
        wanted = None if only is None else set(only)
        return [
            spec
            for spec in self._rules.values()
            if spec.target == target and (wanted is None or spec.code in wanted)
        ]


#: The process-wide registry all built-in rules register into.
REGISTRY = RuleRegistry()


def rule(
    code: str,
    slug: str,
    target: str,
    severity: Severity = Severity.ERROR,
    summary: str = "",
) -> Callable[[RuleCheck], RuleSpec]:
    """Decorator: register the wrapped function as a lint rule.

    The function receives ``(subject, context)`` and yields/returns
    :class:`Diagnostic` instances; use ``spec.diagnostic(...)`` inside
    the body to stamp findings consistently (the spec is the decorated
    name after decoration).
    """

    def decorate(check: RuleCheck) -> RuleSpec:
        doc_first_line = (check.__doc__ or "").strip().splitlines()[0] if check.__doc__ else ""
        spec = RuleSpec(
            code=code,
            slug=slug,
            target=target,
            severity=severity,
            summary=summary or doc_first_line,
            check=check,
        )
        return REGISTRY.register(spec)

    return decorate
