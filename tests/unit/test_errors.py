"""Exception hierarchy contracts."""

import pytest

from repro import errors


@pytest.mark.parametrize(
    "exc",
    [
        errors.NetlistError,
        errors.ConvergenceError,
        errors.SingularCircuitError,
        errors.TechnologyError,
        errors.ArrayConfigError,
        errors.DefectError,
        errors.MeasurementError,
        errors.CalibrationError,
        errors.DiagnosisError,
    ],
)
def test_all_errors_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)
    with pytest.raises(errors.ReproError):
        raise exc("boom")


def test_convergence_error_carries_diagnostics():
    err = errors.ConvergenceError("no convergence", iterations=42, residual=1e-3)
    assert err.iterations == 42
    assert err.residual == pytest.approx(1e-3)


def test_convergence_error_defaults():
    err = errors.ConvergenceError("plain")
    assert err.iterations == 0
    assert err.residual != err.residual  # NaN
