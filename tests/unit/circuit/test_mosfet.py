"""MOSFET model: regions, symmetry, derivatives, body effect."""

import pytest

from repro.circuit.mosfet import Mosfet
from repro.errors import NetlistError
from repro.units import um


@pytest.fixture()
def nmos(tech):
    return Mosfet("MN", "d", "g", "s", tech.nmos, w=0.36 * um, l=0.18 * um)


@pytest.fixture()
def pmos(tech):
    return Mosfet("MP", "d", "g", "s", tech.pmos, w=0.72 * um, l=0.18 * um, bulk_voltage=1.8)


class TestRegions:
    def test_off_state_leakage_is_tiny(self, nmos):
        assert 0 < nmos.ids(1.8, 0.0, 0.0) < 1e-9

    def test_subthreshold_slope_is_exponential(self, nmos, tech):
        from repro.units import thermal_voltage

        i1 = nmos.ids(1.8, 0.20, 0.0)
        i2 = nmos.ids(1.8, 0.30, 0.0)
        import math

        observed_slope = 0.1 / math.log10(i2 / i1)  # V/decade
        expected = tech.nmos.n_sub * thermal_voltage() * math.log(10)
        assert observed_slope == pytest.approx(expected, rel=0.1)

    def test_saturation_current_quadratic_in_overdrive(self, nmos):
        # strong inversion, deep saturation: I ~ (vgs - vth)^2
        i1 = nmos.ids(1.8, 0.95, 0.0)
        i2 = nmos.ids(1.8, 1.45, 0.0)
        ratio = i2 / i1
        assert ratio == pytest.approx(4.0, rel=0.15)  # (1.0/0.5)^2

    def test_triode_conductance_matches_level1(self, nmos, tech):
        # g = beta * vov at vds -> 0
        vgs = 1.2
        vov = vgs - tech.nmos.vth0
        g_expected = tech.nmos.beta(0.36 * um, 0.18 * um) * vov
        g_measured = nmos.ids(0.01, vgs, 0.0) / 0.01
        assert g_measured == pytest.approx(g_expected, rel=0.1)

    def test_monotone_in_vgs_and_vds(self, nmos):
        currents = [nmos.ids(1.0, vgs, 0.0) for vgs in (0.3, 0.6, 0.9, 1.2, 1.5)]
        assert all(a < b for a, b in zip(currents, currents[1:]))
        currents = [nmos.ids(vds, 1.2, 0.0) for vds in (0.1, 0.4, 0.8, 1.4)]
        assert all(a < b for a, b in zip(currents, currents[1:]))


class TestSymmetryAndPolarity:
    def test_reverse_operation_negates_current(self, nmos):
        assert nmos.ids(0.0, 0.9, 1.8) == pytest.approx(-nmos.ids(1.8, 0.9, 0.0))

    def test_zero_vds_zero_current(self, nmos):
        assert nmos.ids(0.7, 1.2, 0.7) == pytest.approx(0.0, abs=1e-15)

    def test_pmos_conducts_with_low_gate(self, pmos):
        assert pmos.ids(0.0, 0.0, 1.8) < -1e-5  # negative drain current

    def test_pmos_off_with_high_gate(self, pmos):
        assert abs(pmos.ids(0.0, 1.8, 1.8)) < 1e-9

    def test_pmos_mirror_symmetry(self, tech):
        n = Mosfet("MN", "d", "g", "s", tech.nmos, w=1e-6, l=0.2e-6)
        p_params = tech.pmos.with_shift(kp_scale=tech.nmos.kp / tech.pmos.kp)
        p = Mosfet("MP", "d", "g", "s", p_params, w=1e-6, l=0.2e-6, bulk_voltage=1.8)
        i_n = n.ids(1.0, 1.2, 0.0)
        i_p = p.ids(0.8, 0.6, 1.8)  # mirrored bias around 0.9
        assert i_p == pytest.approx(-i_n, rel=1e-9)


class TestDerivatives:
    @pytest.mark.parametrize(
        "bias",
        [
            (1.8, 1.2, 0.0),  # saturation
            (0.05, 1.2, 0.0),  # triode
            (1.8, 0.3, 0.0),  # subthreshold
            (0.7, 1.1, 0.2),  # body effect active
            (0.1, 0.9, 1.8),  # swapped
        ],
    )
    def test_analytic_derivatives_match_numeric(self, nmos, bias):
        vd, vg, vs = bias
        h = 1e-7
        _, dd, dg, ds = nmos.ids_and_derivatives(vd, vg, vs)
        nd = (nmos.ids(vd + h, vg, vs) - nmos.ids(vd - h, vg, vs)) / (2 * h)
        ng = (nmos.ids(vd, vg + h, vs) - nmos.ids(vd, vg - h, vs)) / (2 * h)
        if vs == 0.0 and vd >= vs:
            # The body-effect clamp has a kink at vsb = 0; the analytic
            # derivative is the left limit, so difference on that side.
            ns = (nmos.ids(vd, vg, vs) - nmos.ids(vd, vg, vs - h)) / h
        else:
            ns = (nmos.ids(vd, vg, vs + h) - nmos.ids(vd, vg, vs - h)) / (2 * h)
        assert dd == pytest.approx(nd, rel=1e-4, abs=1e-15)
        assert dg == pytest.approx(ng, rel=1e-4, abs=1e-15)
        assert ds == pytest.approx(ns, rel=1e-3, abs=1e-14)

    def test_pmos_derivatives_match_numeric(self, pmos):
        vd, vg, vs = 0.3, 0.4, 1.7
        h = 1e-7
        _, dd, dg, ds = pmos.ids_and_derivatives(vd, vg, vs)
        nd = (pmos.ids(vd + h, vg, vs) - pmos.ids(vd - h, vg, vs)) / (2 * h)
        ng = (pmos.ids(vd, vg + h, vs) - pmos.ids(vd, vg - h, vs)) / (2 * h)
        ns = (pmos.ids(vd, vg, vs + h) - pmos.ids(vd, vg, vs - h)) / (2 * h)
        assert dd == pytest.approx(nd, rel=1e-4, abs=1e-15)
        assert dg == pytest.approx(ng, rel=1e-4, abs=1e-15)
        assert ds == pytest.approx(ns, rel=1e-4, abs=1e-15)


class TestBodyEffect:
    def test_threshold_rises_with_source_voltage(self, nmos):
        assert nmos.threshold_voltage(1.0) > nmos.threshold_voltage(0.0)

    def test_clamped_below_zero_vsb(self, nmos):
        assert nmos.threshold_voltage(-0.5) == pytest.approx(nmos.threshold_voltage(0.0))

    def test_pass_transistor_source_follower_limit(self, tech):
        # An n-MOS passing a high level conducts less as its source rises.
        m = Mosfet("M", "d", "g", "s", tech.nmos, w=1e-6, l=0.2e-6)
        i_low_src = m.ids(1.8, 1.8, 0.0)
        i_high_src = m.ids(1.8, 1.8, 1.2)
        assert i_high_src < 0.1 * i_low_src


class TestConstruction:
    def test_rejects_bad_geometry(self, tech):
        with pytest.raises(NetlistError):
            Mosfet("M", "d", "g", "s", tech.nmos, w=0.0, l=1e-6)

    def test_rejects_negative_gate_caps(self, tech):
        with pytest.raises(NetlistError):
            Mosfet("M", "d", "g", "s", tech.nmos, w=1e-6, l=1e-6, cgs=-1e-15)

    def test_gate_capacitance_total(self, tech):
        m = Mosfet("M", "d", "g", "s", tech.nmos, w=1 * um, l=1 * um)
        assert m.gate_capacitance_total == pytest.approx(
            tech.nmos.gate_capacitance(1 * um, 1 * um)
        )

    def test_saturation_current_helper(self, nmos):
        assert nmos.saturation_current(1.2) > 0
