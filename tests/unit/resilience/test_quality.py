"""CellQuality vocabulary and quality-plane helpers."""

import numpy as np

from repro.resilience.quality import (
    CellQuality,
    QUALITY_DTYPE,
    quality_counts,
    quality_plane,
    worst_quality,
)


def test_quality_ordering_worst_last():
    assert CellQuality.GOOD < CellQuality.DEGRADED < CellQuality.FAILED
    assert int(CellQuality.GOOD) == 0  # zeros compress away in .npz


def test_quality_plane_starts_all_good():
    plane = quality_plane((4, 3))
    assert plane.shape == (4, 3)
    assert plane.dtype == QUALITY_DTYPE
    assert not plane.any()


def test_quality_counts_buckets_every_level():
    plane = quality_plane((2, 3))
    plane[0, 0] = CellQuality.DEGRADED
    plane[1, 2] = CellQuality.FAILED
    assert quality_counts(plane) == {"good": 4, "degraded": 1, "failed": 1}


def test_worst_quality():
    plane = quality_plane((2, 2))
    assert worst_quality(plane) is CellQuality.GOOD
    plane[0, 1] = CellQuality.DEGRADED
    assert worst_quality(plane) is CellQuality.DEGRADED
    plane[1, 1] = CellQuality.FAILED
    assert worst_quality(plane) is CellQuality.FAILED


def test_worst_quality_empty_plane_is_good():
    assert worst_quality(np.zeros((0, 0), dtype=QUALITY_DTYPE)) is CellQuality.GOOD


def test_str_is_lowercase_name():
    assert str(CellQuality.DEGRADED) == "degraded"
