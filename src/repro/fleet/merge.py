"""Crash-safe lot merge: shard results → one lot-level artifact.

The merge is the fleet's trust boundary.  Shards may have died, been
respawned, or failed outright; the merge must still produce a lot whose
measured planes are **bit-exact** with an unsharded run, whose missing
coverage is explicit (FAILED die quality, never silent gaps), and whose
provenance is consistent (every shard measured under the same config
fingerprint, or the merge refuses).  Concretely:

- the shard partition recorded in ``fleet.json`` is re-validated
  through the FLT lint rules — a hand-edited or corrupt plan with an
  overlap or gap is refused before any plane is touched,
- every shard result's config fingerprint (and wafer parameters) must
  equal the fleet's — mixing results from different configurations is
  a :class:`~repro.errors.FleetError`, not a quiet wrong answer,
- writes are atomic (tmp + rename) and the merge is **idempotent**:
  re-running it over the same shard results produces byte-identical
  ``lot.npz`` / ``lot.json`` (no timestamps inside — provenance time
  lives in the run-ledger manifest, not the artifact),
- lot scalars (capacitance statistics, radial regression, zone ring
  means, failure coverage) feed the EWMA/CUSUM drift engine under
  ``kind="lot"`` so cross-fab / cross-lot drift charts include the
  spatial signatures the paper's process-monitoring use case needs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import FleetError
from repro.fleet.lease import read_lease
from repro.wafer import DieQuality

__all__ = ["LotMerge", "merge_lot", "lot_scalars"]

#: ``lot.npz`` / ``lot.json`` format version.
_LOT_FORMAT = 1


@dataclass
class LotMerge:
    """The merged lot: full wafer planes plus provenance and health."""

    state: str  #: healthy / degraded / failed
    total_dies: int
    die_means: np.ndarray
    die_sigmas: np.ndarray
    die_vgs: np.ndarray
    die_codes: np.ndarray
    die_cell_quality: np.ndarray
    die_quality: np.ndarray
    scalars: dict[str, float] = field(default_factory=dict)
    shard_runs: dict[str, str | None] = field(default_factory=dict)
    failed_ranges: list[tuple[int, int]] = field(default_factory=list)
    run_id: str | None = None

    @property
    def exit_code(self) -> int:
        from repro.fleet.orchestrator import fleet_exit_code

        return fleet_exit_code(self.state)


def _lint_partition(partition: list[list[int]], total_dies: int) -> None:
    """Refuse a recorded partition the FLT lint family rejects."""
    from repro.lint.analyzer import lint_project

    report = lint_project(
        only=("FLT001", "FLT002"),
        context={"ranges": partition, "total_dies": total_dies},
    )
    errors = [d for d in report.diagnostics if d.severity.name == "ERROR"]
    if errors:
        detail = "; ".join(d.message for d in errors)
        raise FleetError(
            f"recorded shard partition fails FLT validation: {detail}"
        )


def _radial_geometry(wafer_kwargs: dict[str, Any]) -> list[tuple[int, int, float]]:
    """Die sites (x, y, radius fraction) from the recorded wafer params.

    Geometry only — no fabrication, no RNG draws — so reconstructing it
    at merge time cannot perturb determinism.
    """
    from repro.wafer import WaferModel

    return WaferModel(**wafer_kwargs).sites()


#: Concentric radius-fraction rings behind the zone scalars.
_ZONES = (("centre", 0.0, 1 / 3), ("mid", 1 / 3, 2 / 3), ("edge", 2 / 3, 1.0))


def lot_scalars(
    sites: list[tuple[int, int, float]],
    die_means: np.ndarray,
    die_sigmas: np.ndarray,
    die_quality: np.ndarray,
    diameter: int,
    respawns: int = 0,
) -> dict[str, float]:
    """Lot-level drift scalars, including radial/zone spatial signatures.

    Failed (unmeasured) dies are excluded from the physics statistics —
    their NaN placeholders must not poison the charts — and surface
    instead through ``failed_dies`` / ``measured_fraction``, which the
    drift engine alarms on directly.  Zone rings with no measured die
    contribute no scalar (an absent key, which the drift engine skips,
    rather than a NaN it would chart).
    """
    from repro.units import to_fF
    from repro.wafer import DieSite, WaferReport

    good = die_quality == int(DieQuality.GOOD)
    measured = [
        DieSite(x, y, r, float(die_means[i]), float(die_sigmas[i]))
        for i, (x, y, r) in enumerate(sites)
        if good[i]
    ]
    total = len(sites)
    scalars: dict[str, float] = {
        "dies": float(total),
        "failed_dies": float(total - len(measured)),
        "measured_fraction": len(measured) / total if total else 0.0,
        "shard_respawns": float(respawns),
    }
    if not measured:
        return scalars
    report = WaferReport(dies=measured, diameter=diameter)
    means = [d.mean_capacitance for d in measured]
    a, b = report.radial_profile()
    scalars.update({
        "cap_mean_fF": float(to_fF(report.wafer_mean)),
        "cap_sigma_fF": float(to_fF(np.std(means))),
        "die_sigma_mean_fF": float(to_fF(
            np.mean([d.sigma_capacitance for d in measured])
        )),
        "radial_centre_fF": float(to_fF(a)),
        "radial_drop_fF": float(to_fF(-b)),
    })
    for name, lo, hi in _ZONES:
        ring = [
            d.mean_capacitance for d in measured
            if lo <= d.radius_fraction < hi
            or (hi == 1.0 and d.radius_fraction == 1.0)
        ]
        if ring:
            scalars[f"zone_{name}_fF"] = float(to_fF(np.mean(ring)))
            scalars[f"zone_{name}_dies"] = float(len(ring))
    return scalars


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:  # EPERM: exists, owned by someone else
        return True
    return True


def _live_worker_pids(state: dict[str, Any]) -> list[int]:
    """PIDs of shard workers whose lease still belongs to a live process.

    A fleet.json stuck at ``running`` (the orchestrator itself crashed)
    is only genuinely live if some worker's lease is still in state
    ``running`` *and* its recorded pid exists — a dead pid means the
    worker is gone and its on-disk results are final.
    """
    pids = []
    for paths in state.get("paths", {}).values():
        lease = read_lease(paths["lease_path"])
        if lease is None or lease.state != "running":
            continue
        if _pid_alive(lease.pid):
            pids.append(lease.pid)
    return sorted(pids)


def _load_shard_result(path: Path) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
    try:
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            arrays = {
                key: np.array(data[key])
                for key in data.files
                if key != "meta"
            }
    except (OSError, ValueError, KeyError) as exc:
        raise FleetError(f"unreadable shard result {path}: {exc}") from exc
    return meta, arrays


def merge_lot(
    root: str | Path,
    *,
    ledger=None,
    label: str = "",
    force: bool = False,
) -> LotMerge:
    """Merge one fleet root's shard results into the lot artifact.

    Reads ``fleet.json``, validates partition and fingerprints, fills
    retry-exhausted shards' ranges with FAILED die quality, writes
    ``lot.npz`` + ``lot.json`` atomically, and (when ``ledger`` is
    given) records a ``kind="lot"`` manifest carrying the lot scalars
    for the drift engine.  Idempotent: merging again without new shard
    results rewrites byte-identical artifacts.

    A fleet whose ``fleet.json`` still says ``running`` is refused only
    while some shard worker is provably alive (a ``running`` lease whose
    pid exists) — a crashed orchestrator leaves ``running`` behind
    forever, and crash-safety means those shards' completed results must
    still merge.  ``force=True`` merges even past live workers (their
    in-flight ranges surface as FAILED coverage, never partial planes).
    """
    from repro.fleet.orchestrator import fleet_state

    root = Path(root)
    state = fleet_state(root)
    if state.get("state") == "running" and not force:
        live = _live_worker_pids(state)
        if live:
            raise FleetError(
                f"fleet at {root} is still running (live shard worker "
                f"pid(s) {', '.join(map(str, live))}); merge after it "
                "completes, or pass force=True to merge anyway"
            )
    total_dies = int(state["total_dies"])
    partition = [list(entry) for entry in state["partition"]]
    _lint_partition(partition, total_dies)
    fleet_print = state["fingerprint"]

    planes: dict[str, np.ndarray] | None = None
    shard_runs: dict[str, str | None] = {}
    failed_ranges: list[tuple[int, int]] = []
    respawns = 0
    statuses = {
        int(s["shard_id"]): s for s in state.get("shard_status", [])
    }
    for shard_id, start, stop in partition:
        key = f"s{shard_id:02d}"
        status = statuses.get(shard_id, {})
        respawns += int(status.get("respawns", 0))
        result_path = Path(state["paths"][key]["result_path"])
        shard_done = status.get("state") == "done"
        if not shard_done and state.get("state") == "running":
            # Crashed orchestrator: shard_status froze at "running",
            # but a worker that finished flipped its own lease to done
            # (its last act) — trust that over the stale fleet.json.
            lease = read_lease(state["paths"][key]["lease_path"])
            shard_done = lease is not None and lease.state == "done"
        if not shard_done or not result_path.exists():
            failed_ranges.append((start, stop))
            shard_runs[key] = None
            continue
        meta, arrays = _load_shard_result(result_path)
        if meta.get("fingerprint") != fleet_print["config"]:
            raise FleetError(
                f"shard {shard_id} measured under config "
                f"{meta.get('fingerprint')} but the fleet ran "
                f"{fleet_print['config']}; refusing to merge mixed lots"
            )
        if meta.get("wafer") != fleet_print["wafer"]:
            raise FleetError(
                f"shard {shard_id} fabricated wafer {meta.get('wafer')} "
                f"but the fleet planned {fleet_print['wafer']}; refusing "
                "to merge mixed lots"
            )
        if list(meta.get("die_range", [])) != [start, stop]:
            raise FleetError(
                f"shard {shard_id} result covers die range "
                f"{meta.get('die_range')} but the partition assigns "
                f"[{start}, {stop})"
            )
        shard_runs[key] = meta.get("run_id")
        if planes is None:
            planes = {
                name: np.zeros_like(array)
                for name, array in arrays.items()
            }
            planes["die_means"][:] = np.nan
            planes["die_sigmas"][:] = np.nan
        for name, array in arrays.items():
            planes[name][start:stop] = array[start:stop]

    if planes is None:
        # Every shard failed: an all-FAILED lot with empty planes.
        die_rows = fleet_print["wafer"].get("die_rows", 16)
        die_cols = fleet_print["wafer"].get("die_cols", 8)
        planes = {
            "die_means": np.full(total_dies, np.nan),
            "die_sigmas": np.full(total_dies, np.nan),
            "die_vgs": np.zeros((total_dies, die_rows, die_cols)),
            "die_codes": np.zeros(
                (total_dies, die_rows, die_cols), dtype=int
            ),
            "die_cell_quality": np.zeros(
                (total_dies, die_rows, die_cols), dtype=np.uint8
            ),
            "die_quality": np.zeros(total_dies, dtype=np.uint8),
        }
    for start, stop in failed_ranges:
        planes["die_quality"][start:stop] = int(DieQuality.FAILED)
        planes["die_means"][start:stop] = np.nan
        planes["die_sigmas"][start:stop] = np.nan

    wafer_kwargs = dict(fleet_print["wafer"])
    sites = _radial_geometry(wafer_kwargs)
    scalars = lot_scalars(
        sites,
        planes["die_means"],
        planes["die_sigmas"],
        planes["die_quality"],
        diameter=int(wafer_kwargs.get("diameter_dies", 9)),
        respawns=respawns,
    )

    measured = int((planes["die_quality"] == int(DieQuality.GOOD)).sum())
    if measured == total_dies:
        lot_state = "healthy"
    elif measured == 0:
        lot_state = "failed"
    else:
        lot_state = "degraded"

    lot_meta = {
        "format": _LOT_FORMAT,
        "state": lot_state,
        "label": label or state.get("label", ""),
        "total_dies": total_dies,
        "partition": partition,
        "fingerprint": fleet_print,
        "shard_runs": shard_runs,
        "failed_ranges": [list(r) for r in sorted(failed_ranges)],
        "scalars": scalars,
    }
    npz_path = root / "lot.npz"
    tmp = npz_path.with_suffix(".tmp.npz")
    np.savez_compressed(tmp, meta=np.array(json.dumps(lot_meta)), **planes)
    os.replace(tmp, npz_path)
    json_path = root / "lot.json"
    tmp_json = json_path.with_suffix(".tmp")
    tmp_json.write_text(
        json.dumps(lot_meta, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    os.replace(tmp_json, json_path)

    run_id = None
    if ledger is not None:
        from repro.obs.ledger import RunManifest

        manifest = RunManifest(
            kind="lot",
            label=label or state.get("label", ""),
            config=dict(fleet_print["config"]),
            seed=fleet_print["wafer"].get("seed"),
            tech=fleet_print["wafer"].get("technology", "edram"),
            scalars=dict(scalars),
            extra={
                "fleet_root": str(root),
                "shard_runs": shard_runs,
                "failed_ranges": [list(r) for r in sorted(failed_ranges)],
                "state": lot_state,
            },
        )
        run_id = ledger.record(manifest).run_id

    return LotMerge(
        state=lot_state,
        total_dies=total_dies,
        scalars=scalars,
        shard_runs=shard_runs,
        failed_ranges=sorted(failed_ranges),
        run_id=run_id,
        **planes,
    )
