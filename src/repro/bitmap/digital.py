"""The classical digital (pass/fail) bitmap baseline.

What failure analysis had before the paper's structure: a boolean map of
cells that miscompared during functional test.  Rich spatial information,
but a binary verdict per cell — a 25 fF cell that still reads correctly
is invisible, and a shorted cell is indistinguishable from an open one.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DiagnosisError


class DigitalBitmap:
    """Boolean fail map plus provenance.

    Parameters
    ----------
    fails:
        (rows, cols) boolean array, True = at least one miscompare.
    source:
        Human-readable origin, e.g. ``"March C-"`` or
        ``"MATS++ + 100 ms pause"``.
    """

    def __init__(self, fails: np.ndarray, source: str = "unknown") -> None:
        fails = np.asarray(fails)
        if fails.ndim != 2 or fails.dtype != bool:
            raise DiagnosisError("fails must be a 2-D boolean array")
        self.fails = fails
        self.source = source

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, cols) of the bitmap."""
        return self.fails.shape  # type: ignore[return-value]

    @property
    def fail_count(self) -> int:
        """Total failing cells."""
        return int(self.fails.sum())

    def fail_addresses(self) -> list[tuple[int, int]]:
        """Sorted (row, col) list of failing cells."""
        rows, cols = np.nonzero(self.fails)
        return [(int(r), int(c)) for r, c in zip(rows, cols)]

    def row_fail_counts(self) -> np.ndarray:
        """Failures per row."""
        return self.fails.sum(axis=1)

    def column_fail_counts(self) -> np.ndarray:
        """Failures per column."""
        return self.fails.sum(axis=0)

    def merge(self, other: "DigitalBitmap") -> "DigitalBitmap":
        """Union of two fail maps (e.g. several march runs)."""
        if other.shape != self.shape:
            raise DiagnosisError(
                f"cannot merge bitmaps of shapes {self.shape} and {other.shape}"
            )
        return DigitalBitmap(self.fails | other.fails, f"{self.source} + {other.source}")

    def yield_fraction(self) -> float:
        """Fraction of cells passing."""
        total = self.fails.size
        return 1.0 - self.fail_count / total
