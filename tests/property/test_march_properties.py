"""Property-based tests of march tests and array operations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.march import march_c_minus, mats_pp
from repro.edram.array import EDRAMArray
from repro.edram.defects import CellDefect, DefectKind
from repro.edram.operations import ArrayOperations
from repro.tech.parameters import default_technology
from repro.units import fF

_TECH = default_technology()


@given(
    rows=st.integers(1, 6),
    cols=st.integers(1, 6),
    sigma=st.floats(0.0, 3.0),
    seed=st.integers(0, 1000),
)
@settings(max_examples=40, deadline=None)
def test_healthy_array_always_passes_march(rows, cols, sigma, seed):
    rng = np.random.default_rng(seed)
    cap = np.abs(30 * fF + rng.normal(0, sigma * fF, (rows, cols))) + 5 * fF
    mc = 1 if cols % 2 else 2
    arr = EDRAMArray(rows, cols, tech=_TECH, macro_cols=mc, capacitance_map=cap)
    assert mats_pp().run(ArrayOperations(arr)).fail_count == 0


@given(
    pattern=st.lists(st.booleans(), min_size=16, max_size=16),
)
@settings(max_examples=40, deadline=None)
def test_write_read_roundtrip_any_pattern(pattern):
    arr = EDRAMArray(4, 4, tech=_TECH)
    ops = ArrayOperations(arr)
    for idx, bit in enumerate(pattern):
        ops.write(idx // 4, idx % 4, bit)
    for idx, bit in enumerate(pattern):
        assert ops.read(idx // 4, idx % 4) == bit


@given(
    where=st.tuples(st.integers(0, 3), st.integers(0, 3)),
    kind=st.sampled_from([DefectKind.SHORT, DefectKind.OPEN, DefectKind.ACCESS_OPEN]),
)
@settings(max_examples=40, deadline=None)
def test_hard_fault_always_caught_by_march_c(where, kind):
    arr = EDRAMArray(4, 4, tech=_TECH)
    arr.cell(*where).apply_defect(CellDefect(kind))
    bitmap = march_c_minus().run(ArrayOperations(arr))
    assert bitmap.fails[where]


@given(where_col=st.integers(0, 2), row=st.integers(0, 3))
@settings(max_examples=30, deadline=None)
def test_bridge_always_caught_by_march_c(where_col, row):
    arr = EDRAMArray(4, 4, tech=_TECH)
    arr.cell(row, where_col).apply_defect(CellDefect(DefectKind.BRIDGE))
    bitmap = march_c_minus().run(ArrayOperations(arr))
    assert bitmap.fails[row, where_col] or bitmap.fails[row, where_col + 1]
