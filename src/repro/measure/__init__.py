"""The paper's contribution: the embedded capacitor measurement structure.

This package implements the test structure of Figure 1 and its five-phase
measurement flow (§2 of the paper):

1. **Discharge** — every capacitor in the macro-cell and the structure is
   grounded (all wordlines on, all bitlines driven low, PRG and LEC on,
   IN low).
2. **Charge C_m** — only the target cell's capacitor is charged: its
   wordline stays on, its bitline stays grounded, every other bitline is
   raised to V_DD, LEC is off, and IN drives the plate to V_DD through
   PRG.  PRG opens at the end of the phase.
3. **Isolate** — every bitline-select transistor except the target's
   opens, leaving C_m as the only capacitor actively held on the plate.
4. **Charge share** — LEC closes; C_m shares charge with C_REF (the gate
   capacitance of the REF transistor), setting V_GS.
5. **Convert** — the programmable current reference I_REFP ramps through
   ``num_steps`` equal increments under shift-register control.  When the
   injected current exceeds what REF can sink below V_DD/2, the drain
   rises past the inverter threshold and OUT flips; the register position
   at the flip is the digital code.

Three execution tiers produce the same code and are cross-validated:

- :meth:`MeasurementSequencer.measure_transient` — full MNA transient on
  the real-transistor netlist (the Figure-2 reproduction),
- :meth:`MeasurementSequencer.measure_charge` — exact ideal-switch
  charge-redistribution flow plus a static I-V conversion,
- :class:`repro.measure.scan.ArrayScanner` — vectorized closed-form
  evaluation of the same algebra for whole-array scans.
"""

from repro.measure.config import ScanConfig
from repro.measure.result import MeasurementResult, CodeMeaning
from repro.measure.shift_register import ShiftRegister
from repro.measure.current_dac import ProgrammableCurrentReference
from repro.measure.sense import SenseChain, InverterDesign
from repro.measure.structure import MeasurementDesign, MeasurementStructure
from repro.measure.phases import PhasePlan, Phase
from repro.measure.sequencer import MeasurementSequencer
from repro.measure.kernel import KernelConstants, closed_form_vgs_plane
from repro.measure.scan import ArrayScanner, ScanResult
from repro.measure.stats import MacroTiming, ScanStats
from repro.measure.noise import NoiseAnalysis, NoiseBudget
from repro.measure.faults import FaultSpec, FaultySequencer, StructureFault, fault_signature

__all__ = [
    "MeasurementResult",
    "CodeMeaning",
    "ShiftRegister",
    "ProgrammableCurrentReference",
    "SenseChain",
    "InverterDesign",
    "MeasurementDesign",
    "MeasurementStructure",
    "PhasePlan",
    "Phase",
    "MeasurementSequencer",
    "KernelConstants",
    "closed_form_vgs_plane",
    "ArrayScanner",
    "ScanConfig",
    "ScanResult",
    "ScanStats",
    "MacroTiming",
    "NoiseAnalysis",
    "NoiseBudget",
    "FaultSpec",
    "FaultySequencer",
    "StructureFault",
    "fault_signature",
]
