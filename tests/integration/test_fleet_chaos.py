"""Fleet chaos drills: kill a shard, watch recovery; exhaust retries,
watch degradation.

These are the end-to-end proofs behind the fleet's two promises:

1. **Recovery is invisible.**  A shard killed mid-measurement is
   respawned, resumes from its checkpoint, and the merged lot is
   bit-identical to a fleet that was never touched (the only trace is
   the ``shard_respawns`` telemetry scalar).
2. **Degradation is explicit.**  A shard that dies on every attempt
   exhausts its retry budget; the merge marks exactly its die range
   FAILED, keeps every surviving shard's planes bit-exact, and the
   exit-code ladder reports degraded — never a silent gap, never a
   poisoned healthy lot.
"""

import json

import numpy as np
import pytest

from repro.fleet import FleetOrchestrator, merge_lot
from repro.fleet.orchestrator import EXIT_DEGRADED, EXIT_HEALTHY
from repro.resilience import RetryPolicy
from repro.wafer import DieQuality

DIAMETER = 5  # 21 dies
SEED = 3

_PLANES = (
    "die_means", "die_sigmas", "die_vgs", "die_codes",
    "die_cell_quality", "die_quality",
)


def _kill_die(die: int) -> dict:
    """A fault plan that kills the worker right after ``die`` completes."""
    return {
        "seed": 0,
        "faults": [{
            "site": "wafer.die_done",
            "kind": "kill",
            "match": {"die": die},
            "times": 1,
        }],
    }


def _fleet(root, **overrides):
    kwargs = dict(
        wafer={"diameter_dies": DIAMETER, "seed": SEED},
        shards=3,
        poll_seconds=0.02,
        retry=RetryPolicy(max_attempts=3, base_delay=0.01),
    )
    kwargs.update(overrides)
    return FleetOrchestrator(root, **kwargs)


@pytest.fixture(scope="module")
def unkilled_lot(tmp_path_factory):
    """The control: the same fleet with no faults injected."""
    root = tmp_path_factory.mktemp("control") / "fleet"
    report = _fleet(root).run()
    assert report.state == "healthy"
    assert report.respawns == 0
    return merge_lot(root)


class TestKillAndRecover:
    def test_killed_shard_resumes_and_merges_bit_exact(
        self, tmp_path, unkilled_lot
    ):
        root = tmp_path / "fleet"
        # Die 1 lives in shard 0's range [0, 7); arming the kill only on
        # each shard's first spawn means the respawn survives.
        report = _fleet(
            root, faults=_kill_die(1), fault_attempts="first"
        ).run()

        assert report.state == "healthy"
        assert report.respawns >= 1
        shard0 = report.shards[0]
        assert shard0.state == "done"
        assert shard0.attempts >= 2

        lot = merge_lot(root)
        assert lot.state == "healthy"
        assert lot.exit_code == EXIT_HEALTHY
        assert lot.failed_ranges == []
        for name in _PLANES:
            np.testing.assert_array_equal(
                getattr(lot, name), getattr(unkilled_lot, name),
                err_msg=name,
            )
        # Telemetry is the ONLY legitimate difference between the two
        # lots: the killed fleet records its respawns, nothing else.
        for key, value in unkilled_lot.scalars.items():
            if key == "shard_respawns":
                continue
            assert lot.scalars[key] == value, key
        assert lot.scalars["shard_respawns"] >= 1.0
        assert unkilled_lot.scalars["shard_respawns"] == 0.0


class TestRetryExhaustion:
    def test_exhausted_shard_degrades_explicitly(
        self, tmp_path, unkilled_lot
    ):
        root = tmp_path / "fleet"
        # Die 7 opens shard 1's range [7, 14); arming the kill on EVERY
        # spawn burns through the whole retry budget.
        report = _fleet(
            root,
            faults=_kill_die(7),
            fault_attempts="all",
            retry=RetryPolicy(max_attempts=2, base_delay=0.01),
        ).run()

        assert report.state == "degraded"
        shard1 = report.shards[1]
        assert shard1.state == "failed"
        assert shard1.attempts == 2

        lot = merge_lot(root)
        assert lot.state == "degraded"
        assert lot.exit_code == EXIT_DEGRADED
        assert lot.failed_ranges == [(7, 14)]
        assert (lot.die_quality[7:14] == int(DieQuality.FAILED)).all()
        assert np.isnan(lot.die_means[7:14]).all()
        assert lot.shard_runs["s01"] is None
        # Surviving shards are bit-exact with the healthy control.
        for name in _PLANES:
            np.testing.assert_array_equal(
                getattr(lot, name)[:7], getattr(unkilled_lot, name)[:7],
                err_msg=f"{name} (shard 0)",
            )
            np.testing.assert_array_equal(
                getattr(lot, name)[14:], getattr(unkilled_lot, name)[14:],
                err_msg=f"{name} (shard 2)",
            )
        assert lot.scalars["failed_dies"] == 7.0
        assert lot.scalars["measured_fraction"] == pytest.approx(14 / 21)


class TestCliRoundTrip:
    def test_run_status_merge_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        root = tmp_path / "fleet"
        assert main([
            "fleet", "run", "--root", str(root), "--diameter", "3",
            "--shards", "2", "--seed", "5", "--format", "json",
        ]) == EXIT_HEALTHY
        run_payload = json.loads(capsys.readouterr().out)
        assert run_payload["state"] == "healthy"
        assert len(run_payload["shards"]) == 2

        assert main([
            "fleet", "status", "--root", str(root),
        ]) == EXIT_HEALTHY
        assert "healthy" in capsys.readouterr().out

        ledger_dir = tmp_path / "ledger"
        assert main([
            "fleet", "merge", "--root", str(root),
            "--record", str(ledger_dir), "--format", "json",
        ]) == EXIT_HEALTHY
        merge_payload = json.loads(capsys.readouterr().out)
        assert merge_payload["state"] == "healthy"
        assert merge_payload["run_id"] is not None
        assert (ledger_dir / "manifest.jsonl").exists()

        assert main(["fleet", "status", "--root", str(tmp_path / "no")]) == 2
