"""Retry policy: bounded attempts with deterministic backoff + jitter.

The supervisor retries a macro when its worker dies or times out.  Two
requirements shape this module: retries must *back off* (a macro that
crashes twice in 50 ms is not going to pass on the third immediate
try, and hammering respawns burns CPU the healthy workers need), and
the whole schedule must be *deterministic* (chaos tests assert exact
retry counts; a resumed run must not depend on ``random`` module
state).  Jitter therefore comes from a seeded hash of (attempt, key),
not from a shared PRNG.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import ResilienceError

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY", "NO_RETRY"]


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how fast a failed task is retried.

    Parameters
    ----------
    max_attempts:
        Total tries per task including the first (1 = never retry).
    base_delay:
        Backoff before attempt 1's retry, in seconds; doubles per
        further attempt (exponential), capped at ``max_delay``.
    max_delay:
        Upper bound on any single backoff delay.
    jitter:
        Fraction of the backoff added as deterministic jitter in
        ``[0, jitter)`` — de-synchronises retries of tasks that failed
        together (e.g. all tasks of one dead worker).
    seed:
        Seeds the jitter hash; same seed → same schedule.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ResilienceError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ResilienceError("retry delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ResilienceError(f"jitter {self.jitter} outside [0, 1]")

    def should_retry(self, attempt: int) -> bool:
        """Whether a task that just failed its ``attempt``-th try (0-based)
        gets another one."""
        return attempt + 1 < self.max_attempts

    def delay(self, attempt: int, key: object = "") -> float:
        """Backoff before retrying after failed 0-based ``attempt``.

        ``key`` identifies the task (e.g. the macro index) so tasks
        failing in the same round jitter apart from each other.
        """
        backoff = min(self.base_delay * (2.0**attempt), self.max_delay)
        if backoff <= 0.0 or self.jitter == 0.0:
            return backoff
        digest = hashlib.sha256(
            f"{self.seed}:{key!r}:{attempt}".encode("utf-8")
        ).digest()
        u = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return backoff * (1.0 + self.jitter * u)


#: Supervisor default: three tries, fast first retry, bounded backoff.
DEFAULT_RETRY_POLICY = RetryPolicy()

#: One attempt, no second chances — for benches and strict tests.
NO_RETRY = RetryPolicy(max_attempts=1)
