"""Programmable current reference (I_REFP)."""

import pytest

from repro.errors import MeasurementError
from repro.measure.current_dac import ProgrammableCurrentReference
from repro.units import uA


@pytest.fixture()
def dac():
    return ProgrammableCurrentReference(delta_i=4 * uA, num_steps=20)


def test_linear_staircase_values(dac):
    assert dac.current_at_step(0) == 0.0
    assert dac.current_at_step(1) == pytest.approx(4 * uA)
    assert dac.current_at_step(20) == pytest.approx(80 * uA)


def test_full_scale(dac):
    assert dac.full_scale == pytest.approx(80 * uA)


def test_step_bounds(dac):
    with pytest.raises(MeasurementError):
        dac.current_at_step(21)
    with pytest.raises(MeasurementError):
        dac.current_at_step(-1)


def test_staircase_stimulus_matches_dac(dac):
    st = dac.staircase(t0=40e-9, step_duration=0.5e-9)
    assert st(39.9e-9) == 0.0
    for k in range(1, 21):
        mid_step_t = 40e-9 + (k - 0.5) * 0.5e-9
        assert st(mid_step_t) == pytest.approx(dac.current_at_step(k))


def test_staircase_duration_validated(dac):
    with pytest.raises(MeasurementError):
        dac.staircase(0.0, 0.0)


def test_step_for_current(dac):
    assert dac.step_for_current(0.0) == 0
    assert dac.step_for_current(1 * uA) == 1
    assert dac.step_for_current(4 * uA) == 1
    assert dac.step_for_current(4.1 * uA) == 2
    assert dac.step_for_current(1e3) == 20  # clamped


def test_validation():
    with pytest.raises(MeasurementError):
        ProgrammableCurrentReference(delta_i=0.0)
    with pytest.raises(MeasurementError):
        ProgrammableCurrentReference(delta_i=1 * uA, num_steps=0)
