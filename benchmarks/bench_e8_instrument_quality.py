"""E8 — qualifying the instrument itself (extension).

Three analyses a production deployment runs before trusting an analog
bitmap, none of which the paper spells out but all of which its
structure admits:

1. **Noise floor** — kT/C sampling noise, comparator jitter and hold
   droop propagated to capacitance; ENOB of the converter.
2. **Linearity metrology** — DNL/INL of the code bins, and the cost of
   reading codes linearly ("the register value gives directly the
   current step") instead of through the abacus.
3. **Instrument fault screen** — the code-map signatures of the
   structure's own failure modes (stuck switches, dead DAC legs, C_REF
   drift) and which of them the screen catches.
"""

import numpy as np
from conftest import report

from repro.calibration.abacus import Abacus
from repro.calibration.linearity import analyze_linearity, lazy_linear_estimate
from repro.edram.array import EDRAMArray
from repro.edram.variation_map import compose_maps, mismatch_map, uniform_map
from repro.measure.faults import FaultSpec, FaultySequencer, StructureFault, fault_signature
from repro.measure.noise import NoiseAnalysis
from repro.measure.sequencer import MeasurementSequencer
from repro.units import fF, to_fF


def bench_e8_noise_and_linearity(benchmark, tech, structure_2x2, abacus_2x2):
    analysis = NoiseAnalysis(structure_2x2, 2, 2)
    budget = benchmark(analysis.budget, 30 * fF)
    linearity = analyze_linearity(abacus_2x2)

    lines = [
        "noise floor at 30 fF (27 C):",
        f"  kT/C sampling     : {to_fF(budget.sigma_ktc) * 1000:6.1f} aF rms",
        f"  comparator jitter : {to_fF(budget.sigma_ramp) * 1000:6.1f} aF rms",
        f"  hold droop (bias) : {to_fF(budget.droop_bias) * 1000:6.1f} aF",
        f"  total random      : {to_fF(budget.sigma_total) * 1000:6.1f} aF "
        f"({budget.sigma_codes:.3f} code LSB)",
        f"  converter ENOB    : {analysis.enob(30 * fF):.2f} bits "
        "(quantization-limited: the physics supports far more than 20 steps)",
        "",
        "linearity metrology:",
        f"  {linearity.summary()}",
        f"  lazy linear readout vs abacus at code 10: "
        f"{to_fF(abs(lazy_linear_estimate(linearity, 10) - abacus_2x2.estimate(10))):.2f} fF",
        "",
        "the converter is honest enough that the paper's 'register value",
        "gives directly the current step' reading costs < 1 fF vs the",
        "full abacus on this design.",
    ]
    report("E8a: noise floor + linearity", "\n".join(lines))

    assert budget.sigma_codes < 0.25
    assert linearity.max_dnl < 0.5


def bench_e8_instrument_fault_screen(benchmark, tech, structure_8x2):
    capacitance = compose_maps(
        uniform_map((8, 2), 30 * fF), mismatch_map((8, 2), 4 * fF, seed=81)
    )
    array = EDRAMArray(8, 2, tech=tech, capacitance_map=capacitance)
    macro = array.macro(0)
    healthy = MeasurementSequencer(macro, structure_8x2)
    healthy_codes = np.array(
        [[healthy.measure_charge(r, c).code for c in range(2)] for r in range(8)]
    )
    dead_leg = int(np.median(healthy_codes))

    cases = [
        FaultSpec(StructureFault.LEC_STUCK_OPEN),
        FaultSpec(StructureFault.PRG_STUCK_OPEN),
        FaultSpec(StructureFault.LEC_STUCK_CLOSED),
        FaultSpec(StructureFault.DAC_LEG_DEAD, dead_leg),
        FaultSpec(StructureFault.REGISTER_STUCK, 13),
        FaultSpec(StructureFault.CREF_DRIFT, 1.15),
    ]
    lines = [
        f"healthy macro codes: {sorted(set(int(v) for v in healthy_codes.ravel()))}",
        "",
        f"{'injected fault':<20} {'observed codes':<22} {'screen verdict':<18}",
    ]
    verdicts = {}
    for spec in cases:
        codes = FaultySequencer(macro, structure_8x2, spec).scan_macro()
        verdict = fault_signature(codes)
        verdicts[spec.fault] = verdict
        observed = sorted(set(int(v) for v in codes.ravel()))
        lines.append(
            f"{spec.fault.value:<20} {str(observed):<22} "
            f"{verdict.value if verdict else 'looks healthy'}"
        )
    lines.append("")
    lines.append("stuck switches and register faults are self-identifying; a")
    lines.append("dead DAC leg shows as a code wall + saturation spike; C_REF")
    lines.append("drift is invisible without a golden reference (it mimics a")
    lines.append("process shift) — the reason real DFT adds a known on-die")
    lines.append("reference capacitor to the scan list.")
    report("E8b: instrument fault screen", "\n".join(lines))

    benchmark(fault_signature, healthy_codes)
    assert verdicts[StructureFault.LEC_STUCK_OPEN] is StructureFault.LEC_STUCK_OPEN
    assert verdicts[StructureFault.DAC_LEG_DEAD] is StructureFault.DAC_LEG_DEAD
    assert verdicts[StructureFault.REGISTER_STUCK] is StructureFault.REGISTER_STUCK
    assert verdicts[StructureFault.CREF_DRIFT] is None
    assert fault_signature(healthy_codes) is None
