"""Fan-out teardown: idempotent plane/pool eviction, parallel preflight."""

import numpy as np
import pytest

from repro.edram.array import EDRAMArray
from repro.errors import RuleViolation
from repro.measure import parallel
from repro.measure.config import ScanConfig
from repro.measure.parallel import SharedScanPlanes, _evict_fanout_cache
from repro.measure.scan import ArrayScanner


def test_shared_planes_close_is_idempotent():
    planes = SharedScanPlanes(4, 4)
    planes.vgs[:] = 1.0
    planes.close()
    assert planes._segments == []
    # A second close (atexit after explicit eviction) must be silent.
    planes.close()
    planes.close()


def test_evict_survives_raising_pool_and_still_closes_planes():
    class _ExplodingPool:
        closed = False

        def close(self):
            self.closed = True
            raise RuntimeError("worker already dead")

    class _RecordingPlanes:
        closed = False

        def close(self):
            self.closed = True

    pool = _ExplodingPool()
    planes = _RecordingPlanes()
    parallel._CACHE.update(key="k", pool=pool, planes=planes)
    _evict_fanout_cache()  # must not raise
    assert pool.closed
    # The planes still got their teardown despite the pool's explosion...
    assert planes.closed
    # ...and no stale slot survives to alias the next scan.
    assert parallel._CACHE == {}


def test_evict_on_empty_cache_is_a_noop():
    _evict_fanout_cache()
    _evict_fanout_cache()
    assert parallel._CACHE == {}


def test_evict_after_real_scan_then_rescan_works():
    array = EDRAMArray(8, 8, macro_rows=4, macro_cols=4)
    scanner = ArrayScanner(array)
    first = scanner.scan(ScanConfig(jobs=2))
    _evict_fanout_cache()
    second = scanner.scan(ScanConfig(jobs=2))
    assert np.array_equal(first.codes, second.codes)


def test_preflight_violation_raises_before_parallel_scan(monkeypatch):
    """A failing preflight must raise before any pool work starts."""
    import repro.lint as lint_pkg
    from repro.lint.diagnostics import Diagnostic, LintReport, Severity

    bad = LintReport([
        Diagnostic(
            code="ERC003", slug="charge-trap", severity=Severity.ERROR,
            message="unreachable charged node", subject="macro[0]",
            nodes=("s0_0",),
        )
    ])
    monkeypatch.setattr(lint_pkg, "preflight_array", lambda *a, **k: bad)

    def _boom(*args, **kwargs):  # pragma: no cover - must not be reached
        raise AssertionError("pool fan-out ran despite failed preflight")

    monkeypatch.setattr(parallel, "scan_macros_kernel_parallel", _boom)
    monkeypatch.setattr(parallel, "scan_macros_parallel", _boom)

    array = EDRAMArray(8, 8, macro_rows=4, macro_cols=4)
    with pytest.raises(RuleViolation, match="ERC003") as excinfo:
        ArrayScanner(array).scan(ScanConfig(jobs=2, preflight=True))
    assert any(d.code == "ERC003" for d in excinfo.value.diagnostics)
