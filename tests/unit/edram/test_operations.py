"""Behavioural array operations (the functional-test view)."""

import numpy as np
import pytest

from repro.edram.array import EDRAMArray
from repro.edram.defects import CellDefect, DefectKind
from repro.edram.operations import ArrayOperations
from repro.edram.senseamp import SenseAmplifier
from repro.errors import ArrayConfigError


@pytest.fixture()
def ops(tech):
    return ArrayOperations(EDRAMArray(4, 4, tech=tech))


class TestBasicOps:
    def test_write_then_read(self, ops):
        ops.write(1, 2, True)
        assert ops.read(1, 2) is True
        ops.write(1, 2, False)
        assert ops.read(1, 2) is False

    def test_reads_are_restorative(self, ops):
        ops.write(0, 0, True)
        for _ in range(5):
            assert ops.read(0, 0) is True

    def test_clock_advances(self, ops):
        t0 = ops.now
        ops.write(0, 0, True)
        ops.read(0, 0)
        assert ops.now == pytest.approx(t0 + 2 * ops.cycle_time)

    def test_pause(self, ops):
        ops.pause(1e-3)
        assert ops.now == pytest.approx(1e-3)
        with pytest.raises(ArrayConfigError):
            ops.pause(-1.0)

    def test_cycle_time_validation(self, tech):
        with pytest.raises(ArrayConfigError):
            ArrayOperations(EDRAMArray(2, 2, tech=tech), cycle_time=0.0)


class TestPatterns:
    def test_solid_pattern(self, ops):
        ops.write_solid(True)
        assert ops.read_all().all()

    def test_checkerboard(self, ops):
        ops.write_checkerboard()
        data = ops.read_all()
        assert np.array_equal(data, ops.expected_checkerboard())

    def test_checkerboard_phase(self, ops):
        ops.write_checkerboard(phase=True)
        data = ops.read_all()
        assert np.array_equal(data, ops.expected_checkerboard(phase=True))


class TestDefectBehaviour:
    def _ops_with(self, kind, factor=1.0, where=(1, 1), tech=None):
        arr = EDRAMArray(4, 4, tech=tech)
        arr.cell(*where).apply_defect(CellDefect(kind, factor))
        return ArrayOperations(arr)

    def test_open_reads_preferred_state(self, tech):
        ops = self._ops_with(DefectKind.OPEN, tech=tech)
        ops.write(1, 1, True)
        assert ops.read(1, 1) is False  # fail_low amplifier default

    def test_short_reads_preferred_state(self, tech):
        ops = self._ops_with(DefectKind.SHORT, tech=tech)
        ops.write(1, 1, True)
        assert ops.read(1, 1) is False

    def test_fresh_low_cap_still_reads_correctly(self, tech):
        # The paper's key motivation: parametric cells pass digital test.
        ops = self._ops_with(DefectKind.LOW_CAP, factor=0.4, tech=tech)
        ops.write(1, 1, True)
        assert ops.read(1, 1) is True

    def test_retention_cell_fails_after_pause(self, tech):
        ops = self._ops_with(DefectKind.RETENTION, factor=2000.0, tech=tech)
        ops.write(1, 1, True)
        ops.pause(0.2)
        assert ops.read(1, 1) is False

    def test_healthy_cell_survives_pause(self, tech):
        ops = ArrayOperations(EDRAMArray(2, 2, tech=tech))
        ops.write(0, 0, True)
        ops.pause(0.05)  # under the retention target
        assert ops.read(0, 0) is True

    def test_bridge_couples_writes(self, tech):
        arr = EDRAMArray(4, 4, tech=tech)
        arr.cell(2, 1).apply_defect(CellDefect(DefectKind.BRIDGE))
        ops = ArrayOperations(arr)
        ops.write(2, 1, False)
        ops.write(2, 2, True)  # partner write drags the victim along
        assert ops.read(2, 1) is True

    def test_bridge_couples_from_either_side(self, tech):
        arr = EDRAMArray(4, 4, tech=tech)
        arr.cell(2, 1).apply_defect(CellDefect(DefectKind.BRIDGE))
        ops = ArrayOperations(arr)
        ops.write(2, 2, False)
        ops.write(2, 1, True)
        assert ops.read(2, 2) is True


class TestSignalLevels:
    def test_nominal_read_signal_magnitude(self, tech):
        ops = ArrayOperations(EDRAMArray(64, 4, tech=tech))
        # dV = 0.9 * 30fF / (30fF + C_BL)
        cbl = tech.bitline_capacitance(64)
        expected = 0.9 * (30e-15) / (30e-15 + cbl)
        assert ops.read_signal_nominal == pytest.approx(expected, rel=1e-6)

    def test_custom_senseamp_is_used(self, tech):
        sa = SenseAmplifier(offset_sigma=0.0)
        ops = ArrayOperations(EDRAMArray(2, 2, tech=tech), senseamp=sa)
        assert ops.senseamp is sa
