"""Unit-sanity rules (UNT) over element values.

``UNT001 suspicious-unit-magnitude`` catches the classic SI slip: a
value entered in display units where base SI was expected (a 30 fF
capacitor written as ``30`` instead of ``30 * fF`` becomes thirty
*farads* — eighteen orders of magnitude of silent error that still
solves fine).  The rule checks every element value against the
physically plausible window for its quantity; windows are generous
(decades wide), so a hit almost always is a units bug, hence the rule
reports at warning severity only because exotic-but-legal test fixtures
exist.
"""

from __future__ import annotations

from typing import Iterator

from repro.circuit.charge import CapacitorNetwork
from repro.circuit.elements import (
    Capacitor,
    CurrentMirrorOutput,
    CurrentSource,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.circuit.stimulus import Constant, Stimulus
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import rule

#: Plausible magnitude windows per quantity, in base SI units.  The caps
#: window spans single-attofarad parasitics to nanofarad decoupling; a
#: value outside is almost certainly a femto/pico slip.
PLAUSIBLE = {
    "capacitance": (1e-19, 1e-8),  # 0.1 aF .. 10 nF  # lint: allow-raw-si
    "resistance": (1e-2, 1e14),    # 10 mΩ .. 100 TΩ (switch off-states)
    "voltage": (0.0, 100.0),       # |V|; rails in this library are < 3 V
    "current": (0.0, 1.0),         # |I|; DAC full scale is ~100 µA
}


def _constant_level(value: Stimulus | float) -> float | None:
    """The constant level of a stimulus, or None for waveforms.

    Only :class:`~repro.circuit.stimulus.Constant` sources are checked;
    time-varying stimuli (phase waveforms, DAC staircases) are built by
    the plan machinery from already-checked design quantities.
    """
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, Constant):
        return value.value
    return None


def _window_check(
    quantity: str, magnitude: float, what: str, subject: str, nodes: tuple[str, ...]
) -> Iterator[Diagnostic]:
    lo, hi = PLAUSIBLE[quantity]
    if magnitude != 0.0 and not lo <= abs(magnitude) <= hi:
        unit = {"capacitance": "F", "resistance": "ohm", "voltage": "V", "current": "A"}[quantity]
        yield check_unit_magnitude.diagnostic(
            f"{what}: {quantity} {magnitude:.3g} {unit} is outside the "
            f"plausible window [{lo:.0e}, {hi:.0e}] {unit} — likely an SI-unit "
            "slip (use repro.units factors)",
            subject=subject,
            nodes=nodes,
        )


@rule(
    "UNT001",
    "suspicious-unit-magnitude",
    target="circuit",
    severity=Severity.WARNING,
    summary="element value magnitude implausible for its quantity",
)
def check_unit_magnitude(circuit: Circuit, context: dict[str, object]) -> Iterator[Diagnostic]:
    """Check every element value against its quantity's plausible window."""
    for element in circuit:
        nodes = tuple(element.nodes())
        what = f"{type(element).__name__} {element.name!r}"
        if isinstance(element, Capacitor):
            yield from _window_check(
                "capacitance", element.capacitance, what, circuit.title, nodes
            )
        elif isinstance(element, Resistor):
            yield from _window_check(
                "resistance", element.resistance, what, circuit.title, nodes
            )
        elif isinstance(element, VoltageSource):
            level = _constant_level(element.value)
            if level is not None:
                yield from _window_check("voltage", level, what, circuit.title, nodes)
        elif isinstance(element, (CurrentSource, CurrentMirrorOutput)):
            level = _constant_level(element.value)
            if level is not None:
                yield from _window_check("current", level, what, circuit.title, nodes)


def check_charge_network_units(
    net: CapacitorNetwork, subject: str = "charge-network"
) -> list[Diagnostic]:
    """UNT001 over a charge network's capacitors (same rule, same code).

    Charge networks are not :class:`Circuit` instances, so the analyzer
    calls this helper directly; findings carry the same ``UNT001`` code.
    """
    out: list[Diagnostic] = []
    for name, a, b, c in net.capacitors():
        out.extend(
            _window_check("capacitance", c, f"capacitor {name!r}", subject, (a, b))
        )
    return out
