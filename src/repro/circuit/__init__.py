"""A small, self-contained analog circuit simulator.

This package substitutes for the proprietary SPICE + design-kit flow the
paper used to validate the measurement structure (DESIGN.md §2).  It
provides:

- :class:`Circuit` — netlist container (nodes + elements),
- linear elements (:class:`Resistor`, :class:`Capacitor`,
  :class:`VoltageSource`, :class:`CurrentSource`, :class:`Switch`),
- a level-1/EKV-interpolated :class:`Mosfet`,
- waveform stimuli (:mod:`repro.circuit.stimulus`),
- a DC operating-point solver (:func:`dc_operating_point`),
- a fixed-step transient solver (:func:`transient_analysis`) producing
  :class:`Waveform` results,
- an exact charge-redistribution engine for switched-capacitor networks
  (:class:`CapacitorNetwork`), used as the fast path for array-scale
  measurement scans.

The two solver tiers (transient MNA vs charge engine) are cross-validated
in ``tests/integration/test_solver_agreement.py``.
"""

from repro.circuit.netlist import Circuit, GROUND
from repro.circuit.elements import (
    Resistor,
    Capacitor,
    VoltageSource,
    CurrentSource,
    Switch,
)
from repro.circuit.mosfet import Mosfet
from repro.circuit.stimulus import (
    Stimulus,
    Constant,
    Step,
    Pulse,
    PiecewiseLinear,
    Clock,
    Staircase,
)
from repro.circuit.dc import dc_operating_point
from repro.circuit.transient import transient_analysis, TransientOptions
from repro.circuit.waveform import Waveform
from repro.circuit.charge import CapacitorNetwork, ChargeState

__all__ = [
    "Circuit",
    "GROUND",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "Switch",
    "Mosfet",
    "Stimulus",
    "Constant",
    "Step",
    "Pulse",
    "PiecewiseLinear",
    "Clock",
    "Staircase",
    "dc_operating_point",
    "transient_analysis",
    "TransientOptions",
    "Waveform",
    "CapacitorNetwork",
    "ChargeState",
]
