"""Full-pipeline integration: array -> scan -> bitmaps -> diagnosis -> repair."""

import numpy as np
import pytest

from repro.baselines.march import march_c_minus, retention_test
from repro.bitmap.analog import AnalogBitmap
from repro.bitmap.compare import DiagnosisComparison
from repro.bitmap.signatures import SignatureKind, categorize, fit_gradient
from repro.calibration.abacus import Abacus
from repro.calibration.design import design_structure
from repro.calibration.window import SpecificationWindow
from repro.diagnosis.classifier import CellClassifier, CellVerdict
from repro.diagnosis.failure_analysis import FailureAnalyzer, RootCause
from repro.diagnosis.repair import RepairPlanner
from repro.edram.array import EDRAMArray
from repro.edram.defects import CellDefect, DefectInjector, DefectKind
from repro.edram.operations import ArrayOperations
from repro.edram.variation_map import compose_maps, mismatch_map, uniform_map
from repro.measure.scan import ArrayScanner
from repro.units import fF


@pytest.fixture(scope="module")
def pipeline(tech):
    """A 32x8 array with a representative defect population, fully scanned."""
    rows, cols, mc, mr = 32, 8, 2, 8
    cap = compose_maps(
        uniform_map((rows, cols), 30 * fF),
        mismatch_map((rows, cols), 0.8 * fF, seed=5),
    )
    array = EDRAMArray(rows, cols, tech=tech, macro_cols=mc, macro_rows=mr,
                       capacitance_map=cap)
    injector = DefectInjector(array, seed=6)
    injector.inject(4, 3, CellDefect(DefectKind.SHORT))
    injector.inject(10, 6, CellDefect(DefectKind.OPEN))
    injector.inject(20, 1, CellDefect(DefectKind.LOW_CAP, factor=0.55))
    injector.inject(25, 4, CellDefect(DefectKind.BRIDGE))
    injector.inject(15, 7, CellDefect(DefectKind.RETENTION, factor=5000.0))

    structure = design_structure(tech, mr, mc, bitline_rows=rows)
    abacus = Abacus.analytic(structure, mr, mc, bitline_rows=rows)
    scan = ArrayScanner(array, structure).scan()
    bitmap = AnalogBitmap(scan, abacus)
    window = SpecificationWindow.from_capacitance(abacus, 24 * fF, 36 * fF)
    return array, injector, structure, abacus, scan, bitmap, window


def test_scan_covers_array_with_mixed_tiers(pipeline):
    _, _, _, _, scan, _, _ = pipeline
    assert scan.codes.shape == (32, 8)
    tiers = set(scan.tiers.ravel())
    assert "e" in tiers  # the bridge macro
    assert "c" in tiers


def test_population_statistics_recover_process(pipeline):
    _, _, _, _, _, bitmap, _ = pipeline
    assert bitmap.mean_capacitance() == pytest.approx(30 * fF, rel=0.05)


def test_every_analog_visible_defect_flagged(pipeline):
    _, injector, _, _, _, bitmap, window = pipeline
    out = bitmap.out_of_spec(window)
    assert out[4, 3]  # short
    assert out[10, 6]  # open
    assert out[20, 1]  # low cap
    assert out[25, 4] and out[25, 5]  # bridged pair reads high/over


def test_retention_defect_is_analog_invisible_but_digital_visible(pipeline, tech):
    array, _, _, _, _, bitmap, window = pipeline
    assert not bitmap.out_of_spec(window)[15, 7]
    ops = ArrayOperations(array)
    ret = retention_test(ops, pause=0.2)
    assert ret.fails[15, 7]


def test_march_merged_with_retention_catches_hard_faults(pipeline):
    array = pipeline[0]
    march = march_c_minus().run(ArrayOperations(array))
    assert march.fails[4, 3]
    assert march.fails[10, 6]
    assert not march.fails[20, 1]  # parametric escape


def test_comparison_table_shows_complementarity(pipeline):
    array, injector, _, _, _, bitmap, window = pipeline
    digital = march_c_minus().run(ArrayOperations(array)).merge(
        retention_test(ArrayOperations(array), pause=0.2)
    )
    comp = DiagnosisComparison.score(
        injector.injected, bitmap.out_of_spec(window), digital.fails
    )
    assert comp.scores[DefectKind.LOW_CAP].analog_rate == 1.0
    assert comp.scores[DefectKind.LOW_CAP].digital_rate == 0.0
    assert comp.scores[DefectKind.RETENTION].digital_rate == 1.0
    assert comp.scores[DefectKind.SHORT].analog_rate == 1.0


def test_classification_and_failure_analysis(pipeline):
    array, _, structure, abacus, scan, bitmap, window = pipeline
    classifier = CellClassifier(bitmap, window, macro_cols=2)
    verdicts = classifier.classify_all()
    assert verdicts[20, 1] is CellVerdict.LOW_CAP
    findings = FailureAnalyzer().analyze(verdicts)
    causes = {f.cause for f in findings}
    assert RootCause.THIN_DIELECTRIC_SPOT in causes or RootCause.CAPACITOR_OPEN in causes
    assert len(findings) >= 3


def test_signatures_of_bitmap_anomalies(pipeline):
    _, _, _, _, _, bitmap, window = pipeline
    sigs = categorize(bitmap.out_of_spec(window))
    kinds = [s.kind for s in sigs]
    assert SignatureKind.SINGLE_CELL in kinds
    assert SignatureKind.PAIRED_CELLS in kinds  # the bridge


def test_repair_plan_covers_out_of_spec_cells(pipeline):
    _, _, _, _, _, bitmap, window = pipeline
    plan = RepairPlanner(spare_rows=4, spare_cols=4).plan(bitmap.out_of_spec(window))
    assert plan.success


def test_gradient_of_flat_process_is_insignificant(pipeline):
    _, _, _, _, _, bitmap, _ = pipeline
    assert not fit_gradient(bitmap.estimates).significant


def test_planted_gradient_is_recovered(tech):
    from repro.edram.variation_map import linear_tilt_map

    rows, cols = 16, 8
    cap = compose_maps(
        uniform_map((rows, cols), 30 * fF),
        linear_tilt_map((rows, cols), row_slope=0.3 * fF),
    )
    array = EDRAMArray(rows, cols, tech=tech, macro_cols=2, macro_rows=8,
                       capacitance_map=cap)
    structure = design_structure(tech, 8, 2, bitline_rows=rows)
    abacus = Abacus.analytic(structure, 8, 2, bitline_rows=rows)
    bitmap = AnalogBitmap(ArrayScanner(array, structure).scan(), abacus)
    g = fit_gradient(bitmap.estimates)
    assert g.row_slope == pytest.approx(0.3 * fF, rel=0.3)
    assert g.significant
