"""Whole-array measurement scans — the "Analog Bitmap" producer.

The paper's end goal: "build an Analog Bitmap of the capacitor values of
the cells in the memory array".  :class:`ArrayScanner` measures every
cell of every macro-cell and assembles the code matrix.

For array-scale work the scanner evaluates a **vectorized closed form**
of the charge-tier algebra.  After phases 1–4, every capacitive branch
hanging on the plate–gate island reduces to an equivalent capacitance
``X`` with an equivalent pre-charge voltage of V_DD (they all rode up
with the plate during the CHARGE phase), except the reference side
(C_REF + wiring) which joins discharged; hence

    V_GS = V_DD · ΣX / (ΣX + C_REF_total)

with, per branch:

- target cell: ``C_m`` (its far plate is actively grounded),
- same-row neighbours: ``series(C_j, C_BL + C_js)`` (far side floats on
  the bitline),
- every off-row cell: ``series(C_k, C_js)`` (far side floats on the
  storage junction),
- plate wiring: ``C_pp``,
- defect variants (shorts substitute their island's ground capacitance,
  opens vanish) as derived in the module body.

Macros containing BRIDGE defects fall back to the exact charge engine
cell by cell — bridge topologies are many and rare, and the engine *is*
the reference.  Agreement between the closed form and the engine is
pinned by integration tests.

Performance layer (see docs/architecture.md "Performance architecture"):
macro masks are O(1) slices of the array's incrementally maintained bulk
matrices, the engine tier reuses one cached netlist per macro, and
``scan(ScanConfig(jobs=N))`` fans macros out across a process pool.

Observability (see docs/architecture.md "Observability"): every entry
point takes a :class:`~repro.measure.config.ScanConfig` whose tracer
records the scan → macro → cell → phase span tree and whose metrics
registry, installed ambiently for the scan, collects tier counts, code
histograms, cache hits and solver statistics.  Both default to no-op
implementations pinned bit-exact against the un-instrumented path.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from time import perf_counter, process_time
from typing import TYPE_CHECKING

import numpy as np

from repro.edram.array import EDRAMArray, MacroCell
from repro.edram.defects import KIND_CODES, DefectKind
from repro.errors import (
    ConvergenceError,
    MeasurementError,
    ReproError,
    ScanMismatchError,
    SingularCircuitError,
)
from repro.measure.config import ScanConfig, coerce_scan_config
from repro.measure.kernel import (
    KernelConstants,
    _series,  # noqa: F401 - canonical home moved to kernel; re-exported here
    closed_form_vgs_plane,
)
from repro.measure.sequencer import MeasurementSequencer
from repro.measure.stats import MacroTiming, ScanStats
from repro.measure.structure import MeasurementDesign, MeasurementStructure
from repro.obs.metrics import active_metrics, use_metrics
from repro.resilience.checkpoint import resume_fingerprint
from repro.resilience.faults import active_fault_plan, fault_point, inject
from repro.resilience.quality import CellQuality, quality_counts, quality_plane

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.diagnostics import LintReport
    from repro.sanitize.footprint import FootprintLog


def _ambient_metrics(config: ScanConfig):
    """Install the config's registry ambiently iff it is a real one."""
    return use_metrics(config.metrics) if config.metrics.enabled else nullcontext()


def _ambient_faults(config: ScanConfig):
    """Arm the config's fault plan for the scan iff one is attached."""
    return inject(config.faults) if config.faults is not None else nullcontext()


@dataclass
class ScanResult:
    """Raw output of a full-array scan.

    Attributes
    ----------
    codes:
        (rows, cols) int array of measurement codes, 0..num_steps.
    vgs:
        (rows, cols) float array of internal V_GS values (simulation
        observability; not available on silicon).
    num_steps:
        The converter depth used.
    tiers:
        (rows, cols) array of 'c' (closed form) / 'e' (engine) markers
        recording which tier produced each cell.
    stats:
        Telemetry of the scan that produced this result (None for
        results assembled by hand or loaded from disk — stats describe a
        run, not the data, and are not persisted).
    quality:
        (rows, cols) uint8 plane of
        :class:`~repro.resilience.quality.CellQuality` flags (0 GOOD,
        1 DEGRADED, 2 FAILED).  All-zero for clean scans; ``None``
        coerces to all-GOOD so hand-assembled results stay terse.
    sanitize_report:
        The write-footprint sanitizer's CCY101/CCY102
        :class:`~repro.lint.diagnostics.LintReport` when the scan ran
        with ``ScanConfig(sanitize=True)``; ``None`` otherwise.  Like
        ``stats`` it describes the run, not the data, and is excluded
        from equality.
    """

    codes: np.ndarray
    vgs: np.ndarray
    num_steps: int
    tiers: np.ndarray
    stats: ScanStats | None = field(default=None, compare=False)
    quality: np.ndarray | None = field(default=None, compare=False)
    sanitize_report: "LintReport | None" = field(default=None, compare=False)

    def __post_init__(self) -> None:
        # Hand-assembled results (tests, loaders) may pass plain lists;
        # coerce once here so .shape and arithmetic are always array ops.
        self.codes = np.asarray(self.codes)
        self.vgs = np.asarray(self.vgs)
        self.tiers = np.asarray(self.tiers)
        if self.vgs.shape != self.codes.shape or self.tiers.shape != self.codes.shape:
            raise ScanMismatchError(
                f"scan planes disagree: codes {self.codes.shape}, "
                f"vgs {self.vgs.shape}, tiers {self.tiers.shape}"
            )
        if self.quality is None:
            self.quality = quality_plane(self.codes.shape)
        else:
            self.quality = np.asarray(self.quality, dtype=np.uint8)
            if self.quality.shape != self.codes.shape:
                raise ScanMismatchError(
                    f"quality plane shape {self.quality.shape} disagrees "
                    f"with codes {self.codes.shape}"
                )

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, cols) of the scanned array."""
        return self.codes.shape  # type: ignore[return-value]

    def code_histogram(self) -> dict[int, int]:
        """Count of cells per code value, dense over ``0..num_steps``.

        Every code of the converter scale appears as a key — zero counts
        included — so downstream consumers (calibration, plotting,
        benches) can histogram directly without re-densifying.
        """
        hist = {code: 0 for code in range(self.num_steps + 1)}
        values, counts = np.unique(self.codes, return_counts=True)
        for v, n in zip(values, counts):
            hist[int(v)] = int(n)
        return hist

    def quality_counts(self) -> dict[str, int]:
        """``{"good": n, "degraded": n, "failed": n}`` over all cells."""
        return quality_counts(self.quality)

    def diff(self, reference: "ScanResult") -> np.ndarray:
        """Per-cell code delta against a reference scan (self − ref).

        Golden-die subtraction: comparing a die against a known-good
        reference cancels the systematic background exactly (both carry
        the same macro parasitics), leaving process/instrument drift and
        defects.  Raises :class:`~repro.errors.ScanMismatchError` when
        the reference is not a comparable scan (wrong type, shape, or
        converter depth) instead of surfacing a numpy broadcast error.
        """
        if not isinstance(reference, ScanResult):
            raise ScanMismatchError(
                f"diff reference must be a ScanResult, got {type(reference).__name__}"
            )
        if reference.shape != self.shape:
            raise ScanMismatchError(
                f"scan shapes differ: {self.shape} vs {reference.shape}"
            )
        if reference.num_steps != self.num_steps:
            raise ScanMismatchError(
                "scans use different converter depths: "
                f"{self.num_steps} vs {reference.num_steps}"
            )
        return self.codes - reference.codes


class ArrayScanner:
    """Scan every cell of an array through its macro structures.

    Parameters
    ----------
    array:
        The eDRAM array to scan.
    structure:
        The measurement structure design shared by all macros (they are
        identical copies in silicon).  Defaults to the reference design;
        for non-reference macro geometries pass a structure produced by
        :func:`repro.calibration.design.design_structure` so the code
        scale matches the capacitance range.
    use_kernel:
        Allow :meth:`scan` to dispatch eligible scans to the whole-array
        batched kernel (:mod:`repro.measure.kernel`).  ``False`` pins
        the per-macro drivers — the benchmark's serial baseline.
    """

    def __init__(
        self,
        array: EDRAMArray,
        structure: MeasurementStructure | None = None,
        *,
        use_kernel: bool = True,
    ) -> None:
        self.array = array
        self.structure = (
            structure
            if structure is not None
            else MeasurementStructure(array.tech, MeasurementDesign())
        )
        # Memoized on the structure: one bisection solve shared by every
        # scanner bound to it (e.g. one scanner per wafer die).
        self._boundaries = self.structure.code_boundaries()
        # Engine-tier sequencers cached per macro so the charge netlist
        # is built once per macro, not once per cell.
        self._sequencers: dict[int, MeasurementSequencer] = {}
        # Closed-form invariants; identical for every macro (the silicon
        # copies are exact), so paying the property chain per macro per
        # scan is pure overhead.
        tech = self.structure.tech
        m0 = self.array.macro(0)
        self._cjs = tech.storage_junction_cap
        self._cbl = m0.bitline_capacitance
        self._cpp = m0.plate_parasitic
        self._creft = self.structure.c_ref_total
        self._vdd = tech.vdd
        # Whole-array batched kernel (repro.measure.kernel); the scan
        # planner falls back to the per-macro drivers whenever they are
        # semantically observable (tracing, faults, checkpoints,
        # force_engine) or when disabled here outright (benchmarks pin
        # the per-macro baseline through this seam).
        self._use_kernel = use_kernel

    def codes_for_vgs(self, vgs: np.ndarray) -> np.ndarray:
        """Vectorized static conversion (matches ``code_for_vgs``)."""
        return self.structure.codes_for_vgs(vgs)

    def kernel_constants(self) -> KernelConstants:
        """The cached closed-form constants, packaged for the kernel."""
        return KernelConstants(
            cjs=self._cjs,
            cbl=self._cbl,
            cpp=self._cpp,
            creft=self._creft,
            vdd=self._vdd,
            macro_rows=self.array.macro_rows,
            macro_cols=self.array.macro_cols,
        )

    def _sequencer(self, macro: MacroCell) -> MeasurementSequencer:
        sequencer = self._sequencers.get(macro.index)
        if sequencer is None:
            sequencer = MeasurementSequencer(macro, self.structure)
            self._sequencers[macro.index] = sequencer
        return sequencer

    # ------------------------------------------------------------------
    # Closed form per macro
    # ------------------------------------------------------------------

    def _macro_masks(self, macro: MacroCell) -> dict[str, np.ndarray]:
        kinds = macro.defect_kind_matrix()
        return {
            "cap": macro.capacitance_matrix(),
            "short": kinds == KIND_CODES[DefectKind.SHORT],
            "open": kinds == KIND_CODES[DefectKind.OPEN],
            "accopen": kinds == KIND_CODES[DefectKind.ACCESS_OPEN],
        }

    def closed_form_vgs(self, macro: MacroCell) -> np.ndarray:
        """V_GS for every cell of ``macro`` via the vectorized closed form."""
        cjs, cbl, cpp = self._cjs, self._cbl, self._cpp
        creft, vdd = self._creft, self._vdd

        if self.array.defect_count() == 0 or not macro.defect_kind_matrix().any():
            # Defect-free macro: every mask below is empty, so the
            # branch equivalents collapse to the healthy-cell terms.
            # Same algebra, same operation order — bit-identical to the
            # masked path (pinned by the scan tests) without its ~15
            # small-array ``np.where`` calls.
            cap = macro.capacitance_matrix()
            off_term = cap * cjs / (cap + cjs)
            nbr_term = cap * (cbl + cjs) / (cap + (cbl + cjs))
            off_all = float(off_term.sum())
            off_rows = off_term.sum(axis=1)
            nbr_rows = nbr_term.sum(axis=1)
            x = (
                cap
                + cpp
                + (nbr_rows[:, None] - nbr_term)
                + (off_all - off_rows)[:, None]
            )
            return vdd * x / (x + creft)

        m = self._macro_masks(macro)
        cap, short, open_, accopen = m["cap"], m["short"], m["open"], m["accopen"]
        normal = ~(short | open_ | accopen)

        # Branch equivalents per cell in each role (all pre-charged V_DD).
        floating_series = _series(cap, cjs)  # far side floats on C_js
        off_term = np.where(normal | accopen, floating_series, 0.0)
        off_term = np.where(short, cjs, off_term)

        nbr_term = np.where(normal, _series(cap, cbl + cjs), 0.0)
        nbr_term = np.where(accopen, floating_series, nbr_term)
        nbr_term = np.where(short, cbl + cjs, nbr_term)

        tgt_term = np.where(normal, cap, 0.0)
        tgt_term = np.where(accopen, floating_series, tgt_term)

        off_all = float(off_term.sum())
        off_rows = off_term.sum(axis=1)  # per-row totals
        nbr_rows = nbr_term.sum(axis=1)

        x = (
            tgt_term
            + cpp
            + (nbr_rows[:, None] - nbr_term)
            + (off_all - off_rows)[:, None]
        )
        vgs = vdd * x / (x + creft)
        # A shorted target clamps the plate to its grounded bitline.
        vgs = np.where(short, 0.0, vgs)
        return vgs

    # ------------------------------------------------------------------
    # Scan drivers
    # ------------------------------------------------------------------

    def _macro_needs_engine(self, macro: MacroCell) -> bool:
        """Bridges (own or incoming) force the exact engine.

        Defect-free arrays exit on the O(1) bridge count; otherwise one
        vectorized mask slice covers the macro's own cells plus the
        column immediately left of it (incoming cross-macro bridges).
        """
        if self.array.defect_count(DefectKind.BRIDGE) == 0:
            return False
        bridge = self.array.defect_mask(DefectKind.BRIDGE)
        col_lo = macro.col_start - 1 if macro.col_start > 0 else macro.col_start
        return bool(
            bridge[macro.row_start : macro.row_stop, col_lo : macro.col_stop].any()
        )

    def scan_macro(
        self,
        macro: MacroCell,
        config: ScanConfig | bool | None = None,
        *,
        force_engine: bool | None = None,
    ) -> tuple[np.ndarray, np.ndarray, str]:
        """Scan one macro; returns (vgs, codes, tier_marker).

        ``config`` is a :class:`ScanConfig`; the old positional/keyword
        ``force_engine`` bool still works behind a deprecation shim.
        """
        config = coerce_scan_config(
            config, "ArrayScanner.scan_macro", force_engine=force_engine
        )
        with _ambient_metrics(config), _ambient_faults(config):
            vgs, codes, tier, _quality = self._scan_macro(macro, config)
            active_metrics().histogram(
                "scan.codes", "measurement codes emitted"
            ).observe_many(codes.ravel())
            return vgs, codes, tier

    def _scan_macro(
        self, macro: MacroCell, config: ScanConfig
    ) -> tuple[np.ndarray, np.ndarray, str, np.ndarray]:
        """Scan one macro with ambient metrics already installed.

        The serial scan loop calls this directly — coercion and the
        contextvar install happen once per scan, not once per macro.
        Returns ``(vgs, codes, tier, quality)``; the quality plane is
        all-GOOD unless a solver failure forced a fallback.
        """
        tracer = config.tracer
        with tracer.span("macro", index=macro.index, cells=macro.num_cells) as span:
            quality = quality_plane((macro.rows, self.array.macro_cols))
            if config.force_engine or self._macro_needs_engine(macro):
                vgs = self._engine_macro_vgs(macro, tracer, quality)
                codes = self.codes_for_vgs(vgs)
                tier = "e"
                span.attributes["tier"] = "engine"
            else:
                try:
                    fault_point("scan.closed_form", macro=macro.index)
                    vgs = self.closed_form_vgs(macro)
                except ReproError:
                    # Closed form refused the whole tile: placeholder
                    # planes, every cell flagged FAILED — the scan keeps
                    # its shape and the bitmap shows the hole.
                    vgs = np.zeros((macro.rows, self.array.macro_cols))
                    quality[:, :] = CellQuality.FAILED
                codes = self.codes_for_vgs(vgs)
                tier = "c"
                span.attributes["tier"] = "closed-form"
            degraded = int((quality != CellQuality.GOOD).sum())
            if degraded:
                span.attributes["fallback_cells"] = degraded
            return vgs, codes, tier, quality

    def _engine_macro_vgs(
        self, macro: MacroCell, tracer, quality: np.ndarray
    ) -> np.ndarray:
        """Engine tier with the per-cell fallback ladder.

        A cell whose exact solve fails (singular network, no
        convergence) is re-estimated once from the macro's closed form
        and flagged DEGRADED; if even the closed form refuses, the cell
        becomes a flagged FAILED placeholder.  Either way the scan
        continues — one pathological cell must never abort the bitmap.
        """
        sequencer = self._sequencer(macro)
        mc = self.array.macro_cols
        vgs = np.zeros((macro.rows, mc))
        fallback: np.ndarray | None | bool = None
        for r in range(macro.rows):
            for c in range(mc):
                try:
                    vgs[r, c] = sequencer.measure_charge(
                        r, c, tracer=tracer
                    ).vgs
                except (SingularCircuitError, ConvergenceError):
                    if fallback is None:
                        try:
                            fallback = self.closed_form_vgs(macro)
                        except ReproError:
                            fallback = False
                    if fallback is not False:
                        vgs[r, c] = fallback[r, c]
                        quality[r, c] = CellQuality.DEGRADED
                        active_metrics().counter(
                            "scan.cell_fallbacks",
                            "engine cells rescued by the closed form",
                        ).inc()
                    else:  # pragma: no cover - closed form is pure algebra
                        vgs[r, c] = 0.0
                        quality[r, c] = CellQuality.FAILED
        return vgs

    def scan(
        self,
        config: ScanConfig | bool | None = None,
        *,
        force_engine: bool | None = None,
        jobs: int | None = None,
        preflight: bool | None = None,
    ) -> ScanResult:
        """Scan the whole array; returns the assembled :class:`ScanResult`.

        Parameters
        ----------
        config:
            A :class:`~repro.measure.config.ScanConfig` (jobs, preflight,
            force_engine, tracer, metrics).  ``None`` uses the defaults:
            serial, no preflight, closed-form routing, observability off.
        force_engine, jobs, preflight:
            Deprecated keyword forms of the corresponding
            :class:`ScanConfig` fields; using any of them emits
            :class:`DeprecationWarning`.

        The returned result carries a :class:`ScanStats` telemetry
        record in ``result.stats``; when ``config.metrics`` is a real
        registry the stats are folded into it as well, and
        ``config.tracer`` receives the scan → macro → cell → phase span
        tree (parallel workers buffer their spans per task and ship
        them back for a parent-side merge, stamped with
        ``worker_id``/``pid``).  ``config.progress`` is advanced
        once per completed macro (live completion/throughput/ETA), and
        when ``config.ledger`` is set a run manifest (provenance +
        per-run scalars) is appended to it on completion.

        Resilience (see docs/architecture.md "Resilience"): with
        ``config.checkpoint`` set, completed macros persist through the
        run ledger and an interrupted scan resumes bit-exact; with
        ``jobs > 1`` the process pool is supervised (``config.retry``,
        ``config.timeout``) and macros whose workers keep dying are
        re-run in-process as the final rung, flagged DEGRADED.
        """
        config = coerce_scan_config(
            config,
            "ArrayScanner.scan",
            force_engine=force_engine,
            jobs=jobs,
            preflight=preflight,
        )
        # Resolve the cell-technology backend and check it matches the
        # array: the backend supplies post-scan physics and per-run
        # scalars, so measuring a FeCap array under config.technology
        # "edram" would silently skip its read-disturb.
        from repro.technologies import get as _get_technology

        backend = _get_technology(config.technology)
        array_technology = getattr(self.array, "technology", "edram")
        if array_technology != config.technology:
            raise MeasurementError(
                f"config.technology is {config.technology!r} but the "
                f"array was fabricated for {array_technology!r}"
            )
        if config.preflight:
            from repro.lint import preflight_array, raise_on_errors

            raise_on_errors(preflight_array(self.array, self.structure))
        tracer = config.tracer
        progress = config.progress
        checkpointer = config.checkpoint
        with _ambient_metrics(config), _ambient_faults(config):
            start = perf_counter()
            cpu_start = process_time()
            rows, cols = self.array.rows, self.array.cols
            num_macros = self.array.num_macros
            footprint: "FootprintLog | None" = None
            if config.sanitize:
                from repro.sanitize.footprint import FootprintLog

                footprint = FootprintLog((rows, cols))
            # Dispatch planner: the batched kernel replaces the
            # per-macro drivers only when they are semantically inert —
            # no fault sites to honour, no checkpoint to resume into,
            # no engine forcing.  Tracing is *not* a disqualifier:
            # serial kernel passes get a parent-side "kernel" span, and
            # parallel workers buffer spans per task and ship them back
            # in the acks for the parent-side merge.
            kernel_ok = (
                self._use_kernel
                and backend.uses_kernel
                and not config.force_engine
                and checkpointer is None
                and active_fault_plan() is None
            )
            if kernel_ok:
                # The kernel branches produce whole vgs/codes planes;
                # pre-zeroed ones would be pure allocation waste on the
                # hot path.
                codes = vgs = None  # type: ignore[assignment]
            else:
                codes = np.zeros((rows, cols), dtype=int)
                vgs = np.zeros((rows, cols))
            tiers = np.full((rows, cols), "c", dtype="<U1")
            quality = quality_plane((rows, cols))
            timings: list[MacroTiming] = []

            done: set[int] = set()
            if checkpointer is not None:
                state = checkpointer.start(
                    "scan",
                    resume_fingerprint(config),
                    {"codes": codes, "vgs": vgs, "tiers": tiers,
                     "quality": quality},
                    total=num_macros,
                )
                # A resumed scan continues into the checkpointed planes;
                # a fresh one adopts the (identical) arrays it just
                # handed over so mark_done persists live state.
                codes = state.arrays["codes"]
                vgs = state.arrays["vgs"]
                tiers = state.arrays["tiers"]
                quality = state.arrays["quality"]
                done = set(state.completed)
            if done:
                remaining = [i for i in range(num_macros) if i not in done]
            else:
                remaining = list(range(num_macros))

            effective_jobs = min(config.jobs, num_macros)
            telemetry: dict = {
                "retries": 0, "timeouts": 0, "respawns": 0, "workers": [],
            }
            kernel_cells = 0
            kernel_seconds = 0.0

            def _finish_macro(
                index: int, tier: str, cells: int, seconds: float
            ) -> None:
                timings.append(MacroTiming(index, tier, cells, seconds))
                progress.advance(cells)
                fault_point("scan.macro_done", macro=index)
                if checkpointer is not None:
                    checkpointer.mark_done(index)

            def _record_macro(index: int, source: str, task: str | None = None) -> None:
                # Parent-side footprint record for a macro written via
                # _place (serial, rescue, engine-overwrite); worker-side
                # writes ship their rectangles back in acknowledgements.
                if footprint is None:
                    return
                macro = self.array.macro(index)
                footprint.record(
                    task if task is not None else f"macro[{index}]",
                    macro.row_start, macro.row_stop,
                    macro.col_start, macro.col_stop,
                    source=source,
                )

            def _rescue(index: int) -> None:
                # Final rung: the pool gave up on this macro (worker
                # kept dying or timing out), so run it in-process —
                # slower, but the planes stay whole.  Cells are flagged
                # DEGRADED: the value did not come through the
                # configured path.
                macro = self.array.macro(index)
                macro_start = perf_counter()
                m_vgs, m_codes, tier, m_quality = self._scan_macro(
                    macro, config
                )
                seconds = perf_counter() - macro_start
                m_quality = np.maximum(
                    m_quality, np.uint8(CellQuality.DEGRADED)
                )
                active_metrics().counter(
                    "scan.macro_rescues",
                    "macros re-run in-process after the pool gave up",
                ).inc()
                self._place(
                    macro, m_vgs, m_codes, tier, m_quality,
                    vgs, codes, tiers, quality,
                )
                # A rescue only runs when no worker acknowledgement ever
                # landed, so recording under the same task key is the
                # legal retry shape, not an overlap.
                _record_macro(index, "rescue")
                _finish_macro(index, tier, macro.num_cells, seconds)

            with tracer.span(
                "scan",
                rows=rows,
                cols=cols,
                jobs=effective_jobs,
                force_engine=config.force_engine,
            ) as scan_span:
                progress.start(rows * cols, label="scan", units="cells")
                for index in sorted(done):
                    # Checkpointed macros are already in the planes.
                    progress.advance(self.array.macro(index).num_cells)
                    _record_macro(
                        index, "checkpoint", task=f"checkpoint[{index}]"
                    )
                pool_jobs = min(effective_jobs, len(remaining))
                if kernel_ok:
                    # A kernel-eligible scan has no checkpoint, so it
                    # always covers the whole array.  Engine routing is
                    # decided up front (O(1) for bridge-free arrays) so
                    # both the slab planner and the serial overwrite
                    # loop share one verdict per macro.
                    cells_per_macro = (
                        self.array.macro_rows * self.array.macro_cols
                    )
                    if self.array.defect_count(DefectKind.BRIDGE) == 0:
                        engine_indices: list[int] = []
                    else:
                        engine_indices = [
                            i for i in range(num_macros)
                            if self._macro_needs_engine(self.array.macro(i))
                        ]
                if kernel_ok and pool_jobs > 1:
                    from repro.measure.parallel import (
                        scan_macros_kernel_parallel,
                    )

                    vgs, codes, quality, macro_seconds, failures, telemetry = (
                        scan_macros_kernel_parallel(
                            self.array, self.structure, pool_jobs,
                            engine_indices=engine_indices,
                            retry=config.retry,
                            timeout=config.timeout,
                            footprint=footprint,
                            tracer=tracer,
                            metrics=active_metrics(),
                        )
                    )
                    for index, tier, seconds in macro_seconds:
                        if tier == "e":
                            macro = self.array.macro(index)
                            tiers[macro.row_start:macro.row_stop,
                                  macro.col_start:macro.col_stop] = "e"
                        else:
                            kernel_cells += cells_per_macro
                            kernel_seconds += seconds
                        timings.append(
                            MacroTiming(index, tier, cells_per_macro, seconds)
                        )
                    progress.advance(cells_per_macro * len(macro_seconds))
                    for index, _error in failures:
                        _rescue(index)
                elif kernel_ok:
                    kernel_start = perf_counter()
                    with tracer.span(
                        "kernel", rows=rows, cols=cols
                    ) as kernel_span:
                        plane_vgs = closed_form_vgs_plane(
                            self.array.capacitance_view(),
                            self.array.defect_kind_view(),
                            self.kernel_constants(),
                        )
                        plane_codes = self.codes_for_vgs(plane_vgs)
                    kernel_seconds = perf_counter() - kernel_start
                    kernel_span.attributes["seconds"] = kernel_seconds
                    vgs = plane_vgs
                    codes = plane_codes
                    engine_set = frozenset(engine_indices)
                    if footprint is not None:
                        # The kernel wrote the whole plane, but engine
                        # macros are about to overwrite their tiles;
                        # claim only the tiles the kernel's values
                        # survive in, so the engine overwrites are not
                        # misreported as overlaps.
                        for index in range(num_macros):
                            if index not in engine_set:
                                _record_macro(index, "parent", task="kernel")
                    n_kernel = num_macros - len(engine_set)
                    kernel_cells = n_kernel * cells_per_macro
                    share = kernel_seconds / n_kernel if n_kernel else 0.0
                    timings.extend(
                        MacroTiming(index, "c", cells_per_macro, share)
                        for index in range(num_macros)
                        if index not in engine_set
                    )
                    progress.advance(kernel_cells)
                    for index in engine_indices:
                        macro = self.array.macro(index)
                        macro_start = perf_counter()
                        m_vgs, m_codes, tier, m_quality = self._scan_macro(
                            macro, config
                        )
                        seconds = perf_counter() - macro_start
                        self._place(
                            macro, m_vgs, m_codes, tier, m_quality,
                            vgs, codes, tiers, quality,
                        )
                        _record_macro(index, "parent")
                        _finish_macro(index, tier, macro.num_cells, seconds)
                elif pool_jobs > 1:
                    from repro.measure.parallel import scan_macros_parallel

                    def _land(payload) -> None:
                        index, m_vgs, m_codes, tier, m_quality, seconds = payload
                        macro = self.array.macro(index)
                        # The worker's own macro → cell → phase spans
                        # ship back in the acknowledgement and are
                        # merged (with worker_id/pid attributes) before
                        # this hook runs, so no parent-side stand-in
                        # span is synthesized here.
                        self._place(
                            macro, m_vgs, m_codes, tier, m_quality,
                            vgs, codes, tiers, quality,
                        )
                        _finish_macro(index, tier, macro.num_cells, seconds)

                    _, failures, telemetry = scan_macros_parallel(
                        self.array, self.structure, config.force_engine,
                        pool_jobs,
                        indices=remaining,
                        retry=config.retry,
                        timeout=config.timeout,
                        fault_plan=config.faults,
                        on_result=_land,
                        footprint=footprint,
                        tracer=tracer,
                        metrics=active_metrics(),
                    )
                    for index, _error in failures:
                        _rescue(index)
                else:
                    for index in remaining:
                        macro = self.array.macro(index)
                        macro_start = perf_counter()
                        m_vgs, m_codes, tier, m_quality = self._scan_macro(
                            macro, config
                        )
                        seconds = perf_counter() - macro_start
                        self._place(
                            macro, m_vgs, m_codes, tier, m_quality,
                            vgs, codes, tiers, quality,
                        )
                        _record_macro(index, "parent")
                        _finish_macro(index, tier, macro.num_cells, seconds)
                progress.finish()

                sanitize_report: "LintReport | None" = None
                if footprint is not None:
                    from repro.sanitize.footprint import check_footprints

                    sanitize_report = check_footprints(footprint)
                    overlap = footprint.overlap_cells()
                    gap = footprint.gap_cells()
                    scan_span.attributes["footprint_intervals"] = len(footprint)
                    scan_span.attributes["footprint_overlap_cells"] = overlap
                    scan_span.attributes["footprint_gap_cells"] = gap
                    if overlap:
                        active_metrics().counter(
                            "scan.sanitize_overlap_cells",
                            "plane cells written by more than one task",
                        ).inc(overlap)
                    if gap:
                        active_metrics().counter(
                            "scan.sanitize_gap_cells",
                            "plane cells no task claims to have written",
                        ).inc(gap)

                if kernel_ok:
                    # Engine routing was decided up front; rescued
                    # macros re-run the same verdict, so the tier plane
                    # cannot disagree with the planner.
                    engine_cells = cells_per_macro * len(engine_indices)
                else:
                    engine_cells = int((tiers == "e").sum())
                scan_span.attributes["engine_cells"] = engine_cells
                # One whole-plane observation instead of one per macro —
                # same distribution, none of the per-tile conversion cost.
                active_metrics().histogram(
                    "scan.codes", "measurement codes emitted"
                ).observe_many(codes.ravel())

            # MacroTiming is a NamedTuple with the unique index first,
            # so plain tuple order is index order (no per-item key call).
            timings.sort()
            stats = ScanStats(
                total_cells=rows * cols,
                wall_seconds=perf_counter() - start,
                jobs=effective_jobs,
                closed_form_cells=rows * cols - engine_cells,
                engine_cells=engine_cells,
                macro_timings=timings,
                kernel_cells=kernel_cells,
                kernel_seconds=kernel_seconds,
                degraded_cells=int((quality == CellQuality.DEGRADED).sum()),
                failed_cells=int((quality == CellQuality.FAILED).sum()),
                macro_retries=telemetry["retries"],
                macro_timeouts=telemetry["timeouts"],
                worker_respawns=telemetry["respawns"],
                pool_health=telemetry.get("workers", []),
            )
            stats.to_metrics(active_metrics())
        result = ScanResult(
            codes=codes,
            vgs=vgs,
            num_steps=self.structure.design.num_steps,
            tiers=tiers,
            stats=stats,
            quality=quality,
            sanitize_report=sanitize_report,
        )
        # Post-scan physics (e.g. ferroelectric read-disturb) land
        # before the run is recorded, so the ledger's per-run scalars —
        # including the backend extras — chart the state this read left
        # behind.  Backend mutations go through the watched cell
        # attributes, bumping array.version and evicting warm caches.
        backend.after_scan(self.array, result)
        run_id = checkpointer.run_id if checkpointer is not None else None
        if config.ledger is not None:
            config.ledger.record_scan(
                result,
                config,
                tech=self.structure.tech.name,
                cpu_seconds=process_time() - cpu_start,
                run_id=run_id,
                extra_scalars=backend.extra_scalars(self.array),
            )
        if checkpointer is not None:
            # The manifest row is in; the in-flight state is obsolete.
            checkpointer.finish()
        return result

    @staticmethod
    def _place(
        macro: MacroCell,
        m_vgs: np.ndarray,
        m_codes: np.ndarray,
        tier: str,
        m_quality: np.ndarray,
        vgs: np.ndarray,
        codes: np.ndarray,
        tiers: np.ndarray,
        quality: np.ndarray,
    ) -> None:
        rsl = slice(macro.row_start, macro.row_stop)
        csl = slice(macro.col_start, macro.col_stop)
        vgs[rsl, csl] = m_vgs
        codes[rsl, csl] = m_codes
        tiers[rsl, csl] = tier
        quality[rsl, csl] = m_quality

    def measure_cell(
        self,
        row: int,
        col: int,
        config: ScanConfig | str | None = None,
        *,
        tier: str | None = None,
    ) -> "object":
        """Measure one cell by global address through a named tier.

        ``config.tier`` selects ``"charge"`` or ``"transient"``; the old
        ``tier=`` keyword (and positional string) still work behind a
        deprecation shim.  Returns the
        :class:`~repro.measure.result.MeasurementResult`.
        """
        config = coerce_scan_config(config, "ArrayScanner.measure_cell", tier=tier)
        macro = self.array.macro(self.array.macro_of(row, col))
        lrow = row - macro.row_start
        lcol = col - macro.col_start
        sequencer = self._sequencer(macro)
        with _ambient_metrics(config):
            if config.tier == "charge":
                return sequencer.measure_charge(lrow, lcol, tracer=config.tracer)
            return sequencer.measure_transient(lrow, lcol, tracer=config.tracer)
