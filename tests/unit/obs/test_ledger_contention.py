"""Ledger advisory lock under contention: serialised appends, bounded waits.

The fleet points many shard workers (and the final lot merge) at run
ledgers; ``RunLedger.locked`` is what keeps concurrent ``record`` calls
from interleaving manifest lines or double-allocating run ids.  flock
locks attach to open file descriptions, so threads each opening their
own descriptor contend exactly like separate processes do — a thread
pool is a faithful (and fast) stand-in for a worker fleet here.
"""

import json
import os
import threading

import pytest

from repro.errors import LedgerError
from repro.obs.ledger import RunLedger, RunManifest

WRITERS = 8
RECORDS_EACH = 5


class TestContendedRecording:
    def test_concurrent_records_serialise_cleanly(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger")
        barrier = threading.Barrier(WRITERS)
        errors = []

        def write(writer: int) -> None:
            barrier.wait()
            try:
                for i in range(RECORDS_EACH):
                    ledger.record(RunManifest(
                        kind="scan", label=f"w{writer}.{i}",
                    ))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=write, args=(w,))
            for w in range(WRITERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

        # Every line parses — no interleaved or torn appends.
        lines = ledger.manifest_path.read_text(
            encoding="utf-8"
        ).splitlines()
        manifests = [json.loads(line) for line in lines]
        assert len(manifests) == WRITERS * RECORDS_EACH

        # Run ids are unique and dense: no double allocation, no gaps.
        run_ids = [m["run_id"] for m in manifests]
        assert len(set(run_ids)) == len(run_ids)
        assert sorted(run_ids) == [
            f"r{n:04d}" for n in range(1, WRITERS * RECORDS_EACH + 1)
        ]

        # Every writer landed all of its labels.
        labels = {m["label"] for m in manifests}
        assert labels == {
            f"w{w}.{i}" for w in range(WRITERS) for i in range(RECORDS_EACH)
        }


class TestBoundedWait:
    def test_timeout_names_the_holder(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger")
        acquired = threading.Event()
        release = threading.Event()

        def hold() -> None:
            with ledger.locked():
                acquired.set()
                release.wait(timeout=30.0)

        holder = threading.Thread(target=hold)
        holder.start()
        try:
            assert acquired.wait(timeout=10.0)
            with pytest.raises(LedgerError) as excinfo:
                with ledger.locked(timeout=0.1):
                    pass  # pragma: no cover - lock must not be granted
            message = str(excinfo.value)
            assert "timed out waiting for ledger lock" in message
            assert "held by" in message
            assert f"pid {os.getpid()} (alive)" in message
        finally:
            release.set()
            holder.join()

    def test_lock_releases_after_holder_exits(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger")
        with ledger.locked(timeout=0.5):
            pass
        # Immediately reacquirable — the finally released the flock.
        with ledger.locked(timeout=0.5):
            pass
