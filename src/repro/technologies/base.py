"""The :class:`CellTechnology` protocol — what a backend must provide.

A backend owns everything on the *array side* of the measurement seam:

- the **technology card** (supply rails, devices, parasitics, leakage)
  and its **parameter corners**,
- the **cell electrical model** and **defect semantics** — expressed as
  the array class the backend builds, whose capacitance/defect planes
  are exactly the netlist stamps the sequencer requests at the
  plate/bitline/wordline terminals,
- the **variation maps** used to synthesize arrays and wafer dies,
- the **measurement range** the structure designer should solve for and
  the **quality thresholds** (spec window) diagnosis judges against,
- optional **post-scan physics** (e.g. ferroelectric read-disturb) and
  per-run **extra scalars** for the drift charts.

The scan engine, closed-form kernel, shared-memory fan-out, resilience
ladder, ledger fingerprints and drift detection all stay
technology-agnostic: they consume the array's bulk planes and the
structure's constants, both of which the backend produced.  A backend
whose charge-sharing algebra deviates from the paper's closed form opts
out of the batched kernel by setting :attr:`CellTechnology.uses_kernel`
to ``False`` — the scan planner then keeps the per-macro drivers (see
docs/architecture.md, "Cell-technology backends").
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.errors import TechnologyError
from repro.units import fF, to_fF

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.edram.array import EDRAMArray
    from repro.measure.scan import ScanResult
    from repro.measure.structure import MeasurementStructure
    from repro.tech.parameters import TechnologyCard


class CellTechnology(abc.ABC):
    """One pluggable memory technology behind the measurement seam.

    Subclasses set the class attributes and implement
    :meth:`base_card` and :meth:`build_array`; every other method has a
    technology-agnostic default expressed in terms of those two.
    Backends are stateless singletons (the registry caches one instance
    per process) — all mutable physics state lives on the arrays they
    build.
    """

    #: Registry name (``repro scan --tech <name>``).
    name: str = ""
    #: Human-readable one-liner for ``repro tech list``.
    display: str = ""
    #: The backend's headline measurement (``"capacitance"``,
    #: ``"retention"``, ...).
    headline: str = "capacitance"
    #: Literature reference for the cell physics.
    reference: str = ""
    #: Whether the batched closed-form kernel's charge-share algebra is
    #: valid for this technology.  ``False`` pins the per-macro drivers.
    uses_kernel: bool = True
    #: Within-die mismatch sigma used by the default array synthesis.
    mismatch_sigma: float = 0.8 * fF

    # ------------------------------------------------------------------
    # Cards and corners
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def base_card(self) -> "TechnologyCard":
        """The nominal (typical-typical) technology card."""

    def corners(self) -> dict[str, "TechnologyCard"]:
        """Parameter-corner cards keyed by corner tag (``tt``/``ff``/...).

        Defaults to the five-corner transistor shifts of
        :mod:`repro.tech.corners` applied over :meth:`base_card`;
        backends whose storage element corners differently override.
        """
        from repro.tech.corners import all_corners

        return {
            corner.value: card
            for corner, card in all_corners(self.base_card()).items()
        }

    # ------------------------------------------------------------------
    # Array synthesis
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def build_array(
        self,
        rows: int,
        cols: int,
        *,
        macro_rows: int | None = None,
        macro_cols: int = 2,
        seed: int = 0,
        nominal: float | None = None,
        with_defects: bool = False,
        tech: "TechnologyCard | None" = None,
    ) -> "EDRAMArray":
        """Synthesize an array with this technology's variation model.

        ``nominal`` overrides the card's nominal storage capacitance
        (farads); ``None`` uses the card value.  ``with_defects``
        scatters the backend's standard defect population (deterministic
        under ``seed``).  ``tech`` substitutes a corner card.
        """

    def inject_defects(self, array: "EDRAMArray", seed: int = 0) -> None:
        """Scatter the standard demo defect population onto ``array``.

        The recipe mirrors the original eDRAM CLI synthesis (density per
        defect class scales with the cell count; LOW_CAP at factor 0.6)
        so the default eDRAM path stays bit-exact.  Backends with
        different dominant mechanisms override.
        """
        from repro.edram.defects import DefectInjector, DefectKind

        injector = DefectInjector(array, seed=seed + 1)
        injector.scatter(DefectKind.SHORT, max(1, array.num_cells // 400))
        injector.scatter(DefectKind.OPEN, max(1, array.num_cells // 400))
        injector.scatter(
            DefectKind.LOW_CAP, max(2, array.num_cells // 200), factor=0.6
        )
        injector.scatter(DefectKind.BRIDGE, max(1, array.num_cells // 500))

    def fabricate_die(
        self,
        rows: int,
        cols: int,
        *,
        macro_rows: int,
        macro_cols: int,
        mean: float,
        cell_sigma: float,
        mismatch_seed: int,
        tech: "TechnologyCard | None" = None,
    ) -> "EDRAMArray":
        """Build one wafer die with a given mean and mismatch draw.

        The wafer model owns the RNG (die means and mismatch seeds must
        come from *its* stream so checkpoint fast-forward stays
        bit-exact); the backend turns one ``(mean, mismatch_seed)`` draw
        into a die array.  The default composes a uniform map (floored
        at 5 fF, matching the historical eDRAM wafer path) with white
        mismatch — backends with structured variation override.
        """
        from repro.edram.variation_map import (
            compose_maps,
            mismatch_map,
            uniform_map,
        )

        shape = (rows, cols)
        capacitance = compose_maps(
            uniform_map(shape, max(mean, 5 * fF)),
            mismatch_map(shape, cell_sigma, seed=mismatch_seed),
        )
        return self.array_class()(
            rows, cols, tech=tech if tech is not None else self.base_card(),
            macro_cols=macro_cols, macro_rows=macro_rows,
            capacitance_map=capacitance,
        )

    def array_class(self) -> type:
        """The array class this backend fabricates."""
        from repro.edram.array import EDRAMArray

        return EDRAMArray

    # ------------------------------------------------------------------
    # Measurement range / structure design
    # ------------------------------------------------------------------

    def measurement_range(self) -> tuple[float, float, int]:
        """``(c_lo, c_hi, num_steps)`` the structure should be sized for.

        Defaults to the paper's 10–55 fF over 20 steps; backends whose
        storage capacitance lives elsewhere (e.g. a few-fF floating
        body) override so :func:`~repro.calibration.design.design_structure`
        solves a feasible converter.
        """
        return (10.0 * fF, 55.0 * fF, 20)

    def design_structure(
        self, array: "EDRAMArray", *, bitline_rows: int | None = None
    ) -> "MeasurementStructure":
        """Size a measurement structure for ``array``'s macro geometry."""
        from repro.calibration.design import design_structure

        c_lo, c_hi, num_steps = self.measurement_range()
        return design_structure(
            array.tech, array.macro_rows, array.macro_cols,
            c_lo=c_lo, c_hi=c_hi, num_steps=num_steps,
            bitline_rows=bitline_rows if bitline_rows is not None else array.rows,
        )

    def default_structure(self, array: "EDRAMArray") -> "MeasurementStructure":
        """The reference (undesigned) structure for quick scans.

        Must match what :class:`~repro.measure.scan.ArrayScanner` builds
        when no structure is passed — the registry path may not perturb
        the default-scan results.
        """
        from repro.measure.structure import MeasurementDesign, MeasurementStructure

        return MeasurementStructure(array.tech, MeasurementDesign())

    def spec_window(self) -> tuple[float, float]:
        """Capacitance quality thresholds (farads) diagnosis judges by.

        Defaults to ±20 % of the card nominal; the eDRAM backend pins
        the historical 24–36 fF window explicitly.
        """
        nominal = self.base_card().cell_capacitance
        return (0.8 * nominal, 1.2 * nominal)

    # ------------------------------------------------------------------
    # Post-scan physics hooks
    # ------------------------------------------------------------------

    def after_scan(self, array: "EDRAMArray", result: "ScanResult") -> None:
        """Apply any physical consequence of having read every cell.

        Called by :meth:`ArrayScanner.scan` once per completed scan,
        before the run is recorded.  The default is a no-op (an eDRAM
        capacitive measurement is non-destructive at this abstraction);
        the ferroelectric backend applies cumulative read-disturb here,
        which bumps ``array.version`` and thereby invalidates warm pools
        and cached netlists automatically.
        """

    def extra_scalars(self, array: "EDRAMArray") -> dict[str, float]:
        """Backend-specific per-run scalars for the ledger/drift charts."""
        return {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def describe(self) -> dict[str, object]:
        """Machine-readable summary for ``repro tech list``."""
        card = self.base_card()
        c_lo, c_hi, num_steps = self.measurement_range()
        spec_lo, spec_hi = self.spec_window()
        return {
            "name": self.name,
            "display": self.display,
            "headline": self.headline,
            "reference": self.reference,
            "uses_kernel": self.uses_kernel,
            "card": card.name,
            "vdd": card.vdd,
            "nominal_fF": to_fF(card.cell_capacitance),
            "range_fF": [to_fF(c_lo), to_fF(c_hi)],
            "num_steps": num_steps,
            "spec_window_fF": [to_fF(spec_lo), to_fF(spec_hi)],
            "corners": {
                tag: {
                    "card": corner_card.name,
                    "nominal_fF": to_fF(corner_card.cell_capacitance),
                    "nmos_vth": corner_card.nmos.vth0,
                    "pmos_vth": corner_card.pmos.vth0,
                }
                for tag, corner_card in self.corners().items()
            },
        }

    def check_array(self, array: "EDRAMArray") -> None:
        """Raise unless ``array`` was fabricated for this technology."""
        array_technology = getattr(array, "technology", "edram")
        if array_technology != self.name:
            raise TechnologyError(
                f"array carries technology {array_technology!r}, "
                f"not {self.name!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CellTechnology {self.name!r} ({self.display})>"
