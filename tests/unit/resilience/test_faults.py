"""Deterministic fault injection: plans, matchers, firing semantics."""

import pickle

import pytest

from repro.errors import ResilienceError
from repro.resilience.faults import (
    Fault,
    FaultPlan,
    active_fault_plan,
    fault_point,
    inject,
    install_plan,
)


# ---------------------------------------------------------------------------
# Fault validation and matching
# ---------------------------------------------------------------------------


def test_raise_fault_needs_an_error():
    with pytest.raises(ResilienceError, match="needs error="):
        Fault("site")


def test_unknown_kind_rejected():
    with pytest.raises(ResilienceError, match="unknown fault kind"):
        Fault("site", kind="explode")


def test_sleep_fault_needs_positive_seconds():
    with pytest.raises(ResilienceError, match="seconds>0"):
        Fault("site", kind="sleep")


def test_probability_outside_unit_interval_rejected():
    with pytest.raises(ResilienceError, match="outside"):
        Fault("site", kind="kill", probability=1.5)


def test_matches_requires_site_and_every_attr():
    fault = Fault("scan.macro_done", kind="kill", match={"macro": 2})
    assert fault.matches("scan.macro_done", {"macro": 2, "extra": 1})
    assert not fault.matches("scan.macro_done", {"macro": 3})
    assert not fault.matches("other.site", {"macro": 2})
    assert not fault.matches("scan.macro_done", {})  # attr absent != equal


# ---------------------------------------------------------------------------
# Plan firing semantics
# ---------------------------------------------------------------------------


def test_raise_fault_fires_and_respects_times():
    plan = FaultPlan([Fault("s", error=ValueError("boom"), times=2)])
    with inject(plan):
        with pytest.raises(ValueError):
            fault_point("s")
        with pytest.raises(ValueError):
            fault_point("s")
        fault_point("s")  # third invocation: budget spent
    assert len(plan.firings) == 2


def test_after_skips_leading_invocations():
    plan = FaultPlan([Fault("s", error=ValueError("late"), after=2, times=1)])
    with inject(plan):
        fault_point("s")
        fault_point("s")
        with pytest.raises(ValueError):
            fault_point("s")


def test_match_filters_by_attributes():
    plan = FaultPlan([Fault("s", error=ValueError("m1"), match={"macro": 1})])
    with inject(plan):
        fault_point("s", macro=0)
        with pytest.raises(ValueError):
            fault_point("s", macro=1)


def test_kill_outside_worker_records_but_stands_down():
    # A kill in the parent would take the session down; the plan records
    # the firing and continues instead.
    plan = FaultPlan([Fault("s", kind="kill")])
    with inject(plan):
        fault_point("s")
    assert plan.firings == [("s", {}, "kill")]


def test_probability_is_deterministic_in_seed():
    def firing_pattern(seed):
        plan = FaultPlan(
            [Fault("s", kind="kill", times=None, probability=0.5)], seed=seed
        )
        with inject(plan):
            for i in range(32):
                fault_point("s", i=i)
        return [attrs["i"] for _, attrs, _ in plan.firings]

    assert firing_pattern(7) == firing_pattern(7)
    assert firing_pattern(7) != firing_pattern(8)
    assert 0 < len(firing_pattern(7)) < 32  # actually probabilistic


# ---------------------------------------------------------------------------
# Ambient plumbing
# ---------------------------------------------------------------------------


def test_fault_point_is_noop_when_disarmed():
    assert active_fault_plan() is None
    fault_point("anything", macro=1)  # must not raise


def test_inject_scopes_and_restores():
    plan = FaultPlan()
    with inject(plan) as armed:
        assert armed is plan
        assert active_fault_plan() is plan
    assert active_fault_plan() is None


def test_install_plan_sets_processwide(monkeypatch):
    plan = FaultPlan()
    install_plan(plan)
    try:
        assert active_fault_plan() is plan
    finally:
        install_plan(None)


def test_pickle_resets_firing_counters():
    plan = FaultPlan([Fault("s", error=ValueError("x"), times=1)], seed=3)
    with inject(plan):
        with pytest.raises(ValueError):
            fault_point("s")
    clone = pickle.loads(pickle.dumps(plan))
    assert clone.seed == 3
    assert [f.site for f in clone.faults] == ["s"]
    # The clone's budget is fresh: the same fault fires again.
    with inject(clone):
        with pytest.raises(ValueError):
            fault_point("s")
