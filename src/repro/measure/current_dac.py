"""The programmable current reference I_REFP.

A linear current DAC: ``num_steps`` identical legs of ``delta_i`` each,
enabled one at a time by the shift register, producing a staircase ramp
``I(k) = k·delta_i``.  The behavioural/staircase view is used by every
tier; the transient tier injects the equivalent
:class:`~repro.circuit.stimulus.Staircase`-valued current source into the
REF drain (an ideal-source idealisation of the cascode mirror the paper
cites from [3] — adequate because only the step *values* matter to the
conversion).
"""

from __future__ import annotations

from repro.circuit.stimulus import Staircase
from repro.errors import MeasurementError


class ProgrammableCurrentReference:
    """Linear ``num_steps × delta_i`` current staircase source.

    Parameters
    ----------
    delta_i:
        Current increment per step, amperes.
    num_steps:
        Number of steps (20 in the paper).
    """

    def __init__(self, delta_i: float, num_steps: int = 20) -> None:
        if delta_i <= 0:
            raise MeasurementError(f"delta_i must be positive, got {delta_i}")
        if num_steps < 1:
            raise MeasurementError(f"num_steps must be >= 1, got {num_steps}")
        self.delta_i = delta_i
        self.num_steps = num_steps

    def current_at_step(self, step: int) -> float:
        """DAC output with ``step`` legs enabled, amperes."""
        if not 0 <= step <= self.num_steps:
            raise MeasurementError(f"step {step} outside 0..{self.num_steps}")
        return step * self.delta_i

    @property
    def full_scale(self) -> float:
        """Maximum output current, amperes."""
        return self.num_steps * self.delta_i

    def staircase(self, t0: float, step_duration: float) -> Staircase:
        """Time-domain staircase starting at ``t0`` (for the transient tier)."""
        if step_duration <= 0:
            raise MeasurementError(f"step_duration must be positive, got {step_duration}")
        return Staircase(
            t0=t0,
            step_duration=step_duration,
            step_value=self.delta_i,
            num_steps=self.num_steps,
        )

    def step_for_current(self, current: float) -> int:
        """Smallest step whose output meets or exceeds ``current``.

        Clamped to ``num_steps``; 0 for non-positive currents.
        """
        if current <= 0:
            return 0
        import math

        return min(self.num_steps, math.ceil(current / self.delta_i - 1e-12))
