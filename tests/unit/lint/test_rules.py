"""Per-rule tests: every ERC/PRM/UNT rule on known-good and -bad fixtures."""

import pytest

from repro.lint import (
    REGISTRY,
    lint_charge_network,
    lint_circuit,
    lint_flow,
    lint_technology,
)
from repro.lint.diagnostics import Severity
from repro.tech.parameters import default_technology, technology_013um
from tests.unit.lint import fixtures


# ---------------------------------------------------------------------------
# Known-good subjects are clean
# ---------------------------------------------------------------------------


def test_good_divider_is_clean():
    assert lint_circuit(fixtures.good_divider()).ok


def test_good_charge_network_is_clean():
    report = lint_charge_network(fixtures.good_charge_network())
    assert len(report) == 0


def test_good_flow_is_clean():
    built = fixtures.good_flow()
    assert len(lint_flow(built)) == 0


@pytest.mark.parametrize("tech", [default_technology(), technology_013um()])
def test_nominal_technologies_are_clean(tech):
    assert len(lint_technology(tech)) == 0


def test_healthy_measurement_circuit_is_clean():
    from repro.measure.netlist_builder import build_measurement_circuit

    array = fixtures.small_array()
    built = build_measurement_circuit(
        array.macro(0), 0, 0, fixtures.structure_for(array)
    )
    report = lint_circuit(built.circuit)
    assert report.ok, report.format_text()


# ---------------------------------------------------------------------------
# ERC001 floating-node
# ---------------------------------------------------------------------------


def test_erc001_flags_dangling_node():
    report = lint_circuit(fixtures.bad_floating_node())
    found = report.by_code("ERC001")
    assert len(found) == 1
    assert found[0].nodes == ("midd",)
    assert found[0].severity is Severity.ERROR
    assert not report.ok


def test_erc001_exempts_ground_and_driven_nodes():
    # A one-terminal source node is a legal stimulus, not a dangle.
    from repro.circuit.elements import VoltageSource
    from repro.circuit.netlist import Circuit

    ckt = Circuit("stub")
    ckt.add(VoltageSource("V1", "probe", "0", 1.0))
    report = lint_circuit(ckt, only=("ERC001",))
    assert len(report) == 0


# ---------------------------------------------------------------------------
# ERC002 no-dc-path-to-ground
# ---------------------------------------------------------------------------


def test_erc002_flags_capacitor_only_island():
    report = lint_circuit(fixtures.bad_no_dc_path(), only=("ERC002",))
    flagged = {node for d in report for node in d.nodes}
    assert flagged == {"island_a", "island_b"}
    assert not report.ok


def test_erc002_accepts_switch_and_mosfet_paths():
    # MOSFET channels and switches count as DC conduction.
    from repro.circuit.elements import Capacitor, Switch, VoltageSource
    from repro.circuit.mosfet import Mosfet
    from repro.circuit.netlist import Circuit
    from repro.units import fF

    tech = default_technology()
    ckt = Circuit("paths")
    ckt.add(VoltageSource("V1", "in", "0", 1.8))
    ckt.add(Switch("S1", "in", "a", 0.0))  # off-state still conducts (r_off)
    ckt.add(Mosfet("M1", "a", "in", "b", tech.nmos, w=1e-6, l=1e-6))
    ckt.add(Capacitor("C1", "b", "0", 30 * fF))
    assert len(lint_circuit(ckt, only=("ERC002",))) == 0


# ---------------------------------------------------------------------------
# ERC005 voltage-source-loop
# ---------------------------------------------------------------------------


def test_erc005_flags_parallel_sources():
    report = lint_circuit(fixtures.bad_vsource_loop(), only=("ERC005",))
    assert len(report) == 1
    assert set(report.diagnostics[0].nodes) == {"in", "0"}


def test_erc005_accepts_source_chains():
    # Series-stacked sources are fine; only a cycle over-determines.
    from repro.circuit.elements import Resistor, VoltageSource
    from repro.circuit.netlist import Circuit

    ckt = Circuit("stack")
    ckt.add(VoltageSource("V1", "a", "0", 1.0))
    ckt.add(VoltageSource("V2", "b", "a", 0.5))
    ckt.add(Resistor("R1", "b", "0", 1e3))
    assert len(lint_circuit(ckt, only=("ERC005",))) == 0


# ---------------------------------------------------------------------------
# ERC003 charge-trap
# ---------------------------------------------------------------------------


def test_erc003_flags_unreachable_charged_node():
    report = lint_charge_network(fixtures.bad_charge_trap(), subject="trap-net")
    found = report.by_code("ERC003")
    assert len(found) == 1
    assert found[0].nodes == ("orphan",)
    assert found[0].subject == "trap-net"


def test_erc003_driven_node_is_not_a_trap():
    net = fixtures.bad_charge_trap()
    net.drive("orphan", 0.0)
    assert len(lint_charge_network(net).by_code("ERC003")) == 0


# ---------------------------------------------------------------------------
# ERC004 phase-isolation-violation
# ---------------------------------------------------------------------------


def test_erc004_flags_short_defect_breaking_isolation():
    built = fixtures.bad_flow_isolation()
    report = lint_flow(built, row=0)
    found = report.by_code("ERC004")
    assert found, "SHORT defect must break step-3 isolation"
    assert any("s1_0" in d.nodes for d in found)
    assert any("ISOLATE" in d.message for d in found)


def test_erc004_flags_miswired_lec():
    report = lint_flow(fixtures.bad_flow_miswired_lec())
    messages = [d.message for d in report.by_code("ERC004")]
    assert any("miswired LEC" in m for m in messages)


def test_erc004_target_row_cells_are_legal():
    # The target row's access switches are *supposed* to close; measuring
    # row 1 of a healthy macro must not flag its own bitline connection.
    built = fixtures.good_flow()
    assert len(lint_flow(built, row=1)) == 0


def test_erc004_restores_network_state():
    built = fixtures.good_flow()
    before = built.network.snapshot()
    lint_flow(built, row=2)
    assert built.network.snapshot() == before


# ---------------------------------------------------------------------------
# PRM001 parameter-out-of-corner-range
# ---------------------------------------------------------------------------


def test_prm001_flags_out_of_envelope_card():
    report = lint_technology(fixtures.bad_corner_technology())
    found = report.by_code("PRM001")
    flagged = {d.message.split(" ")[0] for d in found}
    assert "nmos.vth0" in flagged
    assert "cell_capacitance" in flagged
    assert all(d.severity is Severity.WARNING for d in found)
    # Warnings never fail the check.
    assert report.ok


def test_prm001_accepts_corner_cards():
    from repro.tech.corners import Corner, corner_technology

    for corner in Corner:
        report = lint_technology(corner_technology(corner))
        assert len(report) == 0, f"corner {corner}: {report.format_text()}"


# ---------------------------------------------------------------------------
# UNT001 suspicious-unit-magnitude
# ---------------------------------------------------------------------------


def test_unt001_flags_farad_scale_capacitor():
    report = lint_circuit(fixtures.bad_unit_magnitude(), only=("UNT001",))
    assert len(report) == 1
    diag = report.diagnostics[0]
    assert "CSLIP" in diag.message
    assert diag.severity is Severity.WARNING


def test_unt001_checks_charge_networks_too():
    net = fixtures.good_charge_network()
    net.add_capacitor("CBIG", "plate", "0", 2.0)  # two farads
    report = lint_charge_network(net)
    assert any("CBIG" in d.message for d in report.by_code("UNT001"))


def test_unt001_ignores_waveform_stimuli():
    # Time-varying sources are built from already-checked design values.
    from repro.circuit.elements import Resistor, VoltageSource
    from repro.circuit.netlist import Circuit
    from repro.circuit.stimulus import Pulse

    ckt = Circuit("waveform")
    ckt.add(VoltageSource("V1", "in", "0", Pulse(0.0, 10e-9, 0.0, 1.8)))
    ckt.add(Resistor("R1", "in", "0", 1e3))
    assert len(lint_circuit(ckt, only=("UNT001",))) == 0


# ---------------------------------------------------------------------------
# Acceptance: every registered netlist rule fires on some fixture
# ---------------------------------------------------------------------------


def test_every_netlist_rule_code_is_exercised():
    seen = set()
    for code, builder, kind in fixtures.BAD_FIXTURES:
        subject = builder()
        if kind == "circuit":
            report = lint_circuit(subject)
        elif kind == "charge":
            report = lint_charge_network(subject)
        elif kind == "flow":
            report = lint_flow(subject)
        else:
            report = lint_technology(subject)
        assert code in report.codes(), f"fixture for {code} did not trigger it"
        seen.add(code)
    # Source, project and footprint rules are exercised by their own
    # suites (test_rules_ccy/_det, sanitize/test_footprint); everything
    # else must have a netlist fixture here.
    other_codes = {
        spec.code
        for target in ("source", "project", "footprint")
        for spec in REGISTRY.for_target(target)
    }
    assert seen | other_codes == set(REGISTRY.codes())
