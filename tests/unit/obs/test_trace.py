"""Tracer and span mechanics."""

import io
import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import NULL_TRACER, NullTracer, Span, Tracer


def make_clock(step=1.0):
    """Deterministic monotonic clock: 0, step, 2*step, ..."""
    ticks = iter(range(10_000))

    def clock():
        return next(ticks) * step

    return clock


class TestSpanNesting:
    def test_with_structure_becomes_parentage(self):
        tracer = Tracer(clock=make_clock())
        with tracer.span("scan"):
            with tracer.span("macro"):
                with tracer.span("cell"):
                    pass
            with tracer.span("macro"):
                pass
        scan, macro_a, cell, macro_b = tracer.spans
        assert scan.parent_id is None
        assert macro_a.parent_id == scan.span_id
        assert cell.parent_id == macro_a.span_id
        assert macro_b.parent_id == scan.span_id

    def test_span_ids_are_start_order(self):
        tracer = Tracer(clock=make_clock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [s.span_id for s in tracer.spans] == [0, 1]
        assert len(tracer) == 2

    def test_current_tracks_innermost_open_span(self):
        tracer = Tracer(clock=make_clock())
        assert tracer.current is None
        with tracer.span("outer"):
            assert tracer.current.name == "outer"
            with tracer.span("inner"):
                assert tracer.current.name == "inner"
            assert tracer.current.name == "outer"
        assert tracer.current is None

    def test_sibling_roots(self):
        tracer = Tracer(clock=make_clock())
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.roots()] == ["first", "second"]

    def test_children_listing(self):
        tracer = Tracer(clock=make_clock())
        with tracer.span("root"):
            with tracer.span("kid-a"):
                pass
            with tracer.span("kid-b"):
                pass
        root = tracer.spans[0]
        assert [s.name for s in tracer.children(root)] == ["kid-a", "kid-b"]

    def test_walk_yields_depths(self):
        tracer = Tracer(clock=make_clock())
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        assert [(s.name, d) for s, d in tracer.walk()] == [
            ("a", 0), ("b", 1), ("c", 2),
        ]


class TestSpanTiming:
    def test_durations_from_injected_clock(self):
        tracer = Tracer(clock=make_clock(step=0.5))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.spans
        # clock ticks: outer.start=0, inner.start=0.5, inner.end=1, outer.end=1.5
        assert outer.duration == pytest.approx(1.5)
        assert inner.duration == pytest.approx(0.5)
        assert inner.duration <= outer.duration

    def test_open_span_has_no_duration(self):
        tracer = Tracer(clock=make_clock())
        ctx = tracer.span("open")
        with ctx as span:
            assert span.end is None
            assert span.duration is None

    def test_span_closed_on_exception(self):
        tracer = Tracer(clock=make_clock())
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert tracer.spans[0].end is not None
        assert tracer.current is None


class TestSpanAttributes:
    def test_attributes_from_kwargs(self):
        tracer = Tracer(clock=make_clock())
        with tracer.span("cell", row=3, col=1):
            pass
        assert tracer.spans[0].attributes == {"row": 3, "col": 1}

    def test_attributes_live_until_exit(self):
        tracer = Tracer(clock=make_clock())
        with tracer.span("cell") as span:
            span.attributes["code"] = 7
        assert tracer.spans[0].attributes["code"] == 7


class TestTracerErrors:
    def test_empty_name_rejected(self):
        tracer = Tracer(clock=make_clock())
        with pytest.raises(ObservabilityError):
            tracer.span("")

    def test_misnested_close_rejected(self):
        tracer = Tracer(clock=make_clock())
        outer = tracer.span("outer")
        outer.__enter__()
        inner = tracer.span("inner")
        inner.__enter__()
        with pytest.raises(ObservabilityError):
            outer.__exit__(None, None, None)

    def test_export_with_open_span_rejected(self):
        tracer = Tracer(clock=make_clock())
        tracer.span("open").__enter__()
        with pytest.raises(ObservabilityError):
            tracer.write_jsonl(io.StringIO())


class TestSerialization:
    def test_to_dict_round_trip(self):
        tracer = Tracer(clock=make_clock())
        with tracer.span("scan", rows=4):
            with tracer.span("macro", index=0):
                pass
        rebuilt = [Span.from_dict(d) for d in tracer.to_dicts()]
        assert rebuilt == tracer.spans

    def test_write_jsonl_one_object_per_line(self):
        tracer = Tracer(clock=make_clock())
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        buf = io.StringIO()
        tracer.write_jsonl(buf)
        lines = buf.getvalue().splitlines()
        assert len(lines) == 2
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]

    def test_write_jsonl_to_path(self, tmp_path):
        tracer = Tracer(clock=make_clock())
        with tracer.span("a"):
            pass
        target = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(target))
        assert json.loads(target.read_text().splitlines()[0])["name"] == "a"

    def test_from_dict_malformed_raises(self):
        with pytest.raises(ObservabilityError):
            Span.from_dict({"name": "x"})  # missing ids and start
        with pytest.raises(ObservabilityError):
            Span.from_dict({"name": "x", "span_id": "not-an-int",
                            "parent_id": None, "start": 0.0})


class TestNullTracer:
    def test_shared_singleton_context(self):
        assert NullTracer().span("a") is NULL_TRACER.span("b")

    def test_absorbs_attribute_writes(self):
        with NULL_TRACER.span("cell", row=1) as span:
            span.attributes["code"] = 7
            span.attributes.update(tier="charge")
        # nothing recorded anywhere
        assert not hasattr(NULL_TRACER, "spans")

    def test_enabled_flags(self):
        assert Tracer().enabled is True
        assert NULL_TRACER.enabled is False


class TestWireCodec:
    def test_to_tuple_from_tuple_round_trip(self):
        tracer = Tracer(clock=make_clock())
        with tracer.span("scan", rows=4):
            with tracer.span("macro", index=0):
                pass
        for span in tracer.spans:
            clone = Span.from_tuple(span.to_tuple())
            assert clone.to_dict() == span.to_dict()

    def test_from_tuple_malformed_raises(self):
        with pytest.raises(ObservabilityError, match="span tuple"):
            Span.from_tuple(("only", "three", 3))


class TestMerge:
    def _worker_spans(self):
        worker = Tracer(clock=make_clock())
        with worker.span("macro", index=7):
            with worker.span("cell", row=0):
                pass
        return worker.spans

    def test_merge_reassigns_ids_and_remaps_parents(self):
        parent = Tracer(clock=make_clock())
        with parent.span("scan"):
            pass
        merged = parent.merge(self._worker_spans())
        assert [s.span_id for s in parent.spans] == [0, 1, 2]
        macro, cell = merged
        assert macro.name == "macro" and cell.name == "cell"
        assert cell.parent_id == macro.span_id

    def test_merge_grafts_under_open_span(self):
        parent = Tracer(clock=make_clock())
        with parent.span("scan"):
            merged = parent.merge(self._worker_spans())
            assert merged[0].parent_id == parent.spans[0].span_id

    def test_merge_without_graft_keeps_roots(self):
        parent = Tracer(clock=make_clock())
        with parent.span("scan"):
            merged = parent.merge(self._worker_spans(), graft=False)
        assert merged[0].parent_id is None

    def test_merge_stamps_worker_identity(self):
        parent = Tracer(clock=make_clock())
        merged = parent.merge(self._worker_spans(), worker_id=3, pid=4242)
        for span in merged:
            assert span.attributes["worker_id"] == 3
            assert span.attributes["pid"] == 4242

    def test_merge_does_not_mutate_source_spans(self):
        source = self._worker_spans()
        Tracer(clock=make_clock()).merge(source, worker_id=1, pid=99)
        assert "worker_id" not in source[0].attributes
        assert source[0].span_id == 0

    def test_merge_rejects_open_spans(self):
        worker = Tracer(clock=make_clock())
        worker.span("macro").__enter__()
        parent = Tracer()
        with pytest.raises(ObservabilityError, match="before the span closed"):
            parent.merge(list(worker.spans))

    def test_merge_rejects_child_before_parent(self):
        orphan = Span(name="cell", span_id=5, parent_id=17, start=0.0, end=1.0)
        with pytest.raises(ObservabilityError, match="parent"):
            Tracer().merge([orphan])

    def test_merged_tree_walks_and_summarizes(self):
        from repro.obs import summarize_trace

        parent = Tracer(clock=make_clock())
        with parent.span("scan"):
            for worker_id in (0, 1):
                parent.merge(self._worker_spans(), worker_id=worker_id, pid=100 + worker_id)
        summary = summarize_trace(parent.spans)
        counts = {a.name: a.count for a in summary.aggregates}
        assert counts["macro"] == 2
        assert counts["cell"] == 2


class TestAtomicWrite:
    def test_write_jsonl_replaces_atomically(self, tmp_path, monkeypatch):
        import os as _os

        target = tmp_path / "trace.jsonl"
        target.write_text("stale\n")
        replaced = []
        real_replace = _os.replace

        def spying_replace(src, dst):
            replaced.append((str(src), str(dst)))
            return real_replace(src, dst)

        monkeypatch.setattr("repro.obs.trace.os.replace", spying_replace)
        tracer = Tracer(clock=make_clock())
        with tracer.span("scan"):
            pass
        tracer.write_jsonl(target)
        assert replaced and replaced[0][1] == str(target)
        assert ".tmp." in replaced[0][0]
        lines = target.read_text().splitlines()
        assert json.loads(lines[0])["name"] == "scan"

    def test_write_failure_leaves_no_partial_file(self, tmp_path, monkeypatch):
        target = tmp_path / "trace.jsonl"

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.obs.trace.os.replace", exploding_replace)
        tracer = Tracer(clock=make_clock())
        with tracer.span("scan"):
            pass
        with pytest.raises(OSError):
            tracer.write_jsonl(target)
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []
