"""Cell defect taxonomy and injection.

The paper's motivation is failure analysis of the eDRAM capacitor module:
its measurement structure separates defect classes that classical digital
bitmaps merge.  This module defines those classes and a deterministic
injector that applies them to an array.

Defect classes
--------------
- ``SHORT``: capacitor dielectric short — the storage node is resistively
  tied to the plate.  The cell cannot hold charge; measurement code 0.
- ``OPEN``: broken storage-node contact — the capacitor is disconnected.
  Invisible to both write and measurement; code 0.
- ``LOW_CAP`` / ``HIGH_CAP``: parametric capacitance shift by ``factor``
  (process-module thinning / over-deposition).  The digital test only
  catches these when retention or sense margin actually fails; the analog
  measurement reads the value directly.
- ``ACCESS_OPEN``: access transistor stuck off (gate contact fail).  The
  storage node floats; behaves like an open from the array terminals.
- ``BRIDGE``: storage node bridged to the horizontally adjacent cell
  (metal sliver).  Both cells read each other's charge; the measurement
  sees roughly the parallel combination.
- ``RETENTION``: elevated junction leakage by ``factor``; fails pause
  tests but measures a normal capacitance.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.errors import DefectError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.edram.array import EDRAMArray


class DefectKind(enum.Enum):
    """Classes of cell-level defects (see module docstring)."""

    SHORT = "short"
    OPEN = "open"
    LOW_CAP = "low_cap"
    HIGH_CAP = "high_cap"
    ACCESS_OPEN = "access_open"
    BRIDGE = "bridge"
    RETENTION = "retention"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Defect kinds whose capacitance shift is parametric and needs ``factor``.
_PARAMETRIC = {DefectKind.LOW_CAP, DefectKind.HIGH_CAP, DefectKind.RETENTION}

#: Small-int codes used by the bulk defect-kind matrices
#: (:meth:`~repro.edram.array.EDRAMArray.defect_kind_matrix`); 0 means
#: "no defect".  Codes follow enum definition order.
KIND_CODES: dict[DefectKind, int] = {
    kind: code for code, kind in enumerate(DefectKind, start=1)
}

#: Inverse of :data:`KIND_CODES`.
CODE_KINDS: dict[int, DefectKind] = {code: kind for kind, code in KIND_CODES.items()}


@dataclass(frozen=True)
class CellDefect:
    """One defect instance attached to a cell.

    ``factor`` is interpreted per kind: the capacitance multiplier for
    LOW_CAP/HIGH_CAP, the leakage multiplier for RETENTION, and ignored
    otherwise.
    """

    kind: DefectKind
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind in _PARAMETRIC and self.factor <= 0:
            raise DefectError(f"{self.kind} defect needs a positive factor, got {self.factor}")
        if self.kind == DefectKind.LOW_CAP and self.factor >= 1.0:
            raise DefectError(f"LOW_CAP factor must be < 1, got {self.factor}")
        if self.kind == DefectKind.HIGH_CAP and self.factor <= 1.0:
            raise DefectError(f"HIGH_CAP factor must be > 1, got {self.factor}")
        if self.kind == DefectKind.RETENTION and self.factor <= 1.0:
            raise DefectError(f"RETENTION factor must be > 1, got {self.factor}")


class DefectInjector:
    """Applies defects to an :class:`~repro.edram.array.EDRAMArray`.

    All placement helpers are deterministic under a seed so experiments
    are reproducible; injected locations are recorded in
    :attr:`injected` as ``(row, col, CellDefect)`` tuples (the ground
    truth that diagnosis benches score against).
    """

    def __init__(self, array: "EDRAMArray", seed: int = 0) -> None:
        self.array = array
        self._rng = np.random.default_rng(seed)
        self.injected: list[tuple[int, int, CellDefect]] = []

    def inject(self, row: int, col: int, defect: CellDefect) -> None:
        """Attach ``defect`` to the cell at (row, col)."""
        cell = self.array.cell(row, col)
        if defect.kind == DefectKind.BRIDGE and col + 1 >= self.array.cols:
            raise DefectError(
                f"BRIDGE at ({row}, {col}) needs a right-hand neighbour "
                f"(array has {self.array.cols} columns)"
            )
        cell.apply_defect(defect)
        self.injected.append((row, col, defect))

    def inject_many(self, defects: Iterable[tuple[int, int, CellDefect]]) -> None:
        """Inject a batch of ``(row, col, defect)`` entries."""
        for row, col, defect in defects:
            self.inject(row, col, defect)

    # ------------------------------------------------------------------
    # Random placement helpers
    # ------------------------------------------------------------------

    def scatter(self, kind: DefectKind, count: int, factor: float = 1.0) -> list[tuple[int, int]]:
        """Place ``count`` defects of one kind at distinct random cells.

        Returns the chosen locations.  Cells that already carry a defect
        are skipped when choosing.
        """
        if count < 0:
            raise DefectError(f"count must be >= 0, got {count}")
        candidates = [
            (r, c)
            for r in range(self.array.rows)
            for c in range(self.array.cols)
            if self.array.cell(r, c).defect is None
            and not (kind == DefectKind.BRIDGE and c + 1 >= self.array.cols)
        ]
        if count > len(candidates):
            raise DefectError(
                f"cannot place {count} defects: only {len(candidates)} healthy cells"
            )
        chosen = self._rng.choice(len(candidates), size=count, replace=False)
        locations = [candidates[int(i)] for i in chosen]
        for row, col in locations:
            self.inject(row, col, CellDefect(kind, factor))
        return locations

    def cluster(
        self,
        kind: DefectKind,
        center: tuple[int, int],
        radius: int,
        factor: float = 1.0,
    ) -> list[tuple[int, int]]:
        """Place one defect kind on every cell within ``radius`` (Chebyshev)
        of ``center`` — models a localized process flaw (particle, scratch).
        """
        if radius < 0:
            raise DefectError(f"radius must be >= 0, got {radius}")
        r0, c0 = center
        locations = []
        for row in range(max(0, r0 - radius), min(self.array.rows, r0 + radius + 1)):
            for col in range(max(0, c0 - radius), min(self.array.cols, c0 + radius + 1)):
                if kind == DefectKind.BRIDGE and col + 1 >= self.array.cols:
                    continue
                if self.array.cell(row, col).defect is None:
                    self.inject(row, col, CellDefect(kind, factor))
                    locations.append((row, col))
        return locations

    def row_stripe(self, kind: DefectKind, row: int, factor: float = 1.0) -> list[tuple[int, int]]:
        """Defect every cell of one row (wordline-level process flaw)."""
        if not 0 <= row < self.array.rows:
            raise DefectError(f"row {row} out of range 0..{self.array.rows - 1}")
        locations = []
        last_col = self.array.cols - (1 if kind == DefectKind.BRIDGE else 0)
        for col in range(last_col):
            if self.array.cell(row, col).defect is None:
                self.inject(row, col, CellDefect(kind, factor))
                locations.append((row, col))
        return locations

    def column_stripe(self, kind: DefectKind, col: int, factor: float = 1.0) -> list[tuple[int, int]]:
        """Defect every cell of one column (bitline-level process flaw)."""
        if not 0 <= col < self.array.cols:
            raise DefectError(f"col {col} out of range 0..{self.array.cols - 1}")
        if kind == DefectKind.BRIDGE and col + 1 >= self.array.cols:
            raise DefectError("cannot bridge the last column")
        locations = []
        for row in range(self.array.rows):
            if self.array.cell(row, col).defect is None:
                self.inject(row, col, CellDefect(kind, factor))
                locations.append((row, col))
        return locations
