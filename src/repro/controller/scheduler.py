"""Test-time accounting for measurement campaigns.

Silicon test time is money (testers bill by the second), so the value of
the paper's structure is bounded by how long the extraction takes.  One
measurement costs one five-phase flow (50 ns nominal, more if the design
stretched the conversion clock), times the dither repeat count, plus a
setup cost whenever the campaign hops to a different macro tile.

The scheduler turns an address strategy into a :class:`TestPlan` with
the full time breakdown and comparisons against alternatives (e.g. the
probe-station baseline, whose per-site cost is half an hour).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.controller.address import AddressGenerator, ScanOrder
from repro.edram.array import EDRAMArray
from repro.errors import MeasurementError
from repro.measure.structure import MeasurementStructure
from repro.units import ns


@dataclass(frozen=True)
class TestPlan:
    """Time breakdown of one measurement campaign.

    All times in seconds.
    """

    __test__ = False  # "Test" prefix is domain language, not a pytest class

    order: ScanOrder
    cells: int
    repeats: int
    flow_time: float
    setup_time: float
    readout_time: float

    @property
    def total_time(self) -> float:
        """Total tester time for the campaign."""
        return self.flow_time + self.setup_time + self.readout_time

    @property
    def time_per_cell(self) -> float:
        """Amortized time per measured cell."""
        return self.total_time / self.cells if self.cells else 0.0

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"{self.order.value:<13} {self.cells:>8} cells x{self.repeats}  "
            f"flow {self.flow_time * 1e6:9.1f} us  setup {self.setup_time * 1e6:7.1f} us  "
            f"readout {self.readout_time * 1e6:7.1f} us  total {self.total_time * 1e6:9.1f} us"
        )


class TestScheduler:
    """Builds :class:`TestPlan` objects for an array + structure pair.

    (`__test__ = False`: the "Test" prefix is silicon-test domain
    language, not a pytest collection hint.)

    Parameters
    ----------
    array, structure:
        The device under test and its embedded structure.
    macro_setup_time:
        Cost of switching the active macro tile (plate bias hand-over,
        register reset), seconds.
    bits_per_code:
        Readout width per code (5 bits covers 0..20; see
        :mod:`repro.controller.stream`).
    readout_clock_hz:
        Serial test-port clock for streaming codes off chip.
    """

    __test__ = False

    def __init__(
        self,
        array: EDRAMArray,
        structure: MeasurementStructure,
        macro_setup_time: float = 100 * ns,
        bits_per_code: int = 5,
        readout_clock_hz: float = 50e6,
    ) -> None:
        if macro_setup_time < 0:
            raise MeasurementError("macro_setup_time must be >= 0")
        if bits_per_code < 1:
            raise MeasurementError("bits_per_code must be >= 1")
        if readout_clock_hz <= 0:
            raise MeasurementError("readout_clock_hz must be positive")
        self.array = array
        self.structure = structure
        self.macro_setup_time = macro_setup_time
        self.bits_per_code = bits_per_code
        self.readout_clock_hz = readout_clock_hz

    def conversion_steps(self, conversion: str, expected_code: int | None = None) -> float:
        """Average phase-5 current steps one measurement spends.

        - ``"full"`` — the paper's flow: the ramp always runs all steps.
        - ``"early_stop"`` — the controller stops the ramp at the OUT
          flip: ``expected_code + 1`` steps on average (full scale for
          never-flipping cells).
        - ``"sar"`` — successive approximation with a binary-weighted
          DAC instead of the thermometer ramp: ``ceil(log2(n + 1))``
          trials regardless of the code.  (A design delta: the paper's
          shift-register ramp cannot jump; SAR needs a binary DAC.)
        """
        n = self.structure.design.num_steps
        if conversion == "full":
            return float(n)
        if conversion == "early_stop":
            code = n // 2 if expected_code is None else expected_code
            if not 0 <= code <= n:
                raise MeasurementError(f"expected_code {code} outside 0..{n}")
            return float(min(code + 1, n))
        if conversion == "sar":
            return float(math.ceil(math.log2(n + 1)))
        raise MeasurementError(f"unknown conversion strategy {conversion!r}")

    def plan(
        self,
        order: ScanOrder = ScanOrder.MACRO_MAJOR,
        repeats: int = 1,
        fraction: float = 0.02,
        seed: int = 0,
        conversion: str = "full",
        expected_code: int | None = None,
    ) -> TestPlan:
        """Build the plan for one strategy.

        ``repeats`` models dithered conversion (R flows per cell);
        ``conversion`` selects the phase-5 strategy (see
        :meth:`conversion_steps`).
        """
        if repeats < 1:
            raise MeasurementError(f"repeats must be >= 1, got {repeats}")
        generator = AddressGenerator(self.array, order, fraction=fraction, seed=seed)
        cells = generator.count
        design = self.structure.design
        setup_phases = 4.0 * design.phase_duration
        convert = self.conversion_steps(conversion, expected_code) * design.step_duration
        flow = cells * repeats * (setup_phases + convert)
        setup = (generator.macro_transitions() + 1) * self.macro_setup_time
        readout = cells * self.bits_per_code / self.readout_clock_hz
        return TestPlan(
            order=order,
            cells=cells,
            repeats=repeats,
            flow_time=flow,
            setup_time=setup,
            readout_time=readout,
        )

    def compare_strategies(self, repeats: int = 1) -> list[TestPlan]:
        """Plans for every strategy, fastest last."""
        plans = [
            self.plan(order, repeats=repeats)
            for order in (
                ScanOrder.FULL_RASTER,
                ScanOrder.MACRO_MAJOR,
                ScanOrder.CHECKERBOARD,
                ScanOrder.SPARSE,
            )
        ]
        return sorted(plans, key=lambda p: -p.total_time)

    def probe_station_equivalent(self, sites: int, seconds_per_site: float = 1800.0) -> float:
        """Time the destructive-probe baseline needs for ``sites`` cells."""
        if sites < 0:
            raise MeasurementError("sites must be >= 0")
        return sites * seconds_per_site

    def speedup_vs_probe(self, plan: TestPlan, seconds_per_site: float = 1800.0) -> float:
        """How many times faster the embedded structure is per cell."""
        if plan.cells == 0:
            return float("inf")
        return seconds_per_site / plan.time_per_cell
