#!/usr/bin/env python3
"""Quickstart: measure every cell of an eDRAM array and read the bitmap.

Walks the library's happy path in five steps:

1. build an eDRAM array (with a little process variation),
2. design a measurement structure for its macro-cell geometry,
3. generate the calibration abacus (the paper's Figure 3),
4. scan the array into an Analog Bitmap,
5. screen the bitmap against a capacitance specification.

Run:  python examples/quickstart.py
"""

from repro import (
    AnalogBitmap,
    ArrayScanner,
    Abacus,
    EDRAMArray,
    SpecificationWindow,
    design_structure,
)
from repro.edram import compose_maps, mismatch_map, uniform_map
from repro.units import fF, to_fF, to_uA

# 1. An array: 64 wordlines x 32 bitlines, plate segmented into 16x2
#    tiles (one embedded measurement structure per tile), with 1 fF of
#    random capacitor mismatch on the 30 fF nominal.
ROWS, COLS = 64, 32
capacitance = compose_maps(
    uniform_map((ROWS, COLS), 30 * fF),
    mismatch_map((ROWS, COLS), 1.0 * fF, seed=42),
)
array = EDRAMArray(
    ROWS, COLS, macro_cols=2, macro_rows=16, capacitance_map=capacitance
)
print(f"array: {ROWS}x{COLS} cells, {array.num_macros} macro tiles")

# 2. Size the structure so 10-55 fF spans the 20-step converter for this
#    tile geometry (C_REF and the DAC step come out of the solver).
structure = design_structure(
    array.tech, rows=16, macro_cols=2, bitline_rows=ROWS
)
print(
    f"designed structure: C_REF = {to_fF(structure.c_ref):.1f} fF, "
    f"dI = {to_uA(structure.design.delta_i):.2f} uA, "
    f"{structure.design.num_steps} steps"
)

# 3. The abacus: code <-> capacitance calibration (paper Figure 3).
abacus = Abacus.for_array(structure, array)
print(
    f"abacus range: {to_fF(abacus.range_floor):.1f} .. "
    f"{to_fF(abacus.range_ceiling):.1f} fF"
)

# 4. Scan all cells -> Analog Bitmap.
scan = ArrayScanner(array, structure).scan()
bitmap = AnalogBitmap(scan, abacus)
print(
    f"scanned {array.num_cells} cells: mean "
    f"{to_fF(bitmap.mean_capacitance()):.2f} fF, sigma "
    f"{to_fF(bitmap.std_capacitance()):.2f} fF"
)

# 5. Screen against a 30 fF +-20 % spec, expressed in the current domain
#    as the paper prescribes.
window = SpecificationWindow.from_capacitance(abacus, 24 * fF, 36 * fF)
failing = bitmap.out_of_spec(window)
print(
    f"spec window: codes {window.code_lo}..{window.code_hi} "
    f"({to_uA(window.current_lo):.1f}..{to_uA(window.current_hi):.1f} uA)"
)
print(f"cells out of spec: {int(failing.sum())} of {array.num_cells}")
