"""Capacitorless 1T (floating-body) backend: retention is the headline.

Models a capacitorless one-transistor DRAM array per "Improvement in
Retention Time of Capacitorless DRAM with Access Transistor"
(arXiv:1910.03907).  The bit is majority-carrier charge stored on the
access transistor's floating body — there is no explicit storage
capacitor, only the small body/junction capacitance (a few fF), and the
junction leakage that drains it is orders of magnitude more damaging
than in a 1T1C cell because there is so little charge to lose.

What that means for the measurement structure:

- **The measurable quantity is still a capacitance.**  At the plate
  terminal the floating body presents its (small) storage capacitance,
  so the paper's charge-share converter measures it directly — the
  structure just has to be *designed* for a 1–8 fF range instead of
  10–55 fF, which :meth:`Capacitorless1TTechnology.measurement_range`
  requests.  The closed-form kernel's algebra is unchanged
  (``uses_kernel = True``).

- **The headline figure of merit is retention time**, ``t_ret =
  (V_written − V_min)·C_body / I_leak``.  The backend derives it from
  the same capacitance/leakage planes the scanner already maintains and
  exports it through :meth:`extra_scalars`, so the run ledger's drift
  charts track retention alongside the measured capacitance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.edram.array import EDRAMArray
from repro.tech.parameters import MosfetParams, TechnologyCard
from repro.technologies.base import CellTechnology
from repro.units import fA, fF, nm

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass


def one_t_technology_card() -> TechnologyCard:
    """Synthetic capacitorless-1T card on the same 0.18 µm platform.

    The "cell capacitance" is the floating-body storage capacitance
    (~4 fF) rather than a deliberate MIM/trench capacitor, and junction
    leakage is set so the nominal retention lands in the low
    milliseconds — the floating-body regime the reference paper's
    access-transistor optimization fights to extend (t_ret =
    1.3 V · 4 fF / 2 pA ≈ 2.6 ms at nominal).
    """
    return TechnologyCard(
        name="floating-body-1t-0.18um",
        vdd=1.8,
        vpp=2.9,
        nmos=MosfetParams(polarity="nmos", vth0=0.45, kp=300e-6, tox=4.0 * nm),
        pmos=MosfetParams(polarity="pmos", vth0=-0.45, kp=75e-6, tox=4.0 * nm),
        cell_capacitance=4.0 * fF,    # floating-body storage capacitance
        cell_cap_sigma=0.4 * fF,
        storage_junction_cap=0.3 * fF,
        bitline_cap_per_cell=0.35 * fF,
        bitline_base_cap=2.0 * fF,
        wordline_cap_per_cell=0.45 * fF,
        plate_parasitic_per_cell=0.08 * fF,
        plate_base_cap=1.5 * fF,
        junction_leak_per_cell=2000.0 * fA,
        retention_target_s=2e-3,      # low milliseconds, not tens of ms
    )


class Body1TArray(EDRAMArray):
    """Array of capacitorless 1T cells (floating-body storage).

    Electrically identical to :class:`EDRAMArray` at the measurement
    terminals — the body capacitance and junction leakage planes are the
    netlist stamps — plus a vectorized :meth:`retention_time_map` over
    those planes, mirroring :meth:`repro.edram.cell.DRAMCell.retention_time`
    cell-by-cell.
    """

    technology = "1t"

    def __init__(
        self,
        rows: int,
        cols: int,
        tech: TechnologyCard | None = None,
        macro_cols: int = 2,
        macro_rows: int | None = None,
        capacitance_map: np.ndarray | None = None,
        leak_map: np.ndarray | None = None,
    ) -> None:
        super().__init__(
            rows, cols,
            tech=tech if tech is not None else one_t_technology_card(),
            macro_cols=macro_cols, macro_rows=macro_rows,
            capacitance_map=capacitance_map, leak_map=leak_map,
        )

    def retention_time_map(
        self, v_written: float | None = None, v_min: float = 0.5
    ) -> np.ndarray:
        """Per-cell retention time in seconds, shape ``(rows, cols)``.

        ``t_ret = (V_written − V_min)·C/I_leak`` over the bulk planes;
        cells with zero leakage report ``inf``.  Defaults mirror
        :meth:`DRAMCell.retention_time` (written to VDD, readable down
        to ``v_min``).
        """
        if v_written is None:
            v_written = self.tech.vdd
        charge = (v_written - v_min) * self.capacitance_view()
        leak = self.leak_view()
        return np.divide(
            charge, leak, out=np.full_like(charge, np.inf), where=leak > 0.0
        )


class Capacitorless1TTechnology(CellTechnology):
    """Capacitorless 1T floating-body backend (arXiv:1910.03907)."""

    name = "1t"
    display = "capacitorless 1T floating-body array (retention-limited)"
    headline = "retention"
    reference = "arXiv:1910.03907"
    uses_kernel = True
    mismatch_sigma = 0.3 * fF

    def base_card(self) -> TechnologyCard:
        return one_t_technology_card()

    def array_class(self) -> type:
        return Body1TArray

    def build_array(
        self,
        rows: int,
        cols: int,
        *,
        macro_rows: int | None = None,
        macro_cols: int = 2,
        seed: int = 0,
        nominal: float | None = None,
        with_defects: bool = False,
        tech: TechnologyCard | None = None,
    ) -> Body1TArray:
        from repro.edram.variation_map import (
            compose_maps,
            mismatch_map,
            uniform_map,
        )

        card = tech if tech is not None else self.base_card()
        if nominal is None:
            nominal = card.cell_capacitance
        shape = (rows, cols)
        capacitance = compose_maps(
            uniform_map(shape, nominal),
            mismatch_map(shape, self.mismatch_sigma, seed=seed),
            floor=0.5 * fF,
        )
        # Leakage mismatch dominates retention spread in floating-body
        # cells; a lognormal-ish positive skew from a second seed.
        rng = np.random.default_rng(seed + 104729)
        leak = card.junction_leak_per_cell * np.exp(
            rng.normal(0.0, 0.35, size=shape)
        )
        array = Body1TArray(
            rows, cols, tech=card, macro_cols=macro_cols,
            macro_rows=macro_rows, capacitance_map=capacitance,
            leak_map=leak,
        )
        if with_defects:
            self.inject_defects(array, seed)
        return array

    def fabricate_die(
        self,
        rows: int,
        cols: int,
        *,
        macro_rows: int,
        macro_cols: int,
        mean: float,
        cell_sigma: float,
        mismatch_seed: int,
        tech: TechnologyCard | None = None,
    ) -> Body1TArray:
        from repro.edram.variation_map import (
            compose_maps,
            mismatch_map,
            uniform_map,
        )

        card = tech if tech is not None else self.base_card()
        shape = (rows, cols)
        capacitance = compose_maps(
            uniform_map(shape, max(mean, 1.0 * fF)),
            mismatch_map(shape, cell_sigma, seed=mismatch_seed),
            floor=0.5 * fF,
        )
        rng = np.random.default_rng(mismatch_seed + 104729)
        leak = card.junction_leak_per_cell * np.exp(
            rng.normal(0.0, 0.35, size=shape)
        )
        return Body1TArray(
            rows, cols, tech=card, macro_cols=macro_cols,
            macro_rows=macro_rows, capacitance_map=capacitance,
            leak_map=leak,
        )

    def measurement_range(self) -> tuple[float, float, int]:
        # Floating-body capacitances are a few fF; the converter must be
        # sized for 1–8 fF or every healthy cell saturates the low bin.
        return (1.0 * fF, 8.0 * fF, 20)

    def spec_window(self) -> tuple[float, float]:
        # ±25% of the 4 fF body capacitance — retention is so sensitive
        # to C_body that a slightly wider relative window than eDRAM's
        # still maps to a tight retention spec.
        return (3.0 * fF, 5.0 * fF)

    def extra_scalars(self, array: EDRAMArray) -> dict[str, float]:
        if not isinstance(array, Body1TArray):
            return {}
        retention = array.retention_time_map()
        finite = retention[np.isfinite(retention)]
        if finite.size == 0:
            return {"retention_mean_us": float("inf")}
        return {
            "retention_mean_us": float(finite.mean() * 1e6),
            "retention_min_us": float(finite.min() * 1e6),
            "retention_below_target_frac": float(
                np.mean(retention < array.tech.retention_target_s)
            ),
        }
