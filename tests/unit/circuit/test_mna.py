"""Direct tests of the MNA assembly layer."""

import numpy as np
import pytest

from repro.circuit.elements import Resistor, VoltageSource
from repro.circuit.mna import MnaSystem, StampContext
from repro.circuit.netlist import Circuit
from repro.errors import SingularCircuitError


@pytest.fixture()
def system():
    ckt = Circuit()
    ckt.add(VoltageSource("V1", "a", "0", 1.0))
    ckt.add(Resistor("R1", "a", "b", 2.0))
    ckt.add(Resistor("R2", "b", "0", 2.0))
    return MnaSystem(ckt)


class TestLayout:
    def test_size_is_nodes_plus_branches(self, system):
        assert system.num_nodes == 2
        assert system.size == 3  # two voltages + one source branch

    def test_branch_index_assignment(self, system):
        assert system.branch_index("V1") == 2


class TestStamps:
    def test_conductance_stamp_is_symmetric(self, system):
        system.reset()
        ia = system.circuit.node_index("a")
        ib = system.circuit.node_index("b")
        system.add_conductance(ia, ib, 0.5)
        m = system.matrix
        assert m[ia, ia] == m[ib, ib] == 0.5
        assert m[ia, ib] == m[ib, ia] == -0.5

    def test_conductance_to_ground_touches_one_row(self, system):
        system.reset()
        ia = system.circuit.node_index("a")
        system.add_conductance(ia, -1, 0.25)
        assert system.matrix[ia, ia] == 0.25
        assert np.count_nonzero(system.matrix) == 1

    def test_current_injection(self, system):
        system.reset()
        ia = system.circuit.node_index("a")
        system.add_current(ia, 1e-3)
        system.add_current(-1, 5.0)  # into ground: discarded
        assert system.rhs[ia] == 1e-3
        assert np.count_nonzero(system.rhs) == 1

    def test_transconductance_stamp(self, system):
        system.reset()
        ia = system.circuit.node_index("a")
        ib = system.circuit.node_index("b")
        system.add_transconductance(ia, ib, ib, -1, gm=2.0)
        # Current 2*(v_b) flows from a to b.
        assert system.matrix[ia, ib] == 2.0
        assert system.matrix[ib, ib] == -2.0

    def test_voltage_source_stamp(self, system):
        system.reset()
        ia = system.circuit.node_index("a")
        branch = system.branch_index("V1")
        system.stamp_voltage_source(branch, ia, -1, 1.5)
        assert system.matrix[ia, branch] == 1.0
        assert system.matrix[branch, ia] == 1.0
        assert system.rhs[branch] == 1.5


class TestAssembleSolve:
    def test_full_solve_matches_divider(self, system):
        ctx = StampContext(v_iter=np.zeros(2))
        system.assemble(ctx)
        x = system.solve()
        a = system.circuit.node_index("a")
        b = system.circuit.node_index("b")
        assert x[a] == pytest.approx(1.0, rel=1e-9)
        assert x[b] == pytest.approx(0.5, rel=1e-9)
        # Branch current: 1 V across 4 ohms, flowing out of the source.
        assert x[system.branch_index("V1")] == pytest.approx(-0.25, rel=1e-6)

    def test_gmin_pins_floating_nodes(self):
        ckt = Circuit()
        ckt.add(Resistor("R", "x", "y", 1.0))  # fully floating pair
        system = MnaSystem(ckt)
        system.assemble(StampContext(v_iter=np.zeros(2), gmin=1e-12))
        x = system.solve()
        assert np.allclose(x, 0.0)

    def test_singular_without_gmin_raises(self):
        ckt = Circuit()
        ckt.add(Resistor("R", "x", "y", 1.0))
        system = MnaSystem(ckt)
        system.assemble(StampContext(v_iter=np.zeros(2), gmin=0.0))
        with pytest.raises(SingularCircuitError):
            system.solve()


class TestContext:
    def test_voltage_helper(self):
        ctx = StampContext(v_iter=np.array([1.0, 2.0]), v_prev=np.array([0.5, 0.7]))
        assert ctx.voltage(0) == 1.0
        assert ctx.voltage(1, "prev") == 0.7
        assert ctx.voltage(-1) == 0.0  # ground

    def test_missing_vectors_read_zero(self):
        ctx = StampContext()
        assert ctx.voltage(0) == 0.0
        assert ctx.voltage(3, "prev") == 0.0
