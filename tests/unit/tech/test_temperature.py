"""Temperature behaviour of devices and the technology card."""

import pytest

from repro.circuit.mosfet import Mosfet
from repro.errors import TechnologyError
from repro.units import fA, um


class TestMosfetParams:
    def test_nominal_temperature_is_identity(self, tech):
        assert tech.nmos.vth_eff == pytest.approx(tech.nmos.vth0)
        assert tech.nmos.kp_eff == pytest.approx(tech.nmos.kp)

    def test_threshold_drops_when_hot(self, tech):
        hot = tech.nmos.with_temperature(398.15)  # 125 C
        assert abs(hot.vth_eff) < abs(tech.nmos.vth0)
        assert hot.vth_eff == pytest.approx(tech.nmos.vth0 - 98 * 1e-3, abs=1e-3)

    def test_pmos_threshold_magnitude_drops_when_hot(self, tech):
        hot = tech.pmos.with_temperature(398.15)
        assert abs(hot.vth_eff) < abs(tech.pmos.vth0)
        assert hot.vth_eff < 0  # polarity preserved

    def test_threshold_magnitude_clamped(self, tech):
        inferno = tech.nmos.with_temperature(1000.0)
        assert abs(inferno.vth_eff) == pytest.approx(0.05)

    def test_mobility_falls_when_hot(self, tech):
        hot = tech.nmos.with_temperature(398.15)
        assert hot.kp_eff < tech.nmos.kp
        assert hot.kp_eff == pytest.approx(
            tech.nmos.kp * (398.15 / 300.15) ** -1.5, rel=1e-9
        )

    def test_with_temperature_validation(self, tech):
        with pytest.raises(TechnologyError):
            tech.nmos.with_temperature(0.0)


class TestMosfetCurrents:
    def test_strong_inversion_current_falls_when_hot(self, tech):
        # Deep strong inversion: mobility loss dominates the vth gain.
        cold = Mosfet("M", "d", "g", "s", tech.nmos.with_temperature(233.15),
                      w=1 * um, l=0.2 * um)
        hot = Mosfet("M", "d", "g", "s", tech.nmos.with_temperature(398.15),
                     w=1 * um, l=0.2 * um)
        assert hot.ids(1.8, 1.8, 0.0) < cold.ids(1.8, 1.8, 0.0)

    def test_subthreshold_leak_rises_when_hot(self, tech):
        cold = Mosfet("M", "d", "g", "s", tech.nmos.with_temperature(233.15),
                      w=1 * um, l=0.2 * um)
        hot = Mosfet("M", "d", "g", "s", tech.nmos.with_temperature(398.15),
                     w=1 * um, l=0.2 * um)
        assert hot.ids(1.8, 0.2, 0.0) > 100 * cold.ids(1.8, 0.2, 0.0)


class TestTechnologyCard:
    def test_at_temperature_rebiases_everything(self, tech):
        hot = tech.at_temperature(358.15)  # 85 C
        assert hot.temperature_k == pytest.approx(358.15)
        assert hot.nmos.temperature_k == pytest.approx(358.15)
        assert hot.pmos.temperature_k == pytest.approx(358.15)
        assert hot.junction_leak_per_cell > tech.junction_leak_per_cell
        assert "85C" in hot.name

    def test_junction_leak_doubles_every_ten_kelvin(self, tech):
        assert tech.junction_leak_at(310.15) == pytest.approx(
            2 * tech.junction_leak_per_cell
        )
        assert tech.junction_leak_at(280.15) == pytest.approx(
            tech.junction_leak_per_cell / 4
        )

    def test_validation(self, tech):
        with pytest.raises(TechnologyError):
            tech.at_temperature(-5.0)
        with pytest.raises(TechnologyError):
            tech.junction_leak_at(0.0)

    def test_retention_collapses_when_hot(self, tech):
        from repro.edram.array import EDRAMArray
        from repro.edram.leakage import RetentionModel

        model = RetentionModel(v_write=1.8, v_min=0.9)
        cold_time, _ = model.worst_retention(EDRAMArray(2, 2, tech=tech))
        hot_time, _ = model.worst_retention(
            EDRAMArray(2, 2, tech=tech.at_temperature(358.15))
        )
        assert hot_time < cold_time / 30


class TestMeasurementUnderTemperature:
    def test_code_drift_is_small(self, tech, structure_2x2):
        """The conversion is first-order temperature-compensated.

        V_TH drop and mobility loss pull the REF sink current in opposite
        directions, so the code at 30 fF moves by at most a couple of
        steps across the industrial range.
        """
        from repro.edram.array import EDRAMArray
        from repro.measure.sequencer import MeasurementSequencer
        from repro.measure.structure import MeasurementStructure

        codes = {}
        for celsius in (-40, 27, 125):
            card = tech.at_temperature(273.15 + celsius)
            array = EDRAMArray(2, 2, tech=card)
            structure = MeasurementStructure(card, structure_2x2.design)
            codes[celsius] = MeasurementSequencer(
                array.macro(0), structure
            ).measure_charge(0, 0).code
        assert abs(codes[-40] - codes[27]) <= 2
        assert abs(codes[125] - codes[27]) <= 2
        # Colder -> stronger REF -> weakly higher code.
        assert codes[-40] >= codes[125]
