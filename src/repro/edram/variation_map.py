"""Spatially correlated per-cell capacitance map generators.

The analog-bitmap diagnosis methodology of the paper exists to make
process signatures visible: deposition tilt across a die, edge roll-off
of the capacitor etch, particle-induced clusters, and random mismatch.
Each generator here produces one such component as a ``(rows, cols)``
numpy array in farads (or an additive delta); :func:`compose_maps` sums
components onto a base.

All generators are deterministic under a seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ArrayConfigError
from repro.units import fF


def _check_shape(shape: tuple[int, int]) -> tuple[int, int]:
    rows, cols = shape
    if rows < 1 or cols < 1:
        raise ArrayConfigError(f"map shape must be at least 1x1, got {shape}")
    return rows, cols


def uniform_map(shape: tuple[int, int], value: float) -> np.ndarray:
    """Constant capacitance everywhere (the defect-free ideal)."""
    rows, cols = _check_shape(shape)
    if value <= 0:
        raise ArrayConfigError(f"uniform value must be positive, got {value}")
    return np.full((rows, cols), float(value))


def mismatch_map(shape: tuple[int, int], sigma: float, seed: int = 0) -> np.ndarray:
    """Additive white Gaussian mismatch with standard deviation ``sigma``."""
    rows, cols = _check_shape(shape)
    if sigma < 0:
        raise ArrayConfigError(f"sigma must be >= 0, got {sigma}")
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, sigma, size=(rows, cols))


def linear_tilt_map(
    shape: tuple[int, int], row_slope: float = 0.0, col_slope: float = 0.0
) -> np.ndarray:
    """Additive linear gradient: ``row_slope``/``col_slope`` farads per cell.

    Models deposition-thickness tilt across the die; the map is centred
    (zero mean) so the nominal value stays the array average.
    """
    rows, cols = _check_shape(shape)
    r = np.arange(rows) - (rows - 1) / 2.0
    c = np.arange(cols) - (cols - 1) / 2.0
    return row_slope * r[:, None] + col_slope * c[None, :]


def radial_map(shape: tuple[int, int], amplitude: float) -> np.ndarray:
    """Additive radial bowl/dome centred on the array.

    ``amplitude`` is the corner-to-centre difference in farads (positive:
    dome — centre thicker; negative: bowl).  Models radially non-uniform
    etch/deposition.
    """
    rows, cols = _check_shape(shape)
    r = (np.arange(rows) - (rows - 1) / 2.0) / max((rows - 1) / 2.0, 1.0)
    c = (np.arange(cols) - (cols - 1) / 2.0) / max((cols - 1) / 2.0, 1.0)
    rr, cc = np.meshgrid(r, c, indexing="ij")
    radius_sq = (rr**2 + cc**2) / 2.0  # 1.0 at the corners
    return amplitude * (1.0 - radius_sq)


def edge_rolloff_map(shape: tuple[int, int], depth: float, width: int = 2) -> np.ndarray:
    """Subtractive roll-off within ``width`` cells of the array edge.

    Capacitor modules commonly lose capacitance at array boundaries
    (loading effects); ``depth`` is the loss at the outermost ring,
    decaying linearly to zero ``width`` cells in.
    """
    rows, cols = _check_shape(shape)
    if depth < 0:
        raise ArrayConfigError(f"depth must be >= 0, got {depth}")
    if width < 1:
        raise ArrayConfigError(f"width must be >= 1, got {width}")
    r = np.arange(rows)
    c = np.arange(cols)
    dist_r = np.minimum(r, rows - 1 - r)
    dist_c = np.minimum(c, cols - 1 - c)
    dist = np.minimum(dist_r[:, None], dist_c[None, :])
    falloff = np.clip(1.0 - dist / width, 0.0, 1.0)
    return -depth * falloff


def cluster_defect_map(
    shape: tuple[int, int],
    center: tuple[int, int],
    radius: float,
    depth: float,
) -> np.ndarray:
    """Additive Gaussian dip of ``depth`` farads at ``center``.

    Models a particle or local process flaw degrading nearby capacitors;
    ``radius`` is the 1σ extent in cells.
    """
    rows, cols = _check_shape(shape)
    if radius <= 0:
        raise ArrayConfigError(f"radius must be positive, got {radius}")
    r0, c0 = center
    rr, cc = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    dist_sq = (rr - r0) ** 2 + (cc - c0) ** 2
    return -depth * np.exp(-dist_sq / (2.0 * radius**2))


def compose_maps(base: np.ndarray, *deltas: np.ndarray, floor: float = 1.0 * fF) -> np.ndarray:
    """Sum additive components onto a base map, clamping at ``floor``.

    The floor keeps pathological compositions physical (a capacitor
    cannot go non-positive); real sub-floor cells should be modelled as
    defects instead.
    """
    result = np.array(base, dtype=float, copy=True)
    for delta in deltas:
        if delta.shape != base.shape:
            raise ArrayConfigError(
                f"component shape {delta.shape} does not match base {base.shape}"
            )
        result += delta
    return np.maximum(result, floor)
