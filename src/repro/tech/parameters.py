"""Device and technology parameter cards.

Two dataclasses live here:

- :class:`MosfetParams` — a level-1 (Shichman-Hodges) MOSFET parameter set
  extended with an exponential subthreshold region, enough physics for the
  charge-sharing and current-ramp behaviour the paper relies on.
- :class:`TechnologyCard` — the full synthetic "design kit": supply rails,
  the n/p device cards, eDRAM cell and parasitic capacitances, and leakage.

All values are in base SI units (see :mod:`repro.units`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import TechnologyError
from repro.units import EPS0, EPS_SIO2, fF, nm, um, fA


@dataclass(frozen=True)
class MosfetParams:
    """Level-1 MOSFET parameters with subthreshold extension.

    Parameters
    ----------
    polarity:
        ``"nmos"`` or ``"pmos"``.
    vth0:
        Zero-bias threshold voltage in volts.  Positive for n-MOS,
        negative for p-MOS (SPICE convention).
    kp:
        Process transconductance ``µ·C_ox`` in A/V².
    lambda_:
        Channel-length modulation in 1/V.
    gamma:
        Body-effect coefficient in V^0.5 (applied when the source rises
        above the bulk for n-MOS).
    phi:
        Surface potential ``2·φ_F`` in volts, used with ``gamma``.
    tox:
        Gate-oxide thickness in metres (sets the gate capacitance).
    n_sub:
        Subthreshold slope factor (typically 1.3–1.6).
    i_off:
        Leakage floor per µm of width at V_GS = 0, in amperes
        (keeps the device matrix non-singular and models off-state leak).
    """

    polarity: str
    vth0: float
    kp: float
    lambda_: float = 0.06
    gamma: float = 0.4
    phi: float = 0.7
    tox: float = 4.0 * nm
    n_sub: float = 1.45
    i_off: float = 5.0 * fA
    temperature_k: float = 300.15
    vth_tc: float = 1.0e-3  # |V_TH| decrease per kelvin
    mobility_exponent: float = -1.5  # kp ~ (T/T0)^exponent

    def __post_init__(self) -> None:
        if self.polarity not in ("nmos", "pmos"):
            raise TechnologyError(f"polarity must be 'nmos' or 'pmos', got {self.polarity!r}")
        if self.kp <= 0:
            raise TechnologyError(f"kp must be positive, got {self.kp}")
        if self.tox <= 0:
            raise TechnologyError(f"tox must be positive, got {self.tox}")
        if self.polarity == "nmos" and self.vth0 <= 0:
            raise TechnologyError(f"n-MOS vth0 must be positive, got {self.vth0}")
        if self.polarity == "pmos" and self.vth0 >= 0:
            raise TechnologyError(f"p-MOS vth0 must be negative, got {self.vth0}")

    @property
    def cox(self) -> float:
        """Gate-oxide capacitance per unit area, F/m²."""
        return EPS0 * EPS_SIO2 / self.tox

    def gate_capacitance(self, width: float, length: float) -> float:
        """Total gate capacitance ``C_ox·W·L`` in farads for a device geometry."""
        if width <= 0 or length <= 0:
            raise TechnologyError(f"device W={width}, L={length} must be positive")
        return self.cox * width * length

    def beta(self, width: float, length: float) -> float:
        """Device transconductance factor ``kp·W/L`` in A/V²."""
        if width <= 0 or length <= 0:
            raise TechnologyError(f"device W={width}, L={length} must be positive")
        return self.kp * width / length

    # ------------------------------------------------------------------
    # Temperature behaviour
    #
    # ``vth0``/``kp`` are specified at the SPICE nominal 300.15 K; the
    # effective values below apply the card's evaluation temperature:
    # |V_TH| drops ~1 mV/K and mobility follows (T/T0)^-1.5.  The device
    # model consumes only the *_eff properties, so re-biasing a whole
    # card is a single `with_temperature` away.
    # ------------------------------------------------------------------

    @property
    def _dtemp(self) -> float:
        from repro.units import T_NOMINAL

        return self.temperature_k - T_NOMINAL

    @property
    def vth_eff(self) -> float:
        """Signed threshold at the evaluation temperature."""
        magnitude = max(0.05, abs(self.vth0) - self.vth_tc * self._dtemp)
        return magnitude if self.polarity == "nmos" else -magnitude

    @property
    def kp_eff(self) -> float:
        """Transconductance at the evaluation temperature."""
        from repro.units import T_NOMINAL

        return self.kp * (self.temperature_k / T_NOMINAL) ** self.mobility_exponent

    def beta_eff(self, width: float, length: float) -> float:
        """Temperature-corrected ``kp_eff·W/L`` in A/V²."""
        if width <= 0 or length <= 0:
            raise TechnologyError(f"device W={width}, L={length} must be positive")
        return self.kp_eff * width / length

    def with_temperature(self, temperature_k: float) -> "MosfetParams":
        """Copy of this card evaluated at ``temperature_k``."""
        if temperature_k <= 0:
            raise TechnologyError(f"temperature must be positive, got {temperature_k}")
        return replace(self, temperature_k=temperature_k)

    def with_shift(self, *, dvth: float = 0.0, kp_scale: float = 1.0) -> "MosfetParams":
        """Return a copy with a threshold shift and/or transconductance scaling.

        ``dvth`` moves ``|vth0|`` (a positive shift makes either polarity
        *slower*); ``kp_scale`` multiplies ``kp``.
        """
        sign = 1.0 if self.polarity == "nmos" else -1.0
        return replace(self, vth0=self.vth0 + sign * dvth, kp=self.kp * kp_scale)


@dataclass(frozen=True)
class TechnologyCard:
    """Synthetic 0.18 µm eDRAM technology card.

    Substitutes for the ST-Microelectronics design kit used in the paper
    (see DESIGN.md §2).  Every quantity the simulator, the array model and
    the measurement structure need is collected here so that corner and
    Monte-Carlo experiments can swap a single object.

    Notes on eDRAM-specific entries:

    - ``cell_capacitance``: nominal storage capacitance, 30 fF per the paper.
    - ``vpp``: boosted wordline level; high enough to pass a full V_DD
      through the n-MOS access transistor (V_DD + V_TH + margin).
    - ``bitline_capacitance``: parasitic bitline capacitance for a full
      column; this is the "capacitance noise" the paper's plate-node
      connection avoids.
    - ``plate_parasitic``: stray capacitance of the shared plate node of
      one macro-cell (wiring + well), charged alongside C_m and therefore
      part of what the abacus calibrates out.
    - ``storage_junction_cap``: source/drain junction capacitance at a
      cell's storage node; sets the (small) series load that unselected
      cells present to the plate.
    """

    name: str = "generic-0.18um-edram"
    vdd: float = 1.8
    vpp: float = 2.9
    temperature_k: float = 300.15
    nmos: MosfetParams = field(
        default_factory=lambda: MosfetParams(polarity="nmos", vth0=0.45, kp=300e-6)
    )
    pmos: MosfetParams = field(
        default_factory=lambda: MosfetParams(polarity="pmos", vth0=-0.45, kp=75e-6)
    )
    # eDRAM cell
    cell_capacitance: float = 30.0 * fF
    cell_cap_sigma: float = 1.0 * fF
    storage_junction_cap: float = 0.6 * fF
    access_w: float = 0.28 * um
    access_l: float = 0.18 * um
    # Interconnect parasitics
    bitline_cap_per_cell: float = 0.35 * fF
    bitline_base_cap: float = 2.0 * fF
    wordline_cap_per_cell: float = 0.45 * fF
    plate_parasitic_per_cell: float = 0.08 * fF
    plate_base_cap: float = 1.5 * fF
    # Leakage
    junction_leak_per_cell: float = 1.0 * fA
    retention_target_s: float = 64e-3

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise TechnologyError(f"vdd must be positive, got {self.vdd}")
        if self.vpp < self.vdd:
            raise TechnologyError(
                f"vpp ({self.vpp} V) must be at least vdd ({self.vdd} V) "
                "to pass a full level through the access transistor"
            )
        if self.cell_capacitance <= 0:
            raise TechnologyError("cell_capacitance must be positive")
        if self.nmos.polarity != "nmos" or self.pmos.polarity != "pmos":
            raise TechnologyError("nmos/pmos cards have swapped polarities")

    @property
    def half_vdd(self) -> float:
        """The V_DD/2 plate bias / inverter threshold reference, volts."""
        return self.vdd / 2.0

    def bitline_capacitance(self, rows: int) -> float:
        """Parasitic capacitance of a bitline spanning ``rows`` cells, farads."""
        if rows < 0:
            raise TechnologyError(f"rows must be non-negative, got {rows}")
        return self.bitline_base_cap + rows * self.bitline_cap_per_cell

    def plate_parasitic(self, cells: int) -> float:
        """Stray plate-node capacitance for a macro-cell of ``cells`` cells."""
        if cells < 0:
            raise TechnologyError(f"cells must be non-negative, got {cells}")
        return self.plate_base_cap + cells * self.plate_parasitic_per_cell

    def access_transistor_beta(self) -> float:
        """β of the cell access transistor, A/V²."""
        return self.nmos.beta(self.access_w, self.access_l)

    def with_devices(self, nmos: MosfetParams, pmos: MosfetParams) -> "TechnologyCard":
        """Return a copy of this card with replacement device parameter sets."""
        return replace(self, nmos=nmos, pmos=pmos)

    def junction_leak_at(self, temperature_k: float | None = None) -> float:
        """Per-cell junction leakage at a temperature, amperes.

        DRAM junction leakage roughly doubles every 10 K; the card's base
        value is specified at the nominal 300.15 K.
        """
        from repro.units import T_NOMINAL

        t = self.temperature_k if temperature_k is None else temperature_k
        if t <= 0:
            raise TechnologyError(f"temperature must be positive, got {t}")
        return self.junction_leak_per_cell * 2.0 ** ((t - T_NOMINAL) / 10.0)

    def at_temperature(self, temperature_k: float) -> "TechnologyCard":
        """Copy of this card evaluated at ``temperature_k``.

        Re-biases both device cards, scales the junction leakage
        (doubling every 10 K) and tags the name, so downstream consumers
        (arrays, structures, abaci) see a consistent environment.
        """
        if temperature_k <= 0:
            raise TechnologyError(f"temperature must be positive, got {temperature_k}")
        return replace(
            self,
            name=f"{self.name}@{temperature_k - 273.15:.0f}C",
            temperature_k=temperature_k,
            nmos=self.nmos.with_temperature(temperature_k),
            pmos=self.pmos.with_temperature(temperature_k),
            junction_leak_per_cell=self.junction_leak_at(temperature_k),
        )


def default_technology() -> TechnologyCard:
    """Return the nominal (typical-typical) 0.18 µm eDRAM technology card."""
    return TechnologyCard()


def technology_013um() -> TechnologyCard:
    """A scaled 0.13 µm eDRAM card (portability check, not the paper's node).

    Public-domain-typical 0.13 µm values: V_DD = 1.2 V, thinner oxide,
    lower thresholds, smaller cells with a slightly smaller capacitor
    (trench/stack capacitance does not scale with lithography, which is
    exactly why eDRAM capacitor monitoring stays hard node over node).
    The library's design solver must adapt the structure to this card
    without code changes — pinned in tests.
    """
    return TechnologyCard(
        name="generic-0.13um-edram",
        vdd=1.2,
        vpp=2.1,
        nmos=MosfetParams(polarity="nmos", vth0=0.34, kp=430e-6, tox=2.2 * nm),
        pmos=MosfetParams(polarity="pmos", vth0=-0.34, kp=110e-6, tox=2.2 * nm),
        cell_capacitance=25.0 * fF,
        cell_cap_sigma=1.2 * fF,
        storage_junction_cap=0.45 * fF,
        access_w=0.20 * um,
        access_l=0.13 * um,
        bitline_cap_per_cell=0.28 * fF,
        bitline_base_cap=1.6 * fF,
        wordline_cap_per_cell=0.36 * fF,
        plate_parasitic_per_cell=0.06 * fF,
        plate_base_cap=1.2 * fF,
        junction_leak_per_cell=2.0 * fA,
        retention_target_s=32e-3,
    )
