"""Metrics instruments, registry, and the ambient-registry mechanism."""

import io
import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_metrics,
    use_metrics,
)


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter("hits")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_counter_rejects_decrease(self):
        with pytest.raises(ObservabilityError):
            Counter("hits").inc(-1)

    def test_gauge_keeps_last_value(self):
        g = Gauge("jobs")
        g.set(4)
        g.set(2)
        assert g.value == 2.0

    def test_histogram_statistics(self):
        h = Histogram("codes")
        h.observe_many([1, 2, 3, 4])
        h.observe(10)
        assert h.count == 5
        assert h.sum == 20
        assert h.min == 1
        assert h.max == 10
        assert h.mean == pytest.approx(4.0)
        assert h.percentile(50) == 3
        assert h.percentile(0) == 1
        assert h.percentile(100) == 10

    def test_histogram_empty_statistics_are_nan(self):
        import math

        h = Histogram("empty")
        assert h.count == 0
        assert math.isnan(h.mean)
        assert math.isnan(h.percentile(95))

    def test_histogram_percentile_range_checked(self):
        with pytest.raises(ObservabilityError):
            Histogram("codes").percentile(101)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("scan.cells") is reg.counter("scan.cells")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ObservabilityError):
            reg.gauge("x")

    def test_empty_name_rejected(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().counter("")

    def test_iteration_is_name_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zeta")
        reg.gauge("alpha")
        assert [m.name for m in reg] == ["alpha", "zeta"]
        assert len(reg) == 2

    def test_get_by_name(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        assert reg.get("hits") is c
        assert reg.get("absent") is None

    def test_to_dict_shape(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3)
        reg.histogram("codes").observe_many([1, 2])
        d = reg.to_dict()
        assert d["hits"] == {"kind": "counter", "name": "hits", "value": 3.0}
        assert d["codes"]["count"] == 2
        assert d["codes"]["p50"] in (1, 2)
        assert {"p50", "p95", "p99"} <= set(d["codes"])
        assert d["codes"]["p99"] == 2

    def test_write_jsonl(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.gauge("jobs").set(2)
        buf = io.StringIO()
        reg.write_jsonl(buf)
        records = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert [r["name"] for r in records] == ["hits", "jobs"]

    def test_write_jsonl_to_path(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        target = tmp_path / "metrics.jsonl"
        reg.write_jsonl(str(target))
        assert json.loads(target.read_text())["name"] == "hits"

    def test_summary_table(self):
        reg = MetricsRegistry()
        reg.counter("scan.cells").inc(32)
        reg.histogram("scan.codes").observe_many([3, 5])
        table = reg.summary_table()
        assert "scan.cells" in table
        assert "counter" in table
        assert "count=2" in table
        for column in ("p50=", "p95=", "p99="):
            assert column in table

    def test_summary_table_empty(self):
        assert "no metrics" in MetricsRegistry().summary_table()


class TestNullRegistry:
    def test_discards_updates(self):
        NULL_METRICS.counter("x").inc(5)
        NULL_METRICS.gauge("y").set(3)
        NULL_METRICS.histogram("z").observe_many([1, 2])
        assert NULL_METRICS.counter("x").value == 0.0
        assert NULL_METRICS.histogram("z").count == 0

    def test_enabled_flags(self):
        assert MetricsRegistry().enabled is True
        assert NULL_METRICS.enabled is False


class TestAmbientRegistry:
    def test_default_is_null(self):
        assert active_metrics() is NULL_METRICS

    def test_use_metrics_installs_and_restores(self):
        reg = MetricsRegistry()
        with use_metrics(reg):
            assert active_metrics() is reg
            active_metrics().counter("deep.hits").inc()
        assert active_metrics() is NULL_METRICS
        assert reg.counter("deep.hits").value == 1.0

    def test_nested_blocks_shadow(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with use_metrics(outer):
            with use_metrics(inner):
                assert active_metrics() is inner
            assert active_metrics() is outer

    def test_restored_after_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with use_metrics(reg):
                raise RuntimeError("boom")
        assert active_metrics() is NULL_METRICS


class TestMergeSemantics:
    """Merging metric shards shipped back from pool workers."""

    def test_counters_sum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("scan.cells").inc(10)
        b.counter("scan.cells").inc(32)
        b.counter("scan.runs").inc()
        a.merge(b)
        assert a.counter("scan.cells").value == 42.0
        assert a.counter("scan.runs").value == 1.0

    def test_gauge_last_writer_wins_by_timestamp(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("scan.jobs").set(4)       # earlier perf_counter stamp
        b.gauge("scan.jobs").set(2)       # later stamp wins
        a.merge(b)
        assert a.gauge("scan.jobs").value == 2.0

    def test_gauge_older_shard_does_not_overwrite(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.gauge("scan.jobs").set(2)
        a.gauge("scan.jobs").set(4)       # a now has the later stamp
        a.merge(b)
        assert a.gauge("scan.jobs").value == 4.0

    def test_gauge_timestamp_tie_breaks_on_value(self):
        # Exact-equal stamps (possible across forked processes sharing
        # one CLOCK_MONOTONIC origin) must resolve the same regardless
        # of merge order: the larger value wins.
        shipped_lo = [("g", "pool.rss", 100.0, 7.5)]
        shipped_hi = [("g", "pool.rss", 200.0, 7.5)]
        one, two = MetricsRegistry(), MetricsRegistry()
        one.merge_shipped(shipped_lo)
        one.merge_shipped(shipped_hi)
        two.merge_shipped(shipped_hi)
        two.merge_shipped(shipped_lo)
        assert one.gauge("pool.rss").value == 200.0
        assert two.gauge("pool.rss").value == 200.0

    def test_histogram_percentiles_round_trip(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("scan.macro_seconds").observe_many([1, 2, 3])
        b.histogram("scan.macro_seconds").observe_many([4, 5, 6, 7, 8])
        a.merge(b)
        merged = a.histogram("scan.macro_seconds")
        reference = Histogram("scan.macro_seconds")
        reference.observe_many([1, 2, 3, 4, 5, 6, 7, 8])
        assert merged.count == 8
        for q in (0, 50, 95, 99, 100):
            assert merged.percentile(q) == reference.percentile(q)

    def test_shipped_round_trip(self):
        src = MetricsRegistry()
        src.counter("c").inc(3)
        src.gauge("g").set(1.5)
        src.histogram("h").observe_many([1.0, 2.0])
        dst = MetricsRegistry()
        dst.merge_shipped(src.to_shipped())
        assert dst.to_dict() == src.to_dict()

    def test_merge_kind_conflict_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc()
        b.gauge("x").set(1)
        with pytest.raises(ObservabilityError):
            a.merge(b)

    def test_malformed_shipped_record_raises(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().merge_shipped([("z", "name", 1.0)])
        with pytest.raises(ObservabilityError):
            MetricsRegistry().merge_shipped([42])
