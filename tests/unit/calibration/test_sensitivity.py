"""Plate-node robustness sensitivities (experiment E1 support)."""

import pytest

from repro.calibration.design import design_structure
from repro.calibration.sensitivity import plate_error_from_cbl, plate_error_from_vth
from repro.errors import CalibrationError
from repro.units import fF


@pytest.fixture(scope="module")
def tall_structure(tech):
    return design_structure(tech, 16, 2, bitline_rows=128)


def test_cbl_error_is_second_order(tech, tall_structure):
    err = plate_error_from_cbl(tall_structure, 16, 2, bitline_rows=128)
    # +-10 % of a ~47 fF bitline induces well under 1.5 fF of extraction
    # error on the plate side.
    assert err < 1.5 * fF


def test_cbl_error_scales_with_uncertainty(tech, tall_structure):
    small = plate_error_from_cbl(
        tall_structure, 16, 2, relative_cbl_error=0.05, bitline_rows=128
    )
    large = plate_error_from_cbl(
        tall_structure, 16, 2, relative_cbl_error=0.20, bitline_rows=128
    )
    assert large > 2.5 * small


def test_cbl_error_validation(tall_structure):
    with pytest.raises(CalibrationError):
        plate_error_from_cbl(tall_structure, 16, 2, relative_cbl_error=1.5)


def test_vth_error_is_finite_and_bounded(tech, tall_structure):
    err = plate_error_from_vth(tall_structure, 16, 2, bitline_rows=128)
    assert 0 < err < 5 * fF


def test_vth_error_grows_with_mismatch(tech, tall_structure):
    e1 = plate_error_from_vth(tall_structure, 16, 2, delta_vth=0.005, bitline_rows=128)
    e2 = plate_error_from_vth(tall_structure, 16, 2, delta_vth=0.02, bitline_rows=128)
    assert e2 > e1


def test_plate_beats_bitline_on_cbl_noise(tech, tall_structure):
    """The paper's headline E1 claim, in one assertion."""
    from repro.baselines.bitline_measure import BitlineMeasurement
    from repro.edram.array import EDRAMArray

    arr = EDRAMArray(128, 4, tech=tech, macro_cols=2, macro_rows=16)
    bitline = BitlineMeasurement(arr)
    plate_err = plate_error_from_cbl(tall_structure, 16, 2, bitline_rows=128)
    bitline_err = bitline.capacitance_error_from_cbl(30 * fF)
    assert bitline_err > 3 * plate_err
