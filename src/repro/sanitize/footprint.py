"""Write-footprint sanitizer for the shared-memory fan-out.

The parallel scan's safety argument is spatial: every worker writes only
the tile/slab rectangles of its own tasks, distinct tasks' rectangles
are pairwise disjoint, and together they cover the planes.  The code is
*built* to satisfy that (slab planners skip engine tiles, retried tasks
rewrite their own rectangles), but nothing proved it at runtime — a
planner bug or a respawned worker double-writing would corrupt planes
silently, because shared memory has no access control.

``ScanConfig(sanitize=True)`` turns the argument into evidence: workers
ship the rectangle(s) they wrote back inside their acknowledgement
tuples (a few ints — the data plane stays in shared memory), the parent
records them into a :class:`FootprintLog`, and :func:`check_footprints`
proves after the scan that

* rectangles of **distinct tasks** are pairwise disjoint (a task's own
  retries may rewrite its rectangle — that is the crash-recovery
  contract, not a race), and
* the union of all rectangles **covers** every cell of the planes.

Violations surface as ordinary lint diagnostics (``CCY101`` overlap,
``CCY102`` gap) in a :class:`~repro.lint.diagnostics.LintReport`, so CI
gates on them exactly like any other rule.  The cost is O(tasks) tuple
elements on the wire and one small boolean plane per task at check time
— gated under 10% scan overhead in ``bench_perf_scan``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SanitizeError
from repro.lint.diagnostics import LintReport
from repro.lint.registry import REGISTRY, rule

__all__ = ["WriteInterval", "FootprintLog", "check_footprints"]

#: Cap on the sample coordinates listed in a diagnostic message.
_SAMPLE_CELLS = 4


@dataclass(frozen=True)
class WriteInterval:
    """One recorded write rectangle: ``[row_lo, row_hi) x [col_lo, col_hi)``.

    ``task`` identifies the logical writer (``"macro[3]"``,
    ``"slab[0:2]"``, ``"kernel"``, ``"checkpoint[1]"``); rectangles of
    the *same* task never conflict with each other (retries rewrite).
    ``attempt`` and ``source`` are audit detail: which retry shipped the
    acknowledgement and which side recorded it (``worker`` / ``parent``
    / ``rescue`` / ``checkpoint``).
    """

    task: str
    row_lo: int
    row_hi: int
    col_lo: int
    col_hi: int
    attempt: int = 0
    source: str = "worker"

    @property
    def cells(self) -> int:
        return (self.row_hi - self.row_lo) * (self.col_hi - self.col_lo)

    def to_dict(self) -> dict[str, object]:
        return {
            "task": self.task,
            "rows": [self.row_lo, self.row_hi],
            "cols": [self.col_lo, self.col_hi],
            "attempt": self.attempt,
            "source": self.source,
        }


@dataclass
class FootprintLog:
    """Accumulates write intervals against one plane shape."""

    shape: tuple[int, int]
    intervals: list[WriteInterval] = field(default_factory=list)

    def record(
        self,
        task: str,
        row_lo: int,
        row_hi: int,
        col_lo: int,
        col_hi: int,
        *,
        attempt: int = 0,
        source: str = "worker",
    ) -> WriteInterval:
        """Validate and append one rectangle; returns the interval.

        Raises :class:`~repro.errors.SanitizeError` on inverted or
        out-of-bounds rectangles — an acknowledgement claiming a write
        outside the planes is itself the bug the sanitizer hunts.
        """
        rows, cols = self.shape
        if not (0 <= row_lo <= row_hi <= rows and 0 <= col_lo <= col_hi <= cols):
            raise SanitizeError(
                f"footprint of task {task!r} is outside the "
                f"{rows}x{cols} planes: rows [{row_lo}, {row_hi}), "
                f"cols [{col_lo}, {col_hi})"
            )
        interval = WriteInterval(
            task, int(row_lo), int(row_hi), int(col_lo), int(col_hi),
            attempt=int(attempt), source=source,
        )
        self.intervals.append(interval)
        return interval

    def __len__(self) -> int:
        return len(self.intervals)

    def task_masks(self) -> dict[str, np.ndarray]:
        """Per-task boolean coverage planes (same-task rects OR together)."""
        masks: dict[str, np.ndarray] = {}
        for iv in self.intervals:
            mask = masks.get(iv.task)
            if mask is None:
                mask = masks[iv.task] = np.zeros(self.shape, dtype=bool)
            mask[iv.row_lo:iv.row_hi, iv.col_lo:iv.col_hi] = True
        return masks

    def count_plane(self) -> np.ndarray:
        """Per-cell count of *distinct tasks* that wrote the cell."""
        count = np.zeros(self.shape, dtype=np.int32)
        for mask in self.task_masks().values():
            count += mask
        return count

    def overlap_cells(self) -> int:
        """Cells written by more than one distinct task."""
        return int((self.count_plane() > 1).sum())

    def gap_cells(self) -> int:
        """Cells no task wrote."""
        return int((self.count_plane() == 0).sum())

    def to_dict(self) -> dict[str, object]:
        return {
            "shape": list(self.shape),
            "intervals": [iv.to_dict() for iv in self.intervals],
            "overlap_cells": self.overlap_cells(),
            "gap_cells": self.gap_cells(),
        }


def _sample_coords(mask: np.ndarray) -> str:
    rows, cols = np.nonzero(mask)
    pairs = ", ".join(
        f"({r}, {c})" for r, c in zip(rows[:_SAMPLE_CELLS], cols[:_SAMPLE_CELLS])
    )
    if len(rows) > _SAMPLE_CELLS:
        pairs += ", ..."
    return pairs


@rule(
    "CCY101",
    "overlapping-write-footprint",
    target="footprint",
    summary="two distinct tasks wrote the same plane cells",
)
def check_overlapping_footprint(subject: object, context: dict[str, object]):
    """Flag every pair of distinct tasks whose rectangles intersect.

    ``subject`` is a :class:`FootprintLog`.  Same-task repetition
    (retries) is legal by construction and never reported.
    """
    log = _coerce_log(subject)
    masks = log.task_masks()
    overlap = log.count_plane() > 1
    if not overlap.any():
        return
    involved = [task for task, mask in masks.items() if (mask & overlap).any()]
    for i, a in enumerate(involved):
        for b in involved[i + 1:]:
            both = masks[a] & masks[b]
            cells = int(both.sum())
            if not cells:
                continue
            yield check_overlapping_footprint.diagnostic(
                f"tasks {a!r} and {b!r} both wrote {cells} cell(s): "
                f"{_sample_coords(both)} — the fan-out's disjointness "
                "contract is broken (last writer wins silently)",
                subject=str(context.get("subject", "footprint")),
                nodes=(a, b),
            )


@rule(
    "CCY102",
    "footprint-coverage-gap",
    target="footprint",
    summary="plane cells no task claims to have written",
)
def check_footprint_coverage(subject: object, context: dict[str, object]):
    """Flag cells the recorded footprints never covered.

    An uncovered cell holds whatever the segment held before the scan —
    stale data indistinguishable from a measurement.
    """
    log = _coerce_log(subject)
    if not log.intervals:
        yield check_footprint_coverage.diagnostic(
            "no write intervals were recorded at all; every cell of the "
            f"{log.shape[0]}x{log.shape[1]} planes is unaccounted for",
            subject=str(context.get("subject", "footprint")),
        )
        return
    uncovered = log.count_plane() == 0
    cells = int(uncovered.sum())
    if cells:
        yield check_footprint_coverage.diagnostic(
            f"{cells} cell(s) were never written by any task: "
            f"{_sample_coords(uncovered)} — they hold stale segment data, "
            "not measurements",
            subject=str(context.get("subject", "footprint")),
        )


def _coerce_log(subject: object) -> FootprintLog:
    if not isinstance(subject, FootprintLog):
        raise SanitizeError(
            f"footprint rules expect a FootprintLog, got {type(subject).__name__}"
        )
    return subject


def check_footprints(log: FootprintLog, subject: str = "scan") -> LintReport:
    """Run the footprint rules (CCY101/CCY102) over ``log``.

    Returns a normal :class:`~repro.lint.diagnostics.LintReport`; the
    scan engine attaches it to ``ScanResult.sanitize_report`` and the
    CLI folds its exit code into ``repro scan --sanitize``.
    """
    report = LintReport()
    context: dict[str, object] = {"subject": subject}
    for spec in REGISTRY.for_target("footprint"):
        report.extend(spec.run(log, context))
    return report
