"""Noise and repeatability analysis."""

import pytest

from repro.errors import MeasurementError
from repro.measure.noise import NoiseAnalysis
from repro.units import fA, fF, to_fF


@pytest.fixture(scope="module")
def analysis(structure_2x2):
    return NoiseAnalysis(structure_2x2, 2, 2)


def test_validation(structure_2x2):
    with pytest.raises(MeasurementError):
        NoiseAnalysis(structure_2x2, 2, 2, sigma_comparator=-1.0)
    with pytest.raises(MeasurementError):
        NoiseAnalysis(structure_2x2, 2, 2, gate_leak=-1.0)


def test_ktc_noise_magnitude(analysis):
    # kT/C on ~70 fF at 300 K referred through the transfer slope lands
    # in the tens of attofarads — far below one LSB.
    budget = analysis.budget(30 * fF)
    assert 0.001 * fF < budget.sigma_ktc < 0.2 * fF


def test_total_noise_below_one_lsb(analysis):
    budget = analysis.budget(30 * fF)
    assert budget.sigma_codes < 0.3


def test_ktc_grows_with_temperature(analysis):
    cold = analysis.budget(30 * fF, temperature_k=233.15)
    hot = analysis.budget(30 * fF, temperature_k=398.15)
    assert hot.sigma_ktc > cold.sigma_ktc


def test_droop_bias_negligible_at_nominal(analysis):
    budget = analysis.budget(30 * fF)
    assert abs(budget.droop_bias) < 0.01 * fF


def test_droop_bias_scales_with_leak(structure_2x2):
    leaky = NoiseAnalysis(structure_2x2, 2, 2, gate_leak=50000 * fA)
    quiet = NoiseAnalysis(structure_2x2, 2, 2, gate_leak=50 * fA)
    assert abs(leaky.budget(30 * fF).droop_bias) > 100 * abs(
        quiet.budget(30 * fF).droop_bias
    ) / 101  # proportional
    assert leaky.budget(30 * fF).droop_bias < 0  # droop reads low


def test_enob_is_quantization_limited(analysis, structure_2x2):
    # With sub-LSB noise the ENOB approaches log2(num_steps).
    import math

    enob = analysis.enob(30 * fF)
    assert enob == pytest.approx(math.log2(structure_2x2.design.num_steps), abs=0.3)


def test_repeatability_mid_bin_is_stable(analysis):
    assert analysis.repeatability_sigma(30 * fF, draws=100) < 0.3


def test_repeatability_flickers_at_bin_edge(analysis, abacus_2x2):
    edge = float(abacus_2x2.edges[8])  # a code transition level
    sigma = analysis.repeatability_sigma(edge, draws=300)
    assert 0.2 < sigma < 0.8  # ~Bernoulli flicker between two codes


def test_sample_codes_determinism(analysis):
    a = analysis.sample_codes(30 * fF, draws=50, seed=7)
    b = analysis.sample_codes(30 * fF, draws=50, seed=7)
    assert (a == b).all()
    with pytest.raises(MeasurementError):
        analysis.sample_codes(30 * fF, draws=0)


def test_bigger_comparator_noise_hurts(structure_2x2):
    quiet = NoiseAnalysis(structure_2x2, 2, 2, sigma_comparator=0.5e-3)
    loud = NoiseAnalysis(structure_2x2, 2, 2, sigma_comparator=5e-3)
    assert loud.budget(30 * fF).sigma_total > quiet.budget(30 * fF).sigma_total
