"""Extended transistor-level validation sweep (slow).

A broader cross-check of the transient tier against the static tiers:
capacitance sweep across the full range, a defect case, and waveform-
quality assertions (the flow's analog health, not just the final code).
"""

import pytest

from repro.edram.array import EDRAMArray
from repro.measure.phases import Phase, PhasePlan
from repro.measure.sequencer import MeasurementSequencer
from repro.units import fF, ns

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("cm_ff", [12, 25, 35, 48])
def test_code_agreement_across_the_range(tech, structure_2x2, cm_ff):
    array = EDRAMArray(2, 2, tech=tech)
    array.cell(0, 0).capacitance = cm_ff * fF
    sequencer = MeasurementSequencer(array.macro(0), structure_2x2)
    static = sequencer.measure_charge(0, 0)
    dynamic = sequencer.measure_transient(0, 0)
    assert abs(dynamic.code - static.code) <= 1


def test_waveform_anatomy(tech, structure_2x2):
    """Phase-by-phase analog health of the flow."""
    array = EDRAMArray(2, 2, tech=tech)
    sequencer = MeasurementSequencer(array.macro(0), structure_2x2)
    result, wave = sequencer.measure_transient(0, 0, return_waveform=True)
    plan = PhasePlan(tech, structure_2x2.design, 0, 0, 2, 2)

    # DISCHARGE: everything near ground by the end of the phase.
    t1 = plan.window(Phase.DISCHARGE).end - 1 * ns
    assert abs(wave.value_at("plate", t1)) < 0.02
    assert abs(wave.value_at("gate", t1)) < 0.02

    # CHARGE: plate reaches a full V_DD well within the phase (measure
    # inside the phase window; the plate legitimately leaves V_DD later).
    charge = plan.window(Phase.CHARGE)
    settle = wave.window(charge.start, charge.end).settling_time(
        "plate", tech.vdd, tolerance=0.02
    )
    assert settle < charge.end - 2 * ns

    # SHARE: plate and gate converge to the same V_GS.
    t4 = plan.window(Phase.SHARE).end - 1 * ns
    assert wave.value_at("plate", t4) == pytest.approx(
        wave.value_at("gate", t4), abs=0.01
    )

    # CONVERT: OUT is a clean rail-to-rail rise after the flip.
    assert result.flip_time is not None
    assert wave.final("out") > tech.vdd - 0.1
    slew = wave.slew_rate("out", 0.3, 1.5)
    assert slew > 1e9  # > 1 V/ns through the transition

    # The gate must not droop measurably during conversion.
    droop = wave.value_at("gate", t4) - wave.final("gate")
    assert abs(droop) < 0.02
