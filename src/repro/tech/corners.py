"""Process corners for the synthetic 0.18 µm eDRAM card.

Corners follow the usual foundry naming: the first letter is the n-MOS
speed, the second the p-MOS speed.  "Fast" means lower |V_TH| and higher
transconductance; "slow" the opposite.  The eDRAM capacitor process is
largely independent of the transistor corner, so the cell capacitance gets
its own small corner shift (deposition thickness tracks loosely with
oxide).

Usage::

    from repro.tech import Corner, corner_technology
    tech_ss = corner_technology(Corner.SS)
"""

from __future__ import annotations

import enum
from dataclasses import replace

from repro.tech.parameters import TechnologyCard, default_technology


class Corner(enum.Enum):
    """Five-corner set: typical, fast/slow globals, and skewed pairs."""

    TT = "tt"
    FF = "ff"
    SS = "ss"
    FS = "fs"  # fast n-MOS, slow p-MOS
    SF = "sf"  # slow n-MOS, fast p-MOS

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value.upper()


#: Per-corner parameter shifts: (n dvth, n kp scale, p dvth, p kp scale,
#: cell-capacitance scale).  dvth moves |vth| — positive is slower.
CORNER_SHIFTS: dict[Corner, tuple[float, float, float, float, float]] = {
    Corner.TT: (0.0, 1.00, 0.0, 1.00, 1.00),
    Corner.FF: (-0.05, 1.12, -0.05, 1.12, 1.03),
    Corner.SS: (+0.05, 0.88, +0.05, 0.88, 0.97),
    Corner.FS: (-0.05, 1.12, +0.05, 0.88, 1.00),
    Corner.SF: (+0.05, 0.88, -0.05, 1.12, 1.00),
}


def corner_technology(corner: Corner, base: TechnologyCard | None = None) -> TechnologyCard:
    """Return ``base`` (default: nominal card) shifted to the given corner.

    The returned card's ``name`` is suffixed with the corner tag so that
    abacus caches and reports stay distinguishable.
    """
    card = base if base is not None else default_technology()
    n_dvth, n_kp, p_dvth, p_kp, c_scale = CORNER_SHIFTS[corner]
    return replace(
        card,
        name=f"{card.name}-{corner.value}",
        nmos=card.nmos.with_shift(dvth=n_dvth, kp_scale=n_kp),
        pmos=card.pmos.with_shift(dvth=p_dvth, kp_scale=p_kp),
        cell_capacitance=card.cell_capacitance * c_scale,
    )


def all_corners(base: TechnologyCard | None = None) -> dict[Corner, TechnologyCard]:
    """Return a card for every corner, keyed by :class:`Corner`."""
    return {corner: corner_technology(corner, base) for corner in Corner}
