"""Property-based tests of the code-stream codec."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.controller.stream import CodeStream

code_maps = arrays(
    dtype=np.int64,
    shape=st.tuples(st.integers(1, 12), st.integers(1, 12)),
    elements=st.integers(0, 20),
)


@given(codes=code_maps)
@settings(max_examples=150, deadline=None)
def test_raw_roundtrip_is_lossless(codes):
    stream = CodeStream(bits_per_code=5)
    assert np.array_equal(stream.decode(stream.encode(codes, rle=False)), codes)


@given(codes=code_maps)
@settings(max_examples=150, deadline=None)
def test_rle_roundtrip_is_lossless(codes):
    stream = CodeStream(bits_per_code=5)
    assert np.array_equal(stream.decode(stream.encode(codes, rle=True)), codes)


@given(codes=code_maps)
@settings(max_examples=100, deadline=None)
def test_auto_never_bigger_than_either_mode(codes):
    stream = CodeStream(bits_per_code=5)
    auto = len(stream.encode(codes, rle="auto"))
    raw = len(stream.encode(codes, rle=False))
    rle = len(stream.encode(codes, rle=True))
    assert auto <= min(raw, rle)


@given(
    value=st.integers(0, 20),
    rows=st.integers(1, 30),
    cols=st.integers(1, 30),
)
@settings(max_examples=100, deadline=None)
def test_constant_maps_compress_to_near_header(value, rows, cols):
    stream = CodeStream(bits_per_code=5)
    codes = np.full((rows, cols), value)
    payload = stream.encode(codes, rle=True)
    # Header (6 bytes) + ceil(cells/256) RLE records of 13 bits.
    records = -(-codes.size // 256)
    assert len(payload) <= 6 + (records * 13 + 7) // 8 + 1


@given(codes=code_maps, bits=st.integers(5, 8))
@settings(max_examples=60, deadline=None)
def test_any_sufficient_width_roundtrips(codes, bits):
    stream = CodeStream(bits_per_code=bits)
    assert np.array_equal(stream.decode(stream.encode(codes)), codes)
