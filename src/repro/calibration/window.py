"""Specification windows in the current domain.

Per the paper: "This current value is used as an image of the capacitor
value, thus a specification window is defined in current."  Production
screening never inverts the abacus per cell — it simply compares the raw
code (equivalently the DAC current at the flip) against precomputed
limits.  :class:`SpecificationWindow` implements that comparison plus the
bookkeeping between the current, code and capacitance views.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.calibration.abacus import Abacus
from repro.errors import CalibrationError


class SpecVerdict(enum.Enum):
    """Outcome of screening one code against the window."""

    PASS = "pass"
    FAIL_LOW = "fail_low"
    FAIL_HIGH = "fail_high"
    AMBIGUOUS_ZERO = "ambiguous_zero"  # code 0: under-range / short / open
    OVER_RANGE = "over_range"  # full-scale code

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class SpecificationWindow:
    """Pass window expressed as an inclusive code interval.

    Build with :meth:`from_capacitance` to translate a capacitance spec
    (e.g. 30 fF ± 20 %) into codes through an abacus.
    """

    code_lo: int
    code_hi: int
    num_steps: int
    delta_i: float

    def __post_init__(self) -> None:
        if not 0 < self.code_lo <= self.code_hi < self.num_steps:
            raise CalibrationError(
                f"window codes must satisfy 0 < lo <= hi < {self.num_steps}, "
                f"got [{self.code_lo}, {self.code_hi}]"
            )

    @classmethod
    def from_capacitance(
        cls, abacus: Abacus, c_min: float, c_max: float
    ) -> "SpecificationWindow":
        """Window passing capacitances in ``[c_min, c_max]``.

        The code interval is the smallest one containing every code that
        an in-spec capacitance can produce.
        """
        if not 0 < c_min < c_max:
            raise CalibrationError(f"need 0 < c_min < c_max, got [{c_min}, {c_max}]")
        code_lo = abacus.code_for_capacitance(c_min)
        code_hi = abacus.code_for_capacitance(c_max)
        if code_lo == 0 or code_hi == abacus.num_steps:
            raise CalibrationError(
                "capacitance spec extends outside the measurable range; "
                "re-design the structure for a wider range first"
            )
        return cls(
            code_lo=code_lo,
            code_hi=code_hi,
            num_steps=abacus.num_steps,
            delta_i=abacus.structure.design.delta_i,
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def current_lo(self) -> float:
        """Lower window limit in the current domain, amperes."""
        return self.code_lo * self.delta_i

    @property
    def current_hi(self) -> float:
        """Upper window limit in the current domain, amperes."""
        return self.code_hi * self.delta_i

    # ------------------------------------------------------------------
    # Screening
    # ------------------------------------------------------------------

    def classify(self, code: int) -> SpecVerdict:
        """Screen one measurement code against the window."""
        if not 0 <= code <= self.num_steps:
            raise CalibrationError(f"code {code} outside 0..{self.num_steps}")
        if code == 0:
            return SpecVerdict.AMBIGUOUS_ZERO
        if code == self.num_steps:
            return SpecVerdict.OVER_RANGE
        if code < self.code_lo:
            return SpecVerdict.FAIL_LOW
        if code > self.code_hi:
            return SpecVerdict.FAIL_HIGH
        return SpecVerdict.PASS

    def passes(self, code: int) -> bool:
        """True when the code lands inside the window."""
        return self.classify(code) is SpecVerdict.PASS
