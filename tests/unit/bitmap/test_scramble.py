"""Address descrambling."""

import numpy as np
import pytest

from repro.bitmap.scramble import AddressScrambler
from repro.bitmap.signatures import SignatureKind, categorize
from repro.errors import DiagnosisError


class TestConstruction:
    def test_rejects_non_permutation(self):
        with pytest.raises(DiagnosisError):
            AddressScrambler(np.array([0, 0, 1]), np.arange(4))

    def test_identity(self):
        s = AddressScrambler.identity(4, 6)
        data = np.arange(24).reshape(4, 6)
        assert np.array_equal(s.to_physical(data), data)
        assert np.array_equal(s.to_logical(data), data)


class TestFactories:
    def test_folded_rows_covers_all(self):
        s = AddressScrambler.folded_rows(8, 2)
        assert sorted(s.row_map.tolist()) == list(range(8))
        assert s.row_map[0] == 0
        assert s.row_map[1] == 7  # second logical row is the bottom row

    def test_interleaved_columns(self):
        s = AddressScrambler.interleaved_columns(2, 8, ways=2)
        # logical 0,1,2,3.. -> physical 0,4,1,5..
        assert s.col_map.tolist() == [0, 4, 1, 5, 2, 6, 3, 7]
        with pytest.raises(DiagnosisError):
            AddressScrambler.interleaved_columns(2, 6, ways=4)

    def test_gray_rows(self):
        s = AddressScrambler.gray_rows(8, 2)
        assert sorted(s.row_map.tolist()) == list(range(8))
        assert s.row_map[3] == 2  # 3 ^ 1 = 2
        with pytest.raises(DiagnosisError):
            AddressScrambler.gray_rows(6, 2)


class TestRoundTrips:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: AddressScrambler.folded_rows(8, 8),
            lambda: AddressScrambler.interleaved_columns(8, 8, 4),
            lambda: AddressScrambler.gray_rows(8, 8),
        ],
    )
    def test_map_roundtrip(self, factory):
        s = factory()
        rng = np.random.default_rng(1)
        data = rng.integers(0, 21, size=(8, 8))
        assert np.array_equal(s.to_logical(s.to_physical(data)), data)
        assert np.array_equal(s.to_physical(s.to_logical(data)), data)

    def test_address_roundtrip(self):
        s = AddressScrambler.folded_rows(8, 4)
        for row in range(8):
            for col in range(4):
                p = s.physical_address(row, col)
                assert s.logical_address(*p) == (row, col)

    def test_address_bounds(self):
        s = AddressScrambler.identity(4, 4)
        with pytest.raises(DiagnosisError):
            s.physical_address(4, 0)
        with pytest.raises(DiagnosisError):
            s.logical_address(0, -1)

    def test_shape_checked(self):
        s = AddressScrambler.identity(4, 4)
        with pytest.raises(DiagnosisError):
            s.to_physical(np.zeros((2, 2)))


class TestSignaturePayoff:
    def test_physical_row_defect_snaps_into_row_signature(self):
        """The reason descrambling exists for bitmap diagnosis."""
        s = AddressScrambler.folded_rows(8, 8)
        physical_fails = np.zeros((8, 8), dtype=bool)
        physical_fails[5, :] = True  # wordline defect, physical row 5

        logical_view = s.to_logical(physical_fails)
        # In logical space a folded decoder keeps full rows intact for a
        # *row* fail (row_map permutes rows whole), so break the pattern
        # properly with a column interleave instead:
        s2 = AddressScrambler.interleaved_columns(8, 8, ways=4)
        physical_col_fail = np.zeros((8, 8), dtype=bool)
        physical_col_fail[:, 5] = True  # bitline defect, physical col 5
        logical = s2.to_logical(physical_col_fail)
        # Logical view keeps a single column too (column permutation).
        # The scramble that *scatters* is a combined one:
        combined = AddressScrambler(
            AddressScrambler.gray_rows(8, 8).row_map,
            AddressScrambler.interleaved_columns(8, 8, 4).col_map,
        )
        cluster_fail = np.zeros((8, 8), dtype=bool)
        cluster_fail[2:5, 2:5] = True  # physical particle cluster
        logical_cluster = combined.to_logical(cluster_fail)
        logical_sigs = categorize(logical_cluster)
        physical_sigs = categorize(combined.to_physical(logical_cluster))
        # Scrambling shatters the cluster into several pieces; the
        # descrambled view restores one CLUSTER signature.
        assert len(physical_sigs) == 1
        assert physical_sigs[0].kind is SignatureKind.CLUSTER
        assert len(logical_sigs) > 1
