"""Ferroelectric-capacitor backend: hysteretic state + read-disturb.

Models an array of ferroelectric (HZO-class) capacitors read
*capacitively* through the paper's measurement structure, per
"Reliability of Capacitive Read in Arrays of Ferroelectric Capacitors"
(arXiv:2506.09480).  The physics kept here:

- **Polarization-dependent capacitance.**  Each cell carries a
  normalized remanent polarization ``P ∈ [-1, +1]``.  Around the read
  bias the small-signal capacitance splits into a linear (dielectric)
  part and a switching part proportional to how much polarization is
  available to move:

      C(P) = C_lin + (1 + P)/2 · C_switch

  A fully "up"-polarized cell (P = +1, the written state) presents
  ``C_lin + C_switch``; a depolarized one (P = 0) presents
  ``C_lin + C_switch/2``; a fully reversed one only ``C_lin``.

- **Cumulative read-disturb.**  A capacitive read is *mostly*
  non-destructive, but every read cycle nudges domains back toward the
  depolarized state.  After each whole-array scan the polarization
  relaxes multiplicatively (``P ← P·(1 − δ)``), so repeated recorded
  scans show a monotonic capacitance droop — exactly the failure mode
  the reference paper characterizes, and exactly what the run ledger's
  EWMA/CUSUM drift charts are built to flag.

The charge-share algebra itself is unchanged — at the plate terminal a
FeCap cell is "a capacitor of value C(P)" — so this backend keeps
``uses_kernel = True`` and rides the batched kernel and shared-memory
fan-out untouched.  The disturb update writes through each cell's
watched ``capacitance`` attribute, which bumps ``array.version`` and
thereby evicts warm worker pools and cached netlists automatically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.edram.array import EDRAMArray
from repro.edram.defects import DefectKind
from repro.errors import ArrayConfigError
from repro.tech.parameters import MosfetParams, TechnologyCard
from repro.technologies.base import CellTechnology
from repro.units import fA, fF, nm

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.measure.scan import ScanResult

#: Defect kinds whose ``factor`` rescales the drawn capacitance; the
#: disturb update must re-apply them after recomputing C(P).
_PARAMETRIC_CAP = (DefectKind.LOW_CAP, DefectKind.HIGH_CAP)


def fecap_technology_card() -> TechnologyCard:
    """Synthetic HZO-on-0.18 µm-BEOL ferroelectric technology card.

    The logic/access devices are the same 0.18 µm platform as the eDRAM
    card; the storage element differs: a written (P = +1) FeCap presents
    ~35 fF small-signal, the dielectric floor is ~15 fF, and leakage
    through the HZO stack is negligible next to a DRAM junction — the
    state is non-volatile, so the retention target is huge and the
    interesting wear-out axis is *read-disturb*, not droop.
    """
    return TechnologyCard(
        name="hzo-fecap-0.18um",
        vdd=1.8,
        vpp=2.9,
        nmos=MosfetParams(polarity="nmos", vth0=0.45, kp=300e-6, tox=4.0 * nm),
        pmos=MosfetParams(polarity="pmos", vth0=-0.45, kp=75e-6, tox=4.0 * nm),
        cell_capacitance=35.0 * fF,   # C_lin + C_switch at P = +1
        cell_cap_sigma=1.4 * fF,
        storage_junction_cap=0.6 * fF,
        bitline_cap_per_cell=0.35 * fF,
        bitline_base_cap=2.0 * fF,
        wordline_cap_per_cell=0.45 * fF,
        plate_parasitic_per_cell=0.08 * fF,
        plate_base_cap=1.5 * fF,
        junction_leak_per_cell=0.05 * fA,
        retention_target_s=3.2e8,     # ~10 years: non-volatile storage
    )


class FeCapArray(EDRAMArray):
    """Array of 1T-1FeCap cells with per-cell polarization state.

    Electrically the array presents the scanner the same planes as an
    eDRAM array — capacitance and defect-kind matrices — but the
    capacitance plane is *derived*: ``C = C_lin + (1+P)/2 · C_switch``
    from the per-cell dielectric/switching splits and the polarization
    plane.  :meth:`apply_read_disturb` advances the polarization and
    writes the derived values back through the watched cells.
    """

    technology = "fecap"

    def __init__(
        self,
        rows: int,
        cols: int,
        tech: TechnologyCard | None = None,
        macro_cols: int = 2,
        macro_rows: int | None = None,
        c_lin_map: np.ndarray | None = None,
        c_switch_map: np.ndarray | None = None,
        polarization: np.ndarray | float = 1.0,
        read_disturb: float = 0.04,
        leak_map: np.ndarray | None = None,
    ) -> None:
        tech = tech if tech is not None else fecap_technology_card()
        if not 0.0 <= read_disturb < 1.0:
            raise ArrayConfigError(
                f"read_disturb must be in [0, 1), got {read_disturb}"
            )
        # Default split: the dielectric floor carries ~43% of the
        # written-state capacitance (15 fF of 35 fF on the nominal card).
        c_lin = (
            np.asarray(c_lin_map, dtype=float)
            if c_lin_map is not None
            else np.full((rows, cols), 15.0 / 35.0 * tech.cell_capacitance)
        )
        c_switch = (
            np.asarray(c_switch_map, dtype=float)
            if c_switch_map is not None
            else np.full((rows, cols), tech.cell_capacitance) - c_lin
        )
        pol = np.asarray(polarization, dtype=float)
        if pol.ndim == 0:
            pol = np.full((rows, cols), float(pol))
        for name, plane in (("c_lin_map", c_lin), ("c_switch_map", c_switch),
                            ("polarization", pol)):
            if plane.shape != (rows, cols):
                raise ArrayConfigError(
                    f"{name} shape {plane.shape} does not match "
                    f"array {rows}x{cols}"
                )
        if np.any(c_lin <= 0) or np.any(c_switch <= 0):
            raise ArrayConfigError(
                "c_lin_map and c_switch_map must be strictly positive"
            )
        if np.any(np.abs(pol) > 1.0):
            raise ArrayConfigError("polarization must lie in [-1, +1]")
        self._c_lin = c_lin.copy()
        self._c_switch = c_switch.copy()
        self._polarization = pol.copy()
        self.read_disturb = read_disturb
        self.reads = 0
        super().__init__(
            rows, cols, tech=tech, macro_cols=macro_cols,
            macro_rows=macro_rows,
            capacitance_map=self._derived_capacitance(),
            leak_map=leak_map,
        )

    def _derived_capacitance(self) -> np.ndarray:
        return self._c_lin + 0.5 * (1.0 + self._polarization) * self._c_switch

    def polarization_view(self) -> np.ndarray:
        """Read-only view of the normalized polarization plane."""
        view = self._polarization.view()
        view.flags.writeable = False
        return view

    def apply_read_disturb(self, reads: int = 1) -> None:
        """Relax polarization by ``reads`` read cycles and update cells.

        Each read multiplies the polarization by ``(1 − read_disturb)``;
        the derived capacitances are written back through the watched
        ``DRAMCell.capacitance`` attribute so the array's bulk planes,
        version counter and every cache keyed on it stay coherent.
        Parametric capacitance defects (LOW_CAP/HIGH_CAP) re-apply their
        factor on top of the recomputed drawn value.
        """
        if reads < 0:
            raise ArrayConfigError(f"reads must be >= 0, got {reads}")
        if reads == 0 or self.read_disturb == 0.0:
            self.reads += reads
            return
        self._polarization *= (1.0 - self.read_disturb) ** reads
        self.reads += reads
        derived = self._derived_capacitance()
        for r in range(self.rows):
            for c in range(self.cols):
                cell = self._cells[r][c]
                value = float(derived[r, c])
                if cell.defect is not None and cell.defect.kind in _PARAMETRIC_CAP:
                    value *= cell.defect.factor
                cell.capacitance = value


class FeCapTechnology(CellTechnology):
    """Ferroelectric-capacitor backend (capacitive read, arXiv:2506.09480)."""

    name = "fecap"
    display = "ferroelectric capacitor array (capacitive read)"
    headline = "capacitance + read-disturb"
    reference = "arXiv:2506.09480"
    uses_kernel = True
    mismatch_sigma = 1.0 * fF

    def base_card(self) -> TechnologyCard:
        return fecap_technology_card()

    def array_class(self) -> type:
        return FeCapArray

    def build_array(
        self,
        rows: int,
        cols: int,
        *,
        macro_rows: int | None = None,
        macro_cols: int = 2,
        seed: int = 0,
        nominal: float | None = None,
        with_defects: bool = False,
        tech: TechnologyCard | None = None,
    ) -> FeCapArray:
        from repro.edram.variation_map import mismatch_map

        card = tech if tech is not None else self.base_card()
        scale = 1.0 if nominal is None else nominal / card.cell_capacitance
        shape = (rows, cols)
        # Dielectric and switching components get independent mismatch
        # (different physical layers); seeds derive deterministically
        # from the array seed.
        lin_nominal = scale * 15.0 / 35.0 * card.cell_capacitance
        switch_nominal = scale * card.cell_capacitance - lin_nominal
        c_lin = np.maximum(
            lin_nominal + mismatch_map(shape, 0.4 * self.mismatch_sigma, seed=seed),
            1.0 * fF,
        )
        c_switch = np.maximum(
            switch_nominal
            + mismatch_map(shape, 0.6 * self.mismatch_sigma, seed=seed + 7919),
            1.0 * fF,
        )
        array = FeCapArray(
            rows, cols, tech=card, macro_cols=macro_cols,
            macro_rows=macro_rows, c_lin_map=c_lin, c_switch_map=c_switch,
        )
        if with_defects:
            self.inject_defects(array, seed)
        return array

    def fabricate_die(
        self,
        rows: int,
        cols: int,
        *,
        macro_rows: int,
        macro_cols: int,
        mean: float,
        cell_sigma: float,
        mismatch_seed: int,
        tech: TechnologyCard | None = None,
    ) -> FeCapArray:
        from repro.edram.variation_map import mismatch_map

        card = tech if tech is not None else self.base_card()
        shape = (rows, cols)
        mean = max(mean, 5 * fF)
        lin_nominal = 15.0 / 35.0 * mean
        c_lin = np.maximum(
            lin_nominal + mismatch_map(shape, 0.4 * cell_sigma, seed=mismatch_seed),
            1.0 * fF,
        )
        c_switch = np.maximum(
            (mean - lin_nominal)
            + mismatch_map(shape, 0.6 * cell_sigma, seed=mismatch_seed + 7919),
            1.0 * fF,
        )
        return FeCapArray(
            rows, cols, tech=card, macro_cols=macro_cols,
            macro_rows=macro_rows, c_lin_map=c_lin, c_switch_map=c_switch,
        )

    def measurement_range(self) -> tuple[float, float, int]:
        # Must cover the depolarization trajectory: written cells start
        # near C_lin + C_switch (~35 fF) and droop toward the dielectric
        # floor (~15 fF) as reads accumulate.
        return (8.0 * fF, 45.0 * fF, 20)

    def spec_window(self) -> tuple[float, float]:
        # Judge against the *written* state: a cell that has lost more
        # than ~20% of its switched capacitance is disturb-degraded.
        return (28.0 * fF, 42.0 * fF)

    def after_scan(self, array: EDRAMArray, result: "ScanResult") -> None:
        if isinstance(array, FeCapArray):
            array.apply_read_disturb()

    def extra_scalars(self, array: EDRAMArray) -> dict[str, float]:
        if not isinstance(array, FeCapArray):
            return {}
        return {
            "polarization_mean": float(array.polarization_view().mean()),
            "read_cycles": float(array.reads),
        }
