"""Bitline-side measurement baseline (the paper's negative example)."""

import pytest

from repro.baselines.bitline_measure import BitlineMeasurement
from repro.edram.array import EDRAMArray
from repro.edram.defects import CellDefect, DefectKind
from repro.errors import MeasurementError
from repro.units import fF


@pytest.fixture(scope="module")
def tall_array(tech):
    return EDRAMArray(256, 4, tech=tech, macro_cols=2, macro_rows=16)


@pytest.fixture(scope="module")
def blm(tall_array):
    return BitlineMeasurement(tall_array)


def test_validation(tall_array):
    with pytest.raises(MeasurementError):
        BitlineMeasurement(tall_array, i_min=0.0)


def test_codes_are_weakly_monotone(blm):
    codes = [blm.code_for_capacitance(c * fF) for c in range(5, 60, 5)]
    assert all(a <= b for a, b in zip(codes, codes[1:]))


def test_low_half_of_range_is_blind(blm):
    # The bitline attenuation pushes small cells below the converter
    # threshold: 10-25 fF all read code 0 on a 256-row column.
    assert blm.code_for_capacitance(10 * fF) == 0
    assert blm.code_for_capacitance(20 * fF) == 0


def test_negative_capacitance_rejected(blm):
    with pytest.raises(MeasurementError):
        blm.code_for_capacitance(-1.0)


def test_cbl_error_is_first_order(blm):
    # ~10 % of C_m at +-10 % C_BL knowledge: the paper's "capacitance
    # noise due to the parasitic bit-line capacitance".
    err = blm.capacitance_error_from_cbl(30 * fF, relative_cbl_error=0.1)
    assert err > 2 * fF


def test_vth_sensitivity_finite(blm):
    err = blm.capacitance_error_from_vth(30 * fF)
    assert err > 0


def test_defect_measurements(tech):
    arr = EDRAMArray(64, 2, tech=tech)
    arr.cell(0, 0).apply_defect(CellDefect(DefectKind.OPEN))
    arr.cell(1, 1).apply_defect(CellDefect(DefectKind.SHORT))
    blm = BitlineMeasurement(arr)
    assert blm.measure(0, 0) == 0  # open: nothing couples
    healthy = blm.measure(2, 0)
    assert blm.measure(1, 1) >= healthy  # mid-rail coupling reads high


def test_scan_shape(tech):
    arr = EDRAMArray(8, 4, tech=tech, macro_cols=2)
    codes = BitlineMeasurement(arr).scan()
    assert codes.shape == (8, 4)


def test_depth_degrades_with_column_height(tech):
    short = BitlineMeasurement(EDRAMArray(32, 2, tech=tech))
    tall = BitlineMeasurement(EDRAMArray(512, 2, tech=tech))
    assert tall.achievable_depth < short.achievable_depth
    assert tall.c_bitline > short.c_bitline
