"""Opt-in runtime sanitizers proving the fan-out's safety contracts.

Today: the write-footprint sanitizer (:mod:`repro.sanitize.footprint`),
armed by ``ScanConfig(sanitize=True)`` / ``repro scan --sanitize``.  It
records every worker's write rectangles from the acknowledgement stream
and proves pairwise disjointness + full plane coverage after the scan,
reporting violations as CCY101/CCY102 lint diagnostics.
"""

from __future__ import annotations

from repro.sanitize.footprint import FootprintLog, WriteInterval, check_footprints

__all__ = ["FootprintLog", "WriteInterval", "check_footprints"]
