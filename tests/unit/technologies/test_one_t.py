"""Capacitorless 1T backend: retention maps and small-capacitance scans."""

import numpy as np
import pytest

from repro.measure.config import ScanConfig
from repro.measure.scan import ArrayScanner
from repro.obs.ledger import RunLedger
from repro.technologies import get
from repro.technologies.one_t import Body1TArray, one_t_technology_card
from repro.units import fF


def _small(seed=0, **kwargs):
    return get("1t").build_array(8, 4, macro_rows=4, seed=seed, **kwargs)


class TestRetentionMap:
    def test_matches_the_per_cell_formula(self):
        array = _small(seed=2)
        retention = array.retention_time_map()
        for r, c in ((0, 0), (3, 1), (7, 3)):
            cell = array.cell(r, c)
            assert retention[r, c] == pytest.approx(
                cell.retention_time(array.tech.vdd, 0.5)
            )

    def test_zero_leak_reports_infinite_retention(self):
        # The array constructor demands strictly positive leak maps, but
        # a cell's leak can be healed to zero afterwards (the watched
        # attribute updates the bulk plane).
        array = Body1TArray(2, 2)
        array.cell(0, 0).leak_current = 0.0
        retention = array.retention_time_map()
        assert np.isinf(retention[0, 0])
        assert np.all(np.isfinite(retention[1:, :]))

    def test_nominal_retention_is_low_milliseconds(self):
        array = Body1TArray(4, 2)
        retention = array.retention_time_map()
        assert np.all(retention > 0.5e-3)
        assert np.all(retention < 20e-3)

    def test_leakage_spread_is_deterministic_under_seed(self):
        a = _small(seed=9)
        b = _small(seed=9)
        np.testing.assert_array_equal(a.leak_view(), b.leak_view())
        c = _small(seed=10)
        assert not np.array_equal(a.leak_view(), c.leak_view())


class TestScanIntegration:
    def test_structure_designed_for_few_ff_cells(self):
        array = _small()
        structure = get("1t").design_structure(array)
        # The converter's reference must be sized for the floating-body
        # range, well below what the same geometry designs to for eDRAM.
        edram_array = get("edram").build_array(8, 4, macro_rows=4)
        edram_structure = get("edram").design_structure(edram_array)
        assert structure.c_ref < 0.6 * edram_structure.c_ref

    def test_scan_resolves_the_body_capacitance(self):
        array = _small(seed=4)
        result = ArrayScanner(array, get("1t").design_structure(array)).scan(
            ScanConfig(technology="1t")
        )
        card = one_t_technology_card()
        assert result.stats.total_cells == array.num_cells
        # Codes must not saturate: the 4 fF nominal sits mid-range.
        assert 0 < result.codes.mean() < result.num_steps

    def test_recorded_scans_carry_retention_scalars(self, tmp_path):
        array = _small(seed=4)
        ledger = RunLedger(tmp_path / "ledger")
        ArrayScanner(array, get("1t").design_structure(array)).scan(
            ScanConfig(technology="1t", ledger=ledger)
        )
        scalars = ledger.runs()[0].scalars
        assert scalars["retention_mean_us"] > 0
        assert scalars["retention_min_us"] <= scalars["retention_mean_us"]
        assert 0.0 <= scalars["retention_below_target_frac"] <= 1.0
