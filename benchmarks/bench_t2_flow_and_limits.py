"""T2 — flow timing and out-of-range code semantics.

Pins the prose claims: "five steps of 10 ns" and the code-0 / code-20
interpretations ("three diagnoses are possible ...").  The timed kernel
is one exact charge-tier measurement — the per-cell cost that makes the
whole-array Analog Bitmap practical.
"""

from conftest import report

from repro.edram.array import EDRAMArray
from repro.edram.defects import CellDefect, DefectKind
from repro.measure.phases import PhasePlan
from repro.measure.sequencer import MeasurementSequencer
from repro.units import fF, to_ns


def _code_for(tech, structure, setup):
    array = EDRAMArray(2, 2, tech=tech)
    if setup == "under (6 fF)":
        array.cell(0, 0).capacitance = 6 * fF
    elif setup == "shorted":
        array.cell(0, 0).apply_defect(CellDefect(DefectKind.SHORT))
    elif setup == "open":
        array.cell(0, 0).apply_defect(CellDefect(DefectKind.OPEN))
    elif setup == "over (70 fF)":
        array.cell(0, 0).capacitance = 70 * fF
    return MeasurementSequencer(array.macro(0), structure).measure_charge(0, 0)


def bench_t2_flow_timing_and_limits(benchmark, tech, structure_2x2):
    plan = PhasePlan(tech, structure_2x2.design, 0, 0, 2, 2)
    lines = ["measurement flow phases:"]
    for window in plan.windows:
        lines.append(
            f"  {window.phase.name:<10} {to_ns(window.start):5.0f} .. "
            f"{to_ns(window.end):5.0f} ns"
        )
    lines.append(
        f"  total {to_ns(plan.total_duration):.0f} ns "
        "(paper: five steps of 10 ns = 50 ns)"
    )
    lines.append("")
    lines.append("out-of-range semantics:")
    lines.append(f"{'cell condition':<16} {'code':>5}   interpretation")
    for setup in ("under (6 fF)", "shorted", "open", "over (70 fF)"):
        result = _code_for(tech, structure_2x2, setup)
        lines.append(f"{setup:<16} {result.code:>5}   {result.meaning.value}")
    lines.append("")
    lines.append('paper: "If the number of current step is 0, three diagnoses')
    lines.append('are possible" — all three land on code 0 here; 70 fF lands on')
    lines.append("the full-scale code (>= 55 fF).")
    report("T2: flow timing and code limits", "\n".join(lines))

    # Timed kernel: one exact charge-tier measurement.
    result = benchmark(_code_for, tech, structure_2x2, "under (6 fF)")
    assert result.code == 0
    assert _code_for(tech, structure_2x2, "shorted").code == 0
    assert _code_for(tech, structure_2x2, "open").code == 0
    assert _code_for(tech, structure_2x2, "over (70 fF)").code == 20
    assert plan.total_duration == 50e-9
