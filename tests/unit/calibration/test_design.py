"""Structure auto-designer."""

import pytest

from repro.calibration.design import (
    design_structure,
    max_feasible_depth,
    nominal_background,
)
from repro.errors import CalibrationError
from repro.units import fF


class TestNominalBackground:
    def test_grows_with_macro_size(self, tech):
        assert nominal_background(tech, 2, 2) < nominal_background(tech, 32, 2)
        assert nominal_background(tech, 8, 2) < nominal_background(tech, 8, 4)

    def test_taller_bitlines_increase_background(self, tech):
        assert nominal_background(tech, 8, 2) < nominal_background(
            tech, 8, 2, bitline_rows=256
        )

    def test_single_cell_macro_is_just_plate_wiring(self, tech):
        assert nominal_background(tech, 1, 1) == pytest.approx(tech.plate_parasitic(1))

    def test_validation(self, tech):
        with pytest.raises(CalibrationError):
            nominal_background(tech, 0, 2)
        with pytest.raises(CalibrationError):
            nominal_background(tech, 8, 2, bitline_rows=4)


class TestDesignStructure:
    def test_range_endpoints_land_on_code_boundaries(self, tech, structure_2x2, abacus_2x2):
        assert abacus_2x2.range_floor == pytest.approx(10 * fF, rel=0.01)
        assert abacus_2x2.range_ceiling == pytest.approx(55 * fF, rel=0.01)

    def test_design_adapts_to_geometry(self, tech, structure_2x2, structure_8x2):
        # Bigger macro -> larger C_REF, smaller DAC step.
        assert structure_8x2.c_ref > structure_2x2.c_ref
        assert structure_8x2.design.delta_i < structure_2x2.design.delta_i

    def test_custom_range(self, tech):
        s = design_structure(tech, 2, 2, c_lo=15 * fF, c_hi=45 * fF)
        from repro.calibration.abacus import Abacus

        ab = Abacus.analytic(s, 2, 2)
        assert ab.range_floor == pytest.approx(15 * fF, rel=0.01)
        assert ab.range_ceiling == pytest.approx(45 * fF, rel=0.01)

    def test_custom_depth(self, tech):
        s = design_structure(tech, 2, 2, num_steps=8)
        assert s.design.num_steps == 8

    def test_infeasible_geometry_raises(self, tech):
        with pytest.raises(CalibrationError):
            design_structure(tech, 128, 4)

    def test_validation(self, tech):
        with pytest.raises(CalibrationError):
            design_structure(tech, 2, 2, c_lo=0.0)
        with pytest.raises(CalibrationError):
            design_structure(tech, 2, 2, c_lo=50 * fF, c_hi=20 * fF)
        with pytest.raises(CalibrationError):
            design_structure(tech, 2, 2, num_steps=1)

    def test_slew_enforcement_stretches_clock(self, tech):
        relaxed = design_structure(tech, 16, 2, bitline_rows=128, enforce_slew=False)
        safe = design_structure(tech, 16, 2, bitline_rows=128, enforce_slew=True)
        if not relaxed.is_slew_safe:
            assert safe.is_slew_safe
            assert safe.design.phase_duration > relaxed.design.phase_duration

    def test_designed_structure_is_slew_safe_by_default(self, tech):
        assert design_structure(tech, 16, 2, bitline_rows=128).is_slew_safe


class TestFeasibleDepth:
    def test_depth_collapses_with_macro_size(self, tech):
        depths = [max_feasible_depth(tech, rows, 2) for rows in (2, 16, 64)]
        assert depths[0] > depths[1] > depths[2]

    def test_paper_depth_feasible_on_small_macros(self, tech):
        assert max_feasible_depth(tech, 2, 2) > 20
        assert max_feasible_depth(tech, 32, 2) > 20

    def test_row_segmentation_restores_feasibility(self, tech):
        # A 128-row column-stripe macro cannot reach depth 20, but a
        # 16-row tile of the same 128-row array can.
        assert max_feasible_depth(tech, 128, 2) < 20
        assert max_feasible_depth(tech, 16, 2, bitline_rows=128) > 20
