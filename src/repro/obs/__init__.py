"""Observability: tracing and metrics for the measurement hot paths.

The paper's flow is a pipeline — scan → macro → cell → phase 1–5 — and
this package makes the pipeline visible without changing it:

- :mod:`repro.obs.trace` — :class:`Tracer` records nested, timed,
  attributed spans; :data:`NULL_TRACER` is the zero-cost default.
- :mod:`repro.obs.metrics` — :class:`MetricsRegistry` owns counters,
  gauges and histograms; deep layers report through the **ambient**
  registry (:func:`use_metrics` / :func:`active_metrics`) so the
  numeric APIs stay clean.
- :mod:`repro.obs.summarize` — reads exported traces back and
  aggregates them (the ``repro trace`` subcommand).

Everything is opt-in: the instrumented code paths are pinned bit-exact
against their un-instrumented behaviour, and the disabled path costs a
no-op method call.  Sits with the foundations layer — it imports only
:mod:`repro.errors`, and every layer above may use it.
"""

from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    active_metrics,
    use_metrics,
)
from repro.obs.summarize import (
    SpanAggregate,
    TraceSummary,
    load_trace,
    summarize_trace,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "Span",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "active_metrics",
    "use_metrics",
    "load_trace",
    "summarize_trace",
    "TraceSummary",
    "SpanAggregate",
]
